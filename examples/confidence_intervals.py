#!/usr/bin/env python
"""Run-to-run variance: replicated simulations with confidence intervals.

The paper plots single simulation runs (standard practice in 2004).  This
example replays the Fig 3 headline comparison — out-of-order vs
cache-oriented splitting at 1.6 jobs/hour — across several seeds and
reports every metric as mean ± 95 % CI, showing the gap is far larger
than the run-to-run noise.

Usage::

    python examples/confidence_intervals.py [n_replications]
"""

import sys

from repro import paper_config, units
from repro.analysis.tables import format_table
from repro.sim.replications import compare_policies


def main() -> None:
    n_replications = int(sys.argv[1]) if len(sys.argv) > 1 else 5
    config = paper_config(
        arrival_rate_per_hour=1.6,
        duration=16 * units.DAY,
        cache_bytes=100 * units.GB,
    )
    print(
        f"Replicating {n_replications} seeds x 2 policies at 1.6 jobs/hour "
        f"({config.duration / units.DAY:.0f} simulated days each)...\n"
    )
    outcome = compare_policies(
        config,
        [("cache-splitting", {}), ("out-of-order", {})],
        n_replications=n_replications,
    )

    metrics = [
        ("mean_speedup", "speedup", None),
        ("mean_waiting", "waiting (s)", units.fmt_duration),
        ("node_utilization", "utilization", None),
        ("cache_hit_fraction", "cache hits", None),
        ("tertiary_redundancy", "tape redundancy", None),
    ]
    rows = []
    for key, label, formatter in metrics:
        row = [label]
        for policy in outcome:
            estimate = outcome[policy].estimates[key]
            if formatter:
                row.append(
                    f"{formatter(estimate.mean)} ± {formatter(estimate.half_width)}"
                )
            else:
                row.append(str(estimate))
        rows.append(row)

    print(
        format_table(
            ["metric (mean ± 95% CI)"] + list(outcome),
            rows,
            title="Fig 3 headline comparison with replication CIs",
        )
    )

    speedup_gap_significant = (
        outcome["out-of-order"].estimates["mean_speedup"].low
        > outcome["cache-splitting"].estimates["mean_speedup"].high
    )
    print(
        f"\nout-of-order > cache-splitting on speedup with non-overlapping "
        f"95% CIs: {speedup_gap_significant}"
    )


if __name__ == "__main__":
    main()
