#!/usr/bin/env python
"""Inspecting a traced simulation run with ``repro.obs``.

Walks the full observability pipeline from Python:

1. run one out-of-order simulation with a :class:`TraceRecorder` sink,
2. print the aggregate counters the recorder derived from the stream,
3. drill into the raw events (who stole work from whom, and when),
4. render the per-node ASCII timeline, and
5. export a Chrome/Perfetto trace plus the counter time-series.

The same pipeline is available from the command line as
``repro trace --policy out-of-order --days 7 -o run``.

Usage::

    python examples/trace_inspection.py
"""

from repro import units
from repro.analysis.tables import format_table
from repro.obs import TraceRecorder, render_timeline, write_chrome_trace
from repro.obs.hooks import kinds
from repro.sim.config import quick_config
from repro.sim.simulator import run_simulation


def main() -> None:
    # 1. A traced run: pass any TraceSink as ``sink``.  With no sink the
    #    instrumentation short-circuits (one branch per site).
    recorder = TraceRecorder(sample_interval=units.HOUR)
    config = quick_config(
        arrival_rate_per_hour=2.0,
        duration=7 * units.DAY,
        seed=42,
    )
    result = run_simulation(config, "out-of-order", sink=recorder)
    recorder.close()
    print(result.brief())

    # 2. Aggregate counters — derived purely from the event stream, and
    #    guaranteed (tests/test_obs.py) to match SimulationResult.
    rows = [[name, value] for name, value in recorder.summary().items()]
    print(format_table(["counter", "value"], rows, title="Recorder counters"))

    # 3. Raw events: every TraceEvent carries (time, kind, source, node,
    #    job, sid) plus kind-specific data.  Example: the first few work
    #    steals the out-of-order policy performed.
    steals = recorder.events_of_kind(kinds.SUBJOB_STEAL)
    print(f"\n{len(steals)} work steals recorded; first three:")
    for event in steals[:3]:
        print(
            f"  t={units.fmt_duration(event.time):>8s}  subjob {event.sid} "
            f"({event.data['events']} events) stolen from node {event.node}"
        )

    # 4. The dependency-free ASCII Gantt — '#' cache, 'T' tertiary,
    #    'R' remote, '=' busy, '.' idle.
    print()
    print(render_timeline(recorder, width=90))

    # 5. Exports.  Load the .trace.json at https://ui.perfetto.dev —
    #    pid 0 is the cluster, pid 1 the tape streams; the counters CSV
    #    plots directly in gnuplot or pandas.
    entries = write_chrome_trace("trace_inspection.trace.json", recorder)
    samples = recorder.write_counters_csv("trace_inspection.counters.csv")
    print(f"\nwrote trace_inspection.trace.json ({entries} entries)")
    print(f"wrote trace_inspection.counters.csv ({samples} samples)")


if __name__ == "__main__":
    main()
