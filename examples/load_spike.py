#!/usr/bin/env python
"""Adaptive delay scheduling under a load spike.

Builds a non-stationary workload with the library's scenario API — a week
at a comfortable 1.2 jobs/hour, a 5-day spike at 2.6 jobs/hour (beyond
what out-of-order sustains), then back to 1.2 — and compares how
out-of-order and adaptive delay scheduling ride it out.  This is §6's
motivating scenario: "large delays at high loads and zero delays at
normal loads".

Usage::

    python examples/load_spike.py
"""

import numpy as np

from repro import paper_config, units
from repro.analysis.tables import format_table
from repro.sim.simulator import run_simulation
from repro.workload.scenarios import workload_from_config


def phase_stats(records, t0: float, t1: float):
    """Mean wait/speedup for jobs arriving in [t0, t1)."""
    waits = [r.waiting_time for r in records if t0 <= r.arrival_time < t1]
    speedups = [r.speedup for r in records if t0 <= r.arrival_time < t1]
    if not waits:
        return float("nan"), float("nan"), 0
    return float(np.mean(waits)), float(np.mean(speedups)), len(waits)


def main() -> None:
    phases = [(1.2, 7.0), (2.6, 5.0), (1.2, 9.0)]
    total_days = sum(days for _, days in phases)
    config = paper_config(
        duration=total_days * units.DAY,
        seed=23,
        warmup_fraction=0.0,  # phases analysed explicitly below
    )
    workload = workload_from_config(config, kind="phased", phases=phases)
    trace = workload.generate_list()
    print(
        f"Trace: {len(trace)} jobs over {total_days:.0f} days — "
        f"{' → '.join(f'{rate}/h x {days:.0f}d' for rate, days in phases)}\n"
    )

    results = {}
    for policy, params in (
        ("out-of-order", {}),
        ("adaptive", {"stripe_events": 200}),
    ):
        results[policy] = run_simulation(config, policy, trace=trace, **params)
        print(f"  done: {results[policy].brief()}")

    rows = []
    labels = ["before spike (1.2/h)", "during spike (2.6/h)", "after spike (1.2/h)"]
    for (t0, t1), label in zip(workload.phase_bounds(), labels):
        row = [label]
        for policy in results:
            wait, speedup, count = phase_stats(results[policy].records, t0, t1)
            row.append(
                f"wait {units.fmt_duration(wait)}, speedup {speedup:.1f} "
                f"({count} jobs)"
            )
        rows.append(row)

    print()
    print(
        format_table(
            ["phase"] + list(results),
            rows,
            title="Load-spike response (completed jobs by arrival phase)",
        )
    )
    adaptive = results["adaptive"]
    print(
        f"\nadaptive delay changes: "
        f"{adaptive.policy_stats.get('delay_changes', 0):.0f}, final delay: "
        f"{units.fmt_duration(adaptive.policy_stats.get('current_delay', 0.0))}"
    )
    print(
        "Expected shape: out-of-order accumulates a backlog during the spike\n"
        "and recovers slowly; adaptive escalates its period delay during the\n"
        "spike (worse per-job waits) but keeps the cluster from drowning,\n"
        "then returns to zero delay."
    )


if __name__ == "__main__":
    main()
