#!/usr/bin/env python
"""From a batch-system trace to a calibrated simulation.

The workflow a site operator would follow with this library:

1. take a job-request trace (here: generated, standing in for a real
   batch-system log converted to ``JobRequest`` rows);
2. characterize it — arrival rate, Erlang job-size parameters, hot
   regions (``repro.workload.characterize``);
3. build a simulation configuration from the recovered parameters;
4. compare candidate scheduling policies on the *original trace itself*
   before touching the production scheduler.

Usage::

    python examples/trace_to_simulation.py
"""

from repro import paper_config, units
from repro.analysis.tables import format_table
from repro.core.rng import RandomStreams
from repro.sim.simulator import run_simulation
from repro.workload.characterize import characterize
from repro.workload.generator import WorkloadGenerator


def main() -> None:
    # --- 1. the "production log" -----------------------------------------
    source_config = paper_config(
        arrival_rate_per_hour=1.3, duration=20 * units.DAY, seed=41
    )
    generator = WorkloadGenerator(
        dataspace=source_config.dataspace(),
        arrival_rate_per_hour=source_config.arrival_rate_per_hour,
        job_size=source_config.job_size_distribution(),
        start_distribution=source_config.start_distribution(),
        streams=RandomStreams(source_config.seed),
    )
    trace = generator.generate_list(source_config.duration)
    print(f"'Production' trace: {len(trace)} jobs over 20 days\n")

    # --- 2. characterize ----------------------------------------------------
    profile = characterize(trace, source_config.dataspace().total_events)
    print(
        format_table(
            ["property", "estimate"],
            profile.summary_rows(),
            title="Recovered workload model (truth: 1.3 jobs/h, Erlang-4 "
            "mean 40k, two hot regions holding 50% of starts)",
        )
    )

    # --- 3. a config from the recovered parameters ------------------------------
    calibrated = paper_config(
        arrival_rate_per_hour=profile.arrivals.rate_per_hour,
        mean_job_events=profile.job_size.mean_events,
        erlang_shape=profile.job_size.erlang_shape,
        duration=20 * units.DAY,
    )
    print(
        f"\nCalibrated config: {calibrated.arrival_rate_per_hour:.2f} jobs/h, "
        f"mean {calibrated.mean_job_events:,.0f} events, "
        f"Erlang-{calibrated.erlang_shape}; offered load "
        f"{calibrated.offered_load_fraction:.0%} of theoretical max\n"
    )

    # --- 4. policy comparison on the original trace ------------------------------
    rows = []
    for policy in ("cache-splitting", "out-of-order"):
        result = run_simulation(calibrated, policy, trace=trace)
        rows.append(
            [
                policy,
                f"{result.measured.mean_speedup:.2f}",
                units.fmt_duration(result.measured.mean_waiting),
                f"{result.cache_hit_fraction():.0%}",
                "no" if result.steady else "yes",
            ]
        )
        print(f"  done: {result.brief()}")
    print()
    print(
        format_table(
            ["policy", "speedup", "mean wait", "cache hits", "overloaded"],
            rows,
            title="Candidate schedulers replayed on the production trace",
        )
    )


if __name__ == "__main__":
    main()
