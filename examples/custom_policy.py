#!/usr/bin/env python
"""Writing a custom scheduling policy with the plugin API.

The paper's scheduler "implements a plugin model, enabling new scheduling
policies to be easily added".  This example adds one: **smallest job
first** — a farm-style scheduler that dequeues the smallest waiting job
instead of the oldest, a classic mean-waiting-time optimisation (SJF) that
the paper's FCFS fairness principle deliberately forgoes.  We then measure
what that fairness costs.

Usage::

    python examples/custom_policy.py
"""

from collections import deque

from repro import paper_config, units
from repro.analysis.tables import format_table
from repro.cluster.access import DataAccessPlanner, NoCachePlanner
from repro.sched.base import SchedulerPolicy, register_policy
from repro.sim.simulator import run_simulation
from repro.workload.generator import WorkloadGenerator
from repro.core.rng import RandomStreams


@register_policy
class SmallestJobFirstPolicy(SchedulerPolicy):
    """Farm scheduling, but the queue is served smallest-job-first."""

    name = "sjf-farm"

    def __init__(self) -> None:
        super().__init__()
        self.queue = []  # kept sorted by n_events

    def make_planner(self, tertiary) -> DataAccessPlanner:
        return NoCachePlanner(tertiary)

    def on_job_arrival(self, job) -> None:
        idle = self.cluster.idle_nodes()
        if idle:
            self.start_on(idle[0], job.make_root_subjob())
        else:
            self.queue.append(job)
            self.queue.sort(key=lambda j: j.n_events)

    def on_subjob_end(self, node, subjob) -> None:
        raise AssertionError("sjf-farm jobs have a single subjob")

    def on_job_end(self, node, job, subjob) -> None:
        if self.queue and node.idle:
            self.start_on(node, self.queue.pop(0).make_root_subjob())

    def extra_stats(self):
        return {"queued_jobs_at_end": float(len(self.queue))}


def main() -> None:
    config = paper_config(
        arrival_rate_per_hour=1.0, duration=24 * units.DAY, seed=5
    )
    generator = WorkloadGenerator(
        dataspace=config.dataspace(),
        arrival_rate_per_hour=config.arrival_rate_per_hour,
        job_size=config.job_size_distribution(),
        start_distribution=config.start_distribution(),
        streams=RandomStreams(config.seed),
    )
    trace = generator.generate_list(config.duration)

    rows = []
    for policy in ("farm", "sjf-farm"):
        result = run_simulation(config, policy, trace=trace)
        summary = result.measured
        waits = summary.waiting_times
        rows.append(
            [
                policy,
                units.fmt_duration(summary.mean_waiting),
                units.fmt_duration(summary.median_waiting),
                units.fmt_duration(summary.p95_waiting),
                units.fmt_duration(summary.max_waiting),
            ]
        )
        print(f"  done: {result.brief()}")

    print()
    print(
        format_table(
            ["policy", "mean wait", "median wait", "p95 wait", "max wait"],
            rows,
            title="FCFS farm vs smallest-job-first farm (same trace)",
        )
    )
    print(
        "\nSJF cuts the mean wait but stretches the tail — the paper's FCFS\n"
        "principle ('fair treatment of user requests') is exactly the\n"
        "refusal of this trade; its policies attack waiting time through\n"
        "parallelism and caching instead of reordering by size."
    )


if __name__ == "__main__":
    main()
