#!/usr/bin/env python
"""Compare all seven scheduling policies on one identical workload.

Every policy sees the exact same job trace (same arrivals, sizes and
start positions), so differences are pure scheduling effects — the
experimental discipline behind the paper's Figs 2-7 condensed into one
table.

Usage::

    python examples/policy_comparison.py [load_jobs_per_hour] [days]
"""

import sys

from repro import paper_config, units
from repro.analysis.tables import format_table
from repro.workload.generator import WorkloadGenerator
from repro.core.rng import RandomStreams


def main() -> None:
    load = float(sys.argv[1]) if len(sys.argv) > 1 else 1.2
    days = float(sys.argv[2]) if len(sys.argv) > 2 else 16.0

    config = paper_config(
        arrival_rate_per_hour=load, duration=days * units.DAY, seed=11
    )

    # One shared trace: every policy schedules identical jobs.
    generator = WorkloadGenerator(
        dataspace=config.dataspace(),
        arrival_rate_per_hour=config.arrival_rate_per_hour,
        job_size=config.job_size_distribution(),
        start_distribution=config.start_distribution(),
        streams=RandomStreams(config.seed),
    )
    trace = generator.generate_list(config.duration)
    print(
        f"Shared trace: {len(trace)} jobs over {days:.0f} days at "
        f"{load} jobs/hour (mean size "
        f"{sum(r.n_events for r in trace) / len(trace):,.0f} events)\n"
    )

    policies = [
        ("farm", {}),
        ("splitting", {}),
        ("cache-splitting", {}),
        ("out-of-order", {}),
        ("replication", {}),
        ("delayed", {"period": 2 * units.DAY, "stripe_events": 5000}),
        ("adaptive", {"stripe_events": 5000}),
        ("mixed", {"period": 2 * units.DAY, "stripe_events": 5000}),
    ]

    # Traces are passed per-run (run_simulation accepts one); we use the
    # serial path here to keep the example dependency-free and simple.
    from repro.sim.simulator import run_simulation

    rows = []
    for name, params in policies:
        result = run_simulation(config, name, trace=trace, **params)
        summary = result.measured
        rows.append(
            [
                name,
                f"{summary.mean_speedup:.2f}",
                units.fmt_duration(summary.mean_waiting),
                units.fmt_duration(summary.mean_waiting_excl_delay),
                f"{result.cache_hit_fraction():.0%}",
                f"{result.tertiary_redundancy:.2f}",
                "yes" if result.overload.overloaded else "no",
            ]
        )
        print(f"  done: {result.brief()}")

    print()
    print(
        format_table(
            ["policy", "speedup", "wait", "wait (excl delay)",
             "cache hits", "tape redundancy", "overloaded"],
            rows,
            title=f"All policies on one trace @ {load} jobs/hour",
        )
    )
    print(
        "\nReading guide: the paper's narrative is visible top to bottom —\n"
        "splitting parallelises (speedup >> 1), caching multiplies it,\n"
        "out-of-order cuts waits by overtaking, replication changes nothing,\n"
        "delayed trades waiting time for tape-traffic efficiency (lowest\n"
        "redundancy), adaptive recovers low-load latency."
    )


if __name__ == "__main__":
    main()
