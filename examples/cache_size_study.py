#!/usr/bin/env python
"""Cache-size study: how disk cache capacity drives performance.

Sweeps the per-node disk cache from 25 GB to 200 GB for the two
cache-aware FCFS/out-of-order policies, reproducing the paper's §3.4
observation: "the gain in performance ... is approximately proportional to
the size of the disk cache", saturating at the caching factor (~3x) once
the aggregate cache covers the whole data space (10 x 200 GB = 2 TB).

Usage::

    python examples/cache_size_study.py [load_jobs_per_hour]
"""

import sys

from repro import paper_config, units
from repro.analysis.tables import format_table
from repro.sim.runner import RunSpec, run_sweep


def main() -> None:
    load = float(sys.argv[1]) if len(sys.argv) > 1 else 1.0
    config = paper_config(
        arrival_rate_per_hour=load, duration=16 * units.DAY, seed=3
    )

    cache_sizes_gb = [25, 50, 100, 150, 200]
    specs = []
    for cache_gb in cache_sizes_gb:
        for policy in ("cache-splitting", "out-of-order"):
            specs.append(
                RunSpec.make(
                    config.with_(cache_bytes=cache_gb * units.GB),
                    policy,
                    label=f"{policy}@{cache_gb}GB",
                )
            )
    # No-cache baseline for the proportionality claim.
    specs.append(RunSpec.make(config, "splitting", label="splitting (no cache)"))

    print(f"Running {len(specs)} simulations at {load} jobs/hour ...\n")
    sweep = run_sweep(specs, progress=True)

    rows = []
    for spec, result in zip(sweep.specs, sweep.results):
        aggregate_tb = (
            spec.config.cache_bytes * spec.config.n_nodes / units.TB
            if "cache" in spec.label or "order" in spec.label
            else 0.0
        )
        rows.append(
            [
                spec.label,
                f"{aggregate_tb:.2f}",
                f"{result.measured.mean_speedup:.2f}",
                units.fmt_duration(result.measured.mean_waiting),
                f"{result.cache_hit_fraction():.0%}",
            ]
        )
    print()
    print(
        format_table(
            ["configuration", "aggregate cache (TB)", "speedup",
             "mean wait", "cache hits"],
            rows,
            title="Cache-size study (data space: 2 TB)",
        )
    )


if __name__ == "__main__":
    main()
