#!/usr/bin/env python
"""Quickstart: simulate the paper's cluster under one scheduling policy.

Runs the out-of-order scheduler (the paper's §4 contribution) on the
reference configuration — 10 nodes, 100 GB disk caches, 2 TB data space,
LHCb-style analysis jobs arriving at 1.5 jobs/hour — and prints the
metrics the paper reports: average speedup, waiting time, cache
effectiveness.

Usage::

    python examples/quickstart.py [policy] [load_jobs_per_hour]
"""

import sys

from repro import paper_config, run_simulation, units
from repro.analysis.tables import format_table
from repro.analysis.theory import theoretical_limits


def main() -> None:
    policy = sys.argv[1] if len(sys.argv) > 1 else "out-of-order"
    load = float(sys.argv[2]) if len(sys.argv) > 2 else 1.5

    config = paper_config(
        arrival_rate_per_hour=load,
        duration=20 * units.DAY,
        seed=7,
    )

    limits = theoretical_limits(config)
    print(
        f"Cluster: {config.n_nodes} nodes, "
        f"{units.fmt_size(config.cache_bytes)} cache each, "
        f"{units.fmt_size(config.total_data_bytes)} data space"
    )
    print(
        f"Anchors: single-job single-node time "
        f"{units.fmt_duration(limits.single_job_single_node_time)}, "
        f"max load {limits.max_load_per_hour:.2f} jobs/h, "
        f"max speedup {limits.max_overall_speedup:.1f}"
    )
    print(f"Simulating policy {policy!r} at {load} jobs/hour "
          f"for {config.duration / units.DAY:.0f} days...\n")

    result = run_simulation(config, policy)

    summary = result.measured
    rows = [
        ["jobs measured (post-warmup)", summary.n_jobs],
        ["mean speedup", f"{summary.mean_speedup:.2f}"],
        ["mean waiting time", units.fmt_duration(summary.mean_waiting)],
        ["median waiting time", units.fmt_duration(summary.median_waiting)],
        ["p95 waiting time", units.fmt_duration(summary.p95_waiting)],
        ["mean processing time", units.fmt_duration(summary.mean_processing)],
        ["node utilization", f"{result.node_utilization:.1%}"],
        ["cache hit fraction", f"{result.cache_hit_fraction():.1%}"],
        ["tertiary redundancy", f"{result.tertiary_redundancy:.2f}x"],
        ["steady state", not result.overload.overloaded],
    ]
    print(format_table(["metric", "value"], rows, title=f"Results — {policy}"))

    if result.overload.overloaded:
        print(
            "\nNOTE: the system is overloaded at this load (queues grow "
            "without bound); waiting-time averages are not meaningful — "
            "this is where the paper cuts its curves."
        )


if __name__ == "__main__":
    main()
