"""Ablation benches: modelling knobs and §7 future-work features.

* chunk granularity — our simulator's execution/cache quantum must not
  drive the results;
* pipelined transfer/compute (§7) — quantifies the headroom;
* minimal subjob size — Tables 1-4 fix 10 events; sweep it;
* fairness timeout — §4.1's 2-day valve;
* mixed immediate/delayed (§7).
"""

import pytest


def bench_ablation_chunk(figure):
    outcome = figure("ablate-chunk")
    speedups = [
        result.measured.mean_speedup for result in outcome.sweep.results
    ]
    # Chunk size is a modelling knob, not a result driver: all variants
    # within a modest band.
    assert max(speedups) < 1.6 * min(speedups), speedups


def bench_ablation_pipeline(figure):
    outcome = figure("ablate-pipeline")
    by_label = {
        spec.label: result
        for spec, result in zip(outcome.sweep.specs, outcome.sweep.results)
    }
    for policy in ("out-of-order", "cache-splitting"):
        sequential = by_label[f"{policy}-sequential"].measured.mean_speedup
        pipelined = by_label[f"{policy}-pipelined"].measured.mean_speedup
        # Overlapping transfer and compute can only help. Note the speedup
        # metric's reference time also drops (0.8 -> 0.6 s/event), so the
        # honest check is on processing time, not the ratio.
        seq_time = by_label[f"{policy}-sequential"].measured.mean_processing
        pipe_time = by_label[f"{policy}-pipelined"].measured.mean_processing
        assert pipe_time < seq_time, policy


def bench_ablation_minsize(figure):
    outcome = figure("ablate-minsize")
    by_label = {
        spec.label: result.measured.mean_speedup
        for spec, result in zip(outcome.sweep.specs, outcome.sweep.results)
    }
    # Small minima are equivalent; a 1000-event minimum still works.
    assert by_label["min-10"] == pytest.approx(by_label["min-100"], rel=0.3)
    assert by_label["min-1000"] > 1.0


def bench_ablation_fairness(figure):
    outcome = figure("ablate-fairness")
    by_label = {
        spec.label: result
        for spec, result in zip(outcome.sweep.specs, outcome.sweep.results)
    }
    # The valve only exists for the tail: mean speedup barely moves.
    on = by_label["timeout-2d"].measured.mean_speedup
    off = by_label["timeout-off"].measured.mean_speedup
    assert on == pytest.approx(off, rel=0.35)


def bench_ablation_mixed(figure):
    outcome = figure("ablate-mixed")
    rows = list(zip(outcome.sweep.specs, outcome.sweep.results))
    # At the low load (first triple), mixed waits less than pure delayed.
    delayed = next(
        r for s, r in rows if s.label == "delayed-2d"
    ).measured.mean_waiting
    mixed = next(
        r for s, r in rows if s.label == "mixed-2d"
    ).measured.mean_waiting
    assert mixed < delayed


def bench_ablation_tape_latency(figure):
    outcome = figure("ablate-tape-latency")
    by_label = {
        spec.label: result.measured.mean_speedup
        for spec, result in zip(outcome.sweep.specs, outcome.sweep.results)
    }
    # Latency hurts monotonically but moderately (chunks stream minutes
    # of data, so the per-request setup amortises).
    assert by_label["latency-0s"] >= by_label["latency-30s"] * 0.95
    assert by_label["latency-30s"] >= by_label["latency-120s"] * 0.95
    assert by_label["latency-120s"] > 0.4 * by_label["latency-0s"]


def bench_ablation_hotspot(figure):
    outcome = figure("ablate-hotspot")
    by_label = {
        spec.label: result
        for spec, result in zip(outcome.sweep.specs, outcome.sweep.results)
    }
    # The affinity scheduler feeds on skew: more of the hot data is served
    # from the caches it deliberately routes to.  (FIFO cache-splitting
    # can transiently *increase* tape redundancy under extreme skew —
    # concurrent jobs re-fetch the same hot stripe before it lands in a
    # cache — so the clean monotone claim is asserted for out-of-order.)
    uniform = by_label["ooo-uniform"]
    extreme = by_label["ooo-extreme"]
    assert extreme.cache_hit_fraction() >= uniform.cache_hit_fraction() * 0.95
    assert extreme.tertiary_redundancy <= uniform.tertiary_redundancy * 1.1
