"""Extension benches: fairness quantification, contended-network stress,
diurnal-load scenario.

These go beyond the paper's own evaluation (see DESIGN.md §6): they
quantify claims the paper makes qualitatively and stress-test one of its
implicit assumptions.
"""


def bench_fairness(figure):
    outcome = figure("fairness")
    from repro.analysis.fairness import fairness_report

    reports = {}
    for spec, result in zip(outcome.sweep.specs, outcome.sweep.results):
        warmup = spec.config.warmup_time
        records = [r for r in result.records if r.arrival_time >= warmup]
        reports[spec.label] = fairness_report(records)

    # The farm *starts* jobs strictly first-come-first-served; the
    # out-of-order policy reorders starts by cache affinity (start-order
    # inversions isolate scheduling from service-time variance).
    assert reports["farm"].start_overtake_fraction < 0.01
    assert (
        reports["out-of-order"].start_overtake_fraction
        >= reports["farm"].start_overtake_fraction
    )
    # Delayed scheduling has the worst slowdown tail (the paper's "no
    # fairness").
    assert (
        reports["delayed-2d"].p95_slowdown
        > reports["out-of-order"].p95_slowdown
    )


def bench_network_contention(figure):
    outcome = figure("ablate-network")
    by_key = {
        (spec.label, round(result.load_per_hour, 1)): result
        for spec, result in zip(outcome.sweep.specs, outcome.sweep.results)
    }
    for load in (1.4, 1.8):
        free = by_key[("repl-free-network", load)]
        contended = by_key[("repl-contended", load)]
        ooo = by_key[("ooo", load)]
        # Contention costs something but does not flip the §4.2 story:
        # the remote-read variant stays within a band of plain
        # out-of-order either way.
        if not (free.overload.overloaded or contended.overload.overloaded):
            assert (
                contended.measured.mean_speedup
                >= 0.55 * free.measured.mean_speedup
            )
            assert (
                contended.measured.mean_speedup
                >= 0.5 * ooo.measured.mean_speedup
            )


def bench_diurnal(figure):
    outcome = figure("scenario-diurnal")
    assert "diurnal" in outcome.rendered
    assert outcome.sweep.results
