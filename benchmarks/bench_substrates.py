"""Performance micro-benchmarks of the simulator substrates.

These are classic pytest-benchmark timing benches (many rounds): they
guard the hot paths — the event kernel, the extent algebra, the LRU
cache and end-to-end simulation throughput — against performance
regressions.
"""

import numpy as np

from repro.core.engine import Engine
from repro.core import units
from repro.data.cache import LRUSegmentCache
from repro.data.intervals import Interval, IntervalSet
from repro.sim.config import quick_config
from repro.sim.simulator import run_simulation


def bench_engine_throughput(benchmark):
    """Dispatch 20k timer events through the kernel."""

    def run():
        engine = Engine()
        count = 0

        def tick():
            nonlocal count
            count += 1

        for i in range(20_000):
            engine.call_at(float(i % 997), tick)
        engine.run()
        return count

    assert benchmark(run) == 20_000


def bench_interval_set_algebra(benchmark):
    """Union/intersect/subtract churn over fragmented sets."""
    rng = np.random.default_rng(0)
    intervals = [
        Interval(int(a), int(a) + int(n) + 1)
        for a, n in zip(
            rng.integers(0, 1_000_000, 400), rng.integers(1, 5_000, 400)
        )
    ]

    def run():
        left = IntervalSet(intervals[:200])
        right = IntervalSet(intervals[200:])
        union = left | right
        inter = left & right
        diff = union - inter
        return diff.measure()

    assert benchmark(run) > 0


def bench_lru_cache_churn(benchmark):
    """Streaming insert/touch churn against a full cache."""
    rng = np.random.default_rng(1)
    operations = [
        (int(a), int(a) + int(n) + 1)
        for a, n in zip(
            rng.integers(0, 3_000_000, 1_000), rng.integers(100, 3_000, 1_000)
        )
    ]

    def run():
        cache = LRUSegmentCache(150_000)
        now = 0.0
        for start, end in operations:
            now += 1.0
            cache.insert(Interval(start, end), now)
        return cache.used_events

    used = benchmark(run)
    assert 0 < used <= 150_000


def bench_simulation_out_of_order(benchmark):
    """End-to-end: 6 simulated days of out-of-order scheduling."""
    config = quick_config(
        duration=6 * units.DAY, arrival_rate_per_hour=6.0, seed=3
    )

    result = benchmark.pedantic(
        run_simulation, args=(config, "out-of-order"), rounds=1, iterations=1
    )
    assert result.jobs_completed > 0
    events_per_second = result.engine_events / max(result.wall_seconds, 1e-9)
    print(
        f"\nout-of-order: {result.engine_events} engine events, "
        f"{events_per_second:,.0f} events/s wall"
    )


def bench_simulation_delayed(benchmark):
    """End-to-end: 6 simulated days of delayed scheduling."""
    config = quick_config(
        duration=6 * units.DAY, arrival_rate_per_hour=6.0, seed=3
    )

    result = benchmark.pedantic(
        run_simulation,
        args=(config, "delayed"),
        kwargs={"period": 6 * units.HOUR, "stripe_events": 200},
        rounds=1,
        iterations=1,
    )
    assert result.jobs_completed > 0
