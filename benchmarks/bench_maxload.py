"""§5.2 — maximal sustainable load of the delayed extremes vs theory.

Prints the comparison table and asserts the paper's claims: delayed
scheduling with 200 GB caches, a 1-week delay and 200-event stripes
sustains a load close to the 3.46 jobs/h theoretical maximum (the paper
reaches ~3.0) and roughly 3x the farm's ~1.1 jobs/h ceiling.
"""

import os

from repro.analysis.theory import theoretical_limits


def bench_maxload(figure):
    outcome = figure("maxload")
    sustained = outcome.sweep.max_sustained_load()
    limits = theoretical_limits(outcome.sweep.specs[0].config)

    farm_max = sustained["farm"]
    delayed_max = sustained["delayed-extreme"]

    # The farm saturates near its theoretical 1.125 jobs/h ceiling.  A
    # run slightly past the ceiling needs a long horizon before the queue
    # growth dominates the M/Er/m variance, so shorter scales get slack.
    slack = 1.05 if os.environ.get("REPRO_BENCH_SCALE", "quick") == "full" else 1.15
    assert farm_max <= limits.farm_max_load_per_hour * slack

    # The delayed extreme approaches the global optimum...
    assert delayed_max >= 0.75 * limits.max_load_per_hour, (
        delayed_max,
        limits.max_load_per_hour,
    )
    # ...and clearly beats the farm by the paper's ~3x.
    assert delayed_max >= 2.3 * farm_max

    # The burst-drain variant sustains the same extreme loads AND
    # delivers the paper's "average speedup of more than 10" there.
    burst_max = sustained["delayed-extreme-burst"]
    assert burst_max >= 0.75 * limits.max_load_per_hour
    burst_speedups = dict(outcome.sweep.series("speedup")["delayed-extreme-burst"])
    if burst_speedups:
        assert max(burst_speedups.values()) > 10.0, burst_speedups
