"""§4.2 — out-of-order scheduling with and without data replication.

Prints the comparison plus replication-usage counters and asserts the
paper's claims: the with/without-replication curves coincide, and
replication fires for well under 1 % of job arrivals (the paper reports
<1 per mille at full scale) because out-of-order splitting already
spreads every large segment over many nodes.
"""


import pytest


def bench_replication(figure):
    outcome = figure("repl")
    speedups = outcome.sweep.series("speedup")

    # with-replication ≈ remote-reads-only at every common load.
    with_repl = dict(speedups["ooo+replication"])
    without = dict(speedups["ooo+remote-reads-only"])
    common = sorted(set(with_repl) & set(without))
    assert common, "no common steady-state loads"
    for load in common:
        assert with_repl[load] == pytest.approx(without[load], rel=0.25), load

    # Replication moves only a small fraction of the data ever processed
    # (the paper reports it firing for <1 per mille of arrivals at full
    # scale; our remote-read planner is more eager, so we assert on data
    # volume, which is the cost that matters).
    for spec, result in zip(outcome.sweep.specs, outcome.sweep.results):
        if spec.label != "ooo+replication":
            continue
        replicated = result.policy_stats.get("replicated_events", 0.0)
        processed = max(sum(result.events_by_source.values()), 1)
        fraction = replicated / processed
        print(
            f"load {result.load_per_hour:.2f}: replicated "
            f"{replicated:,.0f} of {processed:,.0f} processed events "
            f"({fraction:.2%})"
        )
        assert fraction < 0.10, f"replication moved {fraction:.1%} of data"
