"""Fig 4 — waiting-time distribution of out-of-order scheduling near the
maximal sustainable load.

Prints the log-binned histograms (100 GB @ 1.7 jobs/h, 50 GB @ 1.44
jobs/h) and asserts the paper's shape: a large fast population (cached
jobs overtaking, waits under an hour) and a bounded tail — the worst
case stays within days, acceptable against the 9 h single-node job time.
"""

import numpy as np

from repro.analysis.histogram import waiting_time_histogram
from repro.core import units


def bench_fig4(figure):
    outcome = figure("fig4")
    for spec, result in zip(outcome.sweep.specs, outcome.sweep.results):
        waits = result.measured.waiting_times
        assert len(waits) > 50, f"{spec.label}: too few jobs measured"
        hist = waiting_time_histogram(waits)
        # Bimodal shape: a substantial sub-hour population...
        assert hist.below >= 0.3 * hist.total, spec.label
        # ...and a bounded tail (nothing beyond ~4 days even near
        # saturation; the paper reports 1-2 days at full scale).
        assert float(np.max(waits)) < 4 * units.DAY, spec.label
