"""Fig 5 — delayed scheduling for different period delays vs out-of-order.

Prints speedup and delay-excluded waiting time and asserts the paper's
shape: delayed scheduling trails out-of-order on speedup but sustains
higher loads, increasing with the period delay.
"""

import os


def bench_fig5(figure):
    outcome = figure("fig5")
    sustained = outcome.sweep.max_sustained_load()
    speedups = outcome.sweep.series("speedup")

    # Out-of-order wins on low-load speedup over every delayed variant
    # that produced steady-state points at this scale.
    assert speedups["out-of-order"], "out-of-order produced no points"
    ooo_speedup = speedups["out-of-order"][0][1]
    compared = 0
    for label in ("delayed-11h", "delayed-2days", "delayed-1week"):
        if speedups.get(label):
            assert speedups[label][0][1] < ooo_speedup, label
            compared += 1
    assert compared >= 1

    # ...but delayed sustains at least as much load, growing with delay.
    # (The 1-week period needs a quick/full horizon to fit several
    # periods, so the sustainability ordering is only asserted there.)
    if os.environ.get("REPRO_BENCH_SCALE", "quick") != "smoke":
        assert sustained["delayed-1week"] >= sustained["delayed-11h"]
        assert sustained["delayed-1week"] >= sustained["out-of-order"]
