"""Fig 3 — out-of-order scheduling vs cache-oriented splitting.

Prints both panels and asserts the paper's shape: at equal cache size,
out-of-order has the higher speedup and sustains a markedly higher load
than FIFO cache-oriented splitting (the paper reports roughly 2x).
"""


def bench_fig3(figure):
    outcome = figure("fig3")
    sustained = outcome.sweep.max_sustained_load()
    speedups = outcome.sweep.series("speedup")

    for cache_gb in (50, 100, 200):
        cache_label = f"cache-{cache_gb}GB"
        ooo_label = f"ooo-{cache_gb}GB"
        # Higher sustainable load for out-of-order at every cache size.
        assert sustained[ooo_label] >= sustained[cache_label], (
            cache_gb,
            sustained,
        )
        # Higher speedup at the lowest load.
        assert speedups[ooo_label][0][1] > speedups[cache_label][0][1]

    # The paper's headline: ~2x the sustainable load at equal cache.
    assert sustained["ooo-100GB"] >= 1.5 * sustained["cache-100GB"]
