"""Shared infrastructure for the benchmark suite.

Each ``bench_fig*.py`` regenerates one figure (or in-text claim) of the
paper at a reduced-but-faithful scale and prints the same rows/series the
paper reports.  Set ``REPRO_BENCH_SCALE=smoke|quick|full`` to trade
fidelity for wall time (default: quick).

The simulations are deterministic, so every figure bench runs a single
round: the timing numbers report harness cost, the printed tables report
the science.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import Scale, run_experiment


def bench_scale() -> Scale:
    return Scale(os.environ.get("REPRO_BENCH_SCALE", "quick"))


def run_figure_benchmark(benchmark, exp_id: str, scale: Scale | None = None):
    """Run one registered experiment under pytest-benchmark and print its
    paper-figure output."""
    scale = scale or bench_scale()
    outcome = benchmark.pedantic(
        run_experiment,
        args=(exp_id,),
        kwargs={"scale": scale, "processes": None},
        rounds=1,
        iterations=1,
    )
    header = (
        f"\n{'=' * 72}\n{exp_id}: {outcome.experiment.title} "
        f"[scale={scale.value}]\n"
        f"paper: {outcome.experiment.paper_ref}\n"
        f"expected shape: {outcome.experiment.expectation}\n{'=' * 72}"
    )
    print(header)
    print(outcome.rendered)
    return outcome


@pytest.fixture
def figure(benchmark):
    """Fixture wrapping run_figure_benchmark."""

    def _run(exp_id: str, scale: Scale | None = None):
        return run_figure_benchmark(benchmark, exp_id, scale)

    return _run
