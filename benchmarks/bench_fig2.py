"""Fig 2 — farm vs job splitting vs cache-oriented splitting.

Prints average speedup and waiting time vs offered load for the three
FCFS policies (cache-oriented at 50/100/200 GB) and asserts the paper's
shape: farm ~1x and worst, splitting better, cache-oriented best with the
gain growing with cache size.
"""


def bench_fig2(figure):
    outcome = figure("fig2")
    speedups = outcome.sweep.series("speedup")

    def first(label):
        points = speedups[label]
        assert points, f"{label} produced no steady-state points"
        return points[0][1]  # speedup at the lowest common load

    farm = first("farm")
    splitting = first("splitting")
    cache_small = first("cache-50GB")
    cache_large = first("cache-200GB")

    # The paper's ordering at low load.
    assert farm < 1.2, f"farm speedup should be ~1, got {farm:.2f}"
    assert splitting > farm
    assert cache_small > splitting
    assert cache_large > cache_small

    # 200 GB approaches the caching factor (~3x) over plain splitting at
    # full scale; shorter scales leave the caches only partly warm, so
    # the bench only asserts a clear gain.
    ratio = cache_large / splitting
    print(f"cache-200GB / splitting speedup ratio: {ratio:.2f} (paper: ~3)")
    assert ratio > 1.25
