"""Fig 7 — adaptive delay scheduling vs out-of-order.

Prints speedup and (delay-included) waiting time and asserts the paper's
shape: adaptive sustains loads out-of-order cannot, while matching it at
low load with only a small waiting-time overhead.
"""

from repro.core import units


def bench_fig7(figure):
    outcome = figure("fig7")
    sustained = outcome.sweep.max_sustained_load()
    speedups = outcome.sweep.series("speedup")
    waits = outcome.sweep.series("waiting")

    # Sustains at least out-of-order's ceiling.
    best_adaptive = max(sustained["adaptive-200"], sustained["adaptive-5K"])
    assert best_adaptive >= sustained["out-of-order"]

    # Low-load speedup comparable to out-of-order (small stripes).
    ooo = speedups["out-of-order"][0][1]
    adaptive = speedups["adaptive-200"][0][1]
    assert adaptive > 0.5 * ooo

    # §6: the adaptive waiting-time overhead at low load is small against
    # the 9 h single-node job time (paper: "up to 1 h").
    overhead = waits["adaptive-200"][0][1] - waits["out-of-order"][0][1]
    assert overhead < 2 * units.HOUR
