"""§2.4 — cluster-size invariance: 5/10/20 nodes at equal per-node load.

Prints per-node-normalised performance and asserts the paper's claim
that 5- and 20-node simulations "lead to similar results".
"""

import os


def bench_nodes(figure):
    outcome = figure("nodes")
    by_label = {
        spec.label: result
        for spec, result in zip(outcome.sweep.specs, outcome.sweep.results)
    }
    for policy in ("ooo", "cache"):
        per_node = {}
        strict = os.environ.get("REPRO_BENCH_SCALE", "quick") != "smoke"
        for n_nodes in (5, 10, 20):
            result = by_label[f"{policy}-{n_nodes}nodes"]
            if strict:
                assert not result.overload.overloaded, (policy, n_nodes)
            per_node[n_nodes] = (
                result.measured.mean_speedup / result.config.n_nodes
            )
        values = list(per_node.values())
        # Normalised speedups within a ~2.5x band across cluster sizes
        # (the paper reports "similar results" without quantifying).
        assert max(values) < 2.5 * min(values), (policy, per_node)
