"""Kernel-throughput smoke via the ``repro.perf`` harness.

The committed-baseline regression check lives in ``repro bench`` (see
docs/PERFORMANCE.md); this wrapper makes the same micro-benchmarks
runnable from the legacy ``benchmarks/`` suite so one ``pytest
benchmarks/`` sweep still covers figures, obs overhead *and* kernel
throughput.  It runs the quick variant (small workloads, few repeats)
and asserts structural sanity — every record present, positive work,
positive throughput — rather than absolute numbers, which belong to the
baseline comparison in CI.

Run as a script (``PYTHONPATH=src python benchmarks/bench_perf_harness.py``)
or under pytest (``pytest benchmarks/bench_perf_harness.py``).
"""

from __future__ import annotations

from repro.perf import render_report, run_kernel_bench

#: Record names the kernel suite must always produce.
EXPECTED_RECORDS = (
    "engine.dispatch",
    "engine.cancel_churn",
    "intervals.arith",
    "intervals.set_ops",
    "cache.lru_ops",
)


def bench_perf_kernel_quick():
    report = run_kernel_bench(quick=True)
    print("\n" + render_report(report))
    names = [record.name for record in report.records]
    assert list(EXPECTED_RECORDS) == names, names
    for record in report.records:
        assert record.work > 0, record
        assert record.wall_seconds > 0, record
        assert record.throughput > 0, record


if __name__ == "__main__":
    bench_perf_kernel_quick()
    print("OK")
