"""Observability overhead — the hook bus must be ~free when disabled.

Runs a Fig-2-style cache-oriented simulation three ways:

1. **untraced** — no sink attached; every emission site reduces to one
   attribute load and a failed branch,
2. **traced** — a :class:`repro.obs.TraceRecorder` attached, recording
   the full event stream, and
3. a **guard microbenchmark** — the measured cost of the disabled
   ``if bus.enabled:`` check itself.

The disabled-path overhead cannot be measured by diffing (1) against an
uninstrumented build — the guards are compiled in — so it is *estimated*
as ``guard_cost × guard_checks``, where the number of guard checks is
bounded by the traced run's emission count plus one engine-dispatch
check per event.  The bench asserts that estimate stays below 3% of the
untraced wall time, and reports (without asserting — it is allowed to
cost something) the overhead of running fully traced.

Run as a script (``PYTHONPATH=src python benchmarks/bench_obs_overhead.py``)
or under pytest (``pytest benchmarks/bench_obs_overhead.py``).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core import units
from repro.core.clock import wall_clock
from repro.obs import HookBus, NullSink, TraceRecorder
from repro.sim.config import quick_config
from repro.sim.simulator import SimulationResult, run_simulation

#: Disabled-hooks budget: estimated guard cost / untraced wall time.
DISABLED_BUDGET = 0.03

_ROUNDS = 3


def _config():
    """A Fig-2-style point: cache-oriented splitting at moderate load."""
    return quick_config(
        arrival_rate_per_hour=2.0,
        duration=6 * units.DAY,
        seed=7,
    )


def _best_wall(
    sink: Optional[TraceRecorder] = None, rounds: int = _ROUNDS
) -> Tuple[float, SimulationResult]:
    """Minimum wall time over ``rounds`` identical runs (noise floor)."""
    best = float("inf")
    result = None
    for _ in range(rounds):
        started = wall_clock()
        result = run_simulation(_config(), "cache-splitting", sink=sink)
        best = min(best, wall_clock() - started)
    assert result is not None
    return best, result


def _guard_cost_seconds(iterations: int = 2_000_000) -> float:
    """Per-check cost of the disabled ``if bus.enabled:`` guard."""
    bus = HookBus()  # no sinks attached -> disabled
    assert not bus.enabled
    hits = 0

    started = wall_clock()
    for _ in range(iterations):
        if bus.enabled:
            hits += 1
    guarded = wall_clock() - started

    started = wall_clock()
    for _ in range(iterations):
        pass
    empty = wall_clock() - started

    assert hits == 0
    return max(0.0, guarded - empty) / iterations


def measure_overhead() -> dict:
    """Run the comparison; returns the numbers (also used by the test)."""
    untraced_wall, untraced = _best_wall()

    recorder = TraceRecorder(sample_interval=float("inf"))
    traced_started = wall_clock()
    traced = run_simulation(_config(), "cache-splitting", sink=recorder)
    traced_wall = wall_clock() - traced_started
    recorder.close()

    # Sanity: tracing must not change the simulation itself.
    assert traced.jobs_completed == untraced.jobs_completed
    assert traced.engine_events == untraced.engine_events

    # Every emission in the traced run corresponds to one guard check the
    # untraced run also performs (and fails); add one engine-dispatch
    # check per event and double the total to cover sites that check
    # without emitting (idle branches, planner misses, ...).
    guard_cost = _guard_cost_seconds()
    guard_checks = 2 * (recorder.total_emitted + untraced.engine_events)
    disabled_estimate = guard_cost * guard_checks

    return {
        "untraced_wall": untraced_wall,
        "traced_wall": traced_wall,
        "traced_overhead": traced_wall / untraced_wall - 1.0,
        "guard_cost_ns": guard_cost * 1e9,
        "guard_checks": guard_checks,
        "disabled_estimate": disabled_estimate,
        "disabled_fraction": disabled_estimate / untraced_wall,
        "events_emitted": recorder.total_emitted,
        "jobs_completed": traced.jobs_completed,
    }


def _report(numbers: dict) -> str:
    return (
        f"untraced wall time        : {numbers['untraced_wall'] * 1e3:8.1f} ms\n"
        f"traced wall time          : {numbers['traced_wall'] * 1e3:8.1f} ms "
        f"({numbers['traced_overhead']:+.1%}, {numbers['events_emitted']} events)\n"
        f"disabled guard cost       : {numbers['guard_cost_ns']:8.1f} ns/check\n"
        f"guard checks (bounded)    : {numbers['guard_checks']:8d}\n"
        f"disabled overhead estimate: {numbers['disabled_fraction']:8.2%} "
        f"of untraced wall time (budget {DISABLED_BUDGET:.0%})"
    )


def bench_obs_overhead():
    numbers = measure_overhead()
    print("\n" + _report(numbers))
    assert numbers["disabled_fraction"] < DISABLED_BUDGET, (
        f"disabled-hooks overhead estimate "
        f"{numbers['disabled_fraction']:.2%} exceeds the "
        f"{DISABLED_BUDGET:.0%} budget"
    )


def bench_null_sink_still_counts_as_enabled():
    """Attaching even a NullSink enables the bus — the cheap path is *no
    sinks*, and that is the configuration the 3% budget protects."""
    bus = HookBus()
    assert not bus.enabled
    sink = NullSink()
    bus.attach(sink)
    assert bus.enabled
    bus.detach(sink)
    assert not bus.enabled


if __name__ == "__main__":
    numbers = measure_overhead()
    print(_report(numbers))
    if numbers["disabled_fraction"] >= DISABLED_BUDGET:
        raise SystemExit("FAIL: disabled-hooks overhead budget exceeded")
    print("OK")
