"""§3.1 — the processing farm behaves as an M/Er/m queue.

Prints simulated vs predicted waiting times across utilisations and
asserts agreement within the Allen-Cunneen approximation's accuracy.
"""


import pytest

from repro.analysis.queueing import merlang_wait
from repro.core import units


def bench_queueing(figure):
    outcome = figure("farmq")
    checked = 0
    for spec, result in zip(outcome.sweep.specs, outcome.sweep.results):
        if result.overload.overloaded:
            continue
        config = spec.config
        prediction = merlang_wait(
            servers=config.n_nodes,
            arrival_rate=units.per_hour(config.arrival_rate_per_hour),
            mean_service=config.mean_service_time_uncached,
            erlang_shape=config.erlang_shape,
        )
        measured = result.measured.mean_waiting
        if prediction.mean_wait < 5 * units.MINUTE:
            # Both tiny: just require the simulation is also tiny.
            assert measured < 30 * units.MINUTE
        else:
            assert measured == pytest.approx(prediction.mean_wait, rel=0.6), (
                spec.config.arrival_rate_per_hour,
                measured,
                prediction.mean_wait,
            )
        checked += 1
    assert checked >= 2
