"""Footnote-1 bench: scheduler decision time and queue space.

The paper defers the time/space complexity analysis of its policies to a
subsequent paper; this bench runs our instrumented measurement and
asserts the practicality bound implied by the production-deployment
claim: scheduling decisions are orders of magnitude cheaper than the
work they schedule.
"""


def bench_complexity(figure):
    outcome = figure("complexity")
    rendered = outcome.rendered
    assert "arrival mean (ms)" in rendered
    # Parse the per-job scheduler cost column and assert the bound.
    import re

    for line in rendered.splitlines():
        match = re.match(r"^(\S+@\d+n)\s", line)
        if not match:
            continue
        cells = line.split()
        cost_per_job_ms = float(cells[4])
        # vs a ~2000 s inter-arrival time at these loads: < 1 s of
        # scheduler CPU per job is already 3 orders of magnitude slack.
        assert cost_per_job_ms < 1000.0, line
