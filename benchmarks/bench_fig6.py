"""Fig 6 — delayed scheduling for different stripe sizes.

Prints speedup and delay-excluded waiting time and asserts the paper's
shape: smaller stripes give clearly higher speedups (finer
parallelisation) with little effect on the average waiting time.
"""

from repro.core import units


def bench_fig6(figure):
    outcome = figure("fig6")
    speedups = outcome.sweep.series("speedup")
    waits = outcome.sweep.series("waiting_excl_delay")

    at_low_load = {
        label: points[0][1] for label, points in speedups.items() if points
    }
    # Monotone: smaller stripes -> higher speedup.
    assert at_low_load["stripe-200"] > at_low_load["stripe-5K"]
    assert at_low_load["stripe-1K"] > at_low_load["stripe-25K"]

    # Waiting time (delay excluded) barely moves with stripe size:
    # all curves within a few hours of each other at the lowest load.
    first_waits = [points[0][1] for points in waits.values() if points]
    assert max(first_waits) - min(first_waits) < 8 * units.HOUR
