"""simlint driver: file walking, suppression comments, report rendering.

Suppression syntax (targeted, never blanket)::

    x = time.time()  # simlint: disable=SIM001
    # simlint: disable-next-line=SIM003,SIM004
    if a.last_access == b.last_access: ...

A bare ``# simlint: disable`` (no codes) suppresses every rule on its
line; prefer naming the codes so later readers know what was waived.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..core.errors import ReproError
from .config import LintConfig
from .findings import ALL_RULES, Finding, suggest_rule_codes
from .rules import RuleVisitor

#: Bumped when the JSON report shape changes.
JSON_SCHEMA_VERSION = 1

_SUPPRESS_RE = re.compile(
    r"#\s*simlint:\s*(?P<directive>disable(?:-next-line)?)"
    r"(?:\s*=\s*(?P<codes>[A-Z0-9,\s]+))?"
)

#: Sentinel meaning "every rule" in a suppression set.
_ALL = "*"


class LintUsageError(ReproError):
    """Bad lint invocation (unknown rule code, missing path, ...)."""


def parse_suppression_directives(
    source: str,
) -> List[Tuple[int, int, Tuple[str, ...]]]:
    """Every suppression comment in ``source``, in file order.

    Returns ``(comment_line, target_line, codes)`` triples; an empty
    ``codes`` tuple means a bare ``disable`` (every rule).  The target
    line is the comment's own line, or the next line for
    ``disable-next-line`` — including one past EOF when the directive is
    the last line of the file (such a directive can never match and is
    exactly what SIM104 exists to catch).
    """
    directives: List[Tuple[int, int, Tuple[str, ...]]] = []
    reader = io.StringIO(source).readline
    try:
        tokens = list(tokenize.generate_tokens(reader))
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        return directives
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_RE.search(token.string)
        if match is None:
            continue
        codes_text = match.group("codes")
        codes = (
            tuple(
                sorted(
                    {code.strip() for code in codes_text.split(",") if code.strip()}
                )
            )
            if codes_text
            else ()
        )
        comment_line = token.start[0]
        target_line = comment_line
        if match.group("directive") == "disable-next-line":
            target_line += 1
        directives.append((comment_line, target_line, codes))
    return directives


def _parse_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number -> set of suppressed codes (or ``{"*"}``)."""
    suppressions: Dict[int, Set[str]] = {}
    for _comment_line, target_line, codes in parse_suppression_directives(source):
        suppressions.setdefault(target_line, set()).update(codes or {_ALL})
    return suppressions


def _apply_suppressions(
    findings: Iterable[Finding], suppressions: Dict[int, Set[str]]
) -> List[Finding]:
    kept: List[Finding] = []
    for finding in findings:
        codes = suppressions.get(finding.line)
        if codes is not None and (_ALL in codes or finding.code in codes):
            continue
        kept.append(finding)
    return kept


def lint_source(
    source: str, path: str, config: Optional[LintConfig] = None
) -> List[Finding]:
    """Lint one module's source text; ``path`` is used for reporting and
    for the per-rule module allowlists (match on posix-style paths)."""
    config = config or LintConfig()
    posix_path = Path(path).as_posix()
    tree = ast.parse(source, filename=path)
    visitor = RuleVisitor(posix_path, config)
    visitor.visit(tree)
    findings = _apply_suppressions(visitor.findings, _parse_suppressions(source))
    return sorted(findings, key=Finding.sort_key)


def iter_python_files(paths: Sequence[str]) -> List[Path]:
    """Expand files/directories into a sorted, deduplicated .py file list."""
    files: Set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.update(path.rglob("*.py"))
        elif path.is_file():
            files.add(path)
        else:
            raise LintUsageError(f"no such file or directory: {raw}")
    return sorted(files)


def syntax_error_finding(path: str, error: SyntaxError) -> Finding:
    """SIM000 finding for an unparseable file.

    ``SyntaxError.offset`` is already 1-based, so it is used as the
    column directly; the offending source line (when CPython provides
    it) is embedded in the message so reports are actionable without
    opening the file.
    """
    message = f"syntax error: {error.msg}"
    offending = (error.text or "").strip()
    if offending:
        message += f" [{offending}]"
    return Finding(
        code="SIM000",
        path=path,
        line=error.lineno or 1,
        col=error.offset or 1,
        message=message,
    )


def lint_paths(
    paths: Sequence[str], config: Optional[LintConfig] = None
) -> Tuple[List[Finding], int]:
    """Lint every ``.py`` file under ``paths``.

    Returns ``(findings, files_checked)``.  Unparseable files surface as a
    finding with code ``SIM000`` so CI fails loudly instead of skipping.
    """
    config = config or LintConfig()
    findings: List[Finding] = []
    files = iter_python_files(paths)
    for file_path in files:
        source = file_path.read_text(encoding="utf-8")
        try:
            findings.extend(lint_source(source, str(file_path), config))
        except SyntaxError as error:
            findings.append(syntax_error_finding(file_path.as_posix(), error))
    return sorted(findings, key=Finding.sort_key), len(files)


def make_config(select: Optional[Sequence[str]] = None) -> LintConfig:
    """Build a config from ``--select`` style code lists.

    Unknown codes are rejected with a did-you-mean suggestion (codes
    validate against the full catalogue, per-file *and* flow, so
    ``--select SIM101 --flow`` works symmetrically).
    """
    if not select:
        return LintConfig()
    codes = {code.strip().upper() for code in select if code.strip()}
    unknown = codes - set(ALL_RULES)
    if unknown:
        parts = []
        for code in sorted(unknown):
            suggestions = suggest_rule_codes(code)
            hint = (
                f" (did you mean {', '.join(suggestions)}?)" if suggestions else ""
            )
            parts.append(f"{code}{hint}")
        raise LintUsageError(
            f"unknown rule code(s): {'; '.join(parts)}; "
            f"available: {', '.join(sorted(ALL_RULES))}"
        )
    return LintConfig(select=frozenset(codes))


# -- rendering ---------------------------------------------------------------


def render_text(findings: Sequence[Finding], files_checked: int) -> str:
    """Human-readable report (one finding per line, grep-friendly)."""
    lines = [
        f"{finding.location()}: {finding.code} {finding.message}"
        for finding in findings
    ]
    noun = "file" if files_checked == 1 else "files"
    if findings:
        lines.append(
            f"simlint: {len(findings)} finding(s) in {files_checked} {noun}"
        )
    else:
        lines.append(f"simlint: clean ({files_checked} {noun} checked)")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], files_checked: int) -> str:
    """Machine-readable report for CI (stable schema, see tests)."""
    payload = {
        "schema_version": JSON_SCHEMA_VERSION,
        "tool": "simlint",
        "files_checked": files_checked,
        "count": len(findings),
        "findings": [finding.as_dict() for finding in findings],
    }
    return json.dumps(payload, indent=2)
