"""Finding records and the rule catalogue of simlint.

Each rule has a stable code used in reports, in CI gating and in targeted
suppression comments (``# simlint: disable=SIM003``).  ``SIM001``–``SIM006``
are per-file AST rules; ``SIM101``–``SIM105`` are whole-program flow rules
(``repro lint --flow``, package :mod:`repro.lint.flow`) that need the
project-wide import/call/constant graph.  The catalogue doubles as
documentation: ``repro lint --rules`` prints it.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass
from typing import Any, Dict, List

#: Per-file rule catalogue: code -> one-line description (kept in sync
#: with docs/ARCHITECTURE.md's "Static analysis" section).
RULES: Dict[str, str] = {
    "SIM001": (
        "wall-clock read (time.time/monotonic/perf_counter, argless "
        "datetime.now/today) outside the sanctioned clock module"
    ),
    "SIM002": (
        "global `random` module or unseeded numpy.random global state "
        "outside core/rng.py; use RandomStreams named streams"
    ),
    "SIM003": (
        "float ==/!= on a simulation-time expression; use "
        "units.times_equal / times_close tolerance helpers"
    ),
    "SIM004": (
        "hook emission not wrapped in the one-branch disabled guard "
        "(`if bus.enabled:` / `if bus.engine_dispatch:`)"
    ),
    "SIM005": (
        "mutation of a shared SimulationConfig/scenario object; configs "
        "are frozen values — build a new one with .with_()"
    ),
    "SIM006": (
        "I/O (open/print/write_text/write_bytes/input) in simulation code "
        "outside export/CLI/obs modules"
    ),
}

#: Whole-program flow-rule catalogue (``repro lint --flow``).  These
#: rules check cross-module contracts no per-file pass can see.
FLOW_RULES: Dict[str, str] = {
    "SIM101": (
        "RNG stream aliasing: the same RandomStreams stream name is "
        "registered by different components, or a stream name is computed "
        "dynamically with no literal prefix"
    ),
    "SIM102": (
        "event-ordering hazard: engine internals touched outside the "
        "kernel, assignment to the simulation clock, or a trace observer "
        "that schedules events / mutates shared state"
    ),
    "SIM103": (
        "schema drift: summary-JSON keys read but never written, a writer "
        "that does not stamp schema_version, or a hardcoded "
        "schema_version=N literal at a call site"
    ),
    "SIM104": (
        "stale suppression: a `# simlint: disable[=...]` comment that "
        "matches no finding on its target line"
    ),
    "SIM105": (
        "obs hook contract: event kinds defined but never emitted, "
        "emitted but never consumed by any sink/exporter, or emitted as "
        "a raw string not in the kinds taxonomy"
    ),
}

#: Every rule code (per-file + flow) — the namespace ``--select`` and
#: suppression comments validate against.
ALL_RULES: Dict[str, str] = {**RULES, **FLOW_RULES}


def suggest_rule_codes(code: str, limit: int = 3) -> List[str]:
    """Closest known rule codes to a mistyped ``code`` (did-you-mean)."""
    return difflib.get_close_matches(
        code.upper(), sorted(ALL_RULES), n=limit, cutoff=0.4
    )


@dataclass(frozen=True)
class Finding:
    """One lint violation at a precise source location."""

    code: str
    path: str
    line: int
    col: int
    message: str

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def as_dict(self) -> Dict[str, Any]:
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.code)
