"""Finding records and the rule catalogue of simlint.

Each rule has a stable code (``SIM001``–``SIM006``) used in reports, in CI
gating and in targeted suppression comments (``# simlint: disable=SIM003``).
The catalogue doubles as documentation: ``repro lint --rules`` prints it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

#: Rule catalogue: code -> one-line description (kept in sync with
#: docs/ARCHITECTURE.md's "Static analysis" section).
RULES: Dict[str, str] = {
    "SIM001": (
        "wall-clock read (time.time/monotonic/perf_counter, argless "
        "datetime.now/today) outside the sanctioned clock module"
    ),
    "SIM002": (
        "global `random` module or unseeded numpy.random global state "
        "outside core/rng.py; use RandomStreams named streams"
    ),
    "SIM003": (
        "float ==/!= on a simulation-time expression; use "
        "units.times_equal / times_close tolerance helpers"
    ),
    "SIM004": (
        "hook emission not wrapped in the one-branch disabled guard "
        "(`if bus.enabled:` / `if bus.engine_dispatch:`)"
    ),
    "SIM005": (
        "mutation of a shared SimulationConfig/scenario object; configs "
        "are frozen values — build a new one with .with_()"
    ),
    "SIM006": (
        "I/O (open/print/write_text/write_bytes/input) in simulation code "
        "outside export/CLI/obs modules"
    ),
}


@dataclass(frozen=True)
class Finding:
    """One lint violation at a precise source location."""

    code: str
    path: str
    line: int
    col: int
    message: str

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def as_dict(self) -> Dict[str, Any]:
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.code)
