"""simlint configuration: per-rule module allowlists and rule selection.

Allowlists are matched against the *posix-style* path of the linted file
(``src/repro/core/rng.py``) with :func:`fnmatch.fnmatch`, so entries may
use glob wildcards.  The defaults encode this repository's layout; other
projects can construct their own :class:`LintConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatch
from typing import FrozenSet, Tuple

from .findings import RULES

#: The one module allowed to read the wall clock (SIM001).  Everything
#: else must import :func:`repro.core.clock.wall_clock`.
DEFAULT_CLOCK_MODULES: Tuple[str, ...] = ("*/core/clock.py",)

#: The one module allowed to construct numpy generators (SIM002).  The
#: decentralized scheduler's arbiter deliberately gets no entry here: its
#: tie-breaking draws come from the named ``sched.arbiter`` stream
#: handed out by :class:`repro.core.rng.RandomStreams`.
DEFAULT_RNG_MODULES: Tuple[str, ...] = ("*/core/rng.py",)

#: Modules whose job *is* emitting/consuming trace events (SIM004).
DEFAULT_OBS_MODULES: Tuple[str, ...] = ("*/obs/*.py",)

#: Modules allowed to perform I/O (SIM006): the CLI, exporters, the obs
#: sinks, the sweep runner's progress output, workload-trace files, the
#: benchmark harness (``repro.perf`` reads/writes BENCH_*.json and runs
#: ``git rev-parse``), the execution layer (``repro.exec`` owns the
#: result cache and checkpoint journal on disk), simlint itself (reads
#: sources, writes the flow baseline) — and the top-level driver
#: scripts (benchmarks/, examples/), whose entire job is terminal
#: output.
DEFAULT_IO_MODULES: Tuple[str, ...] = (
    "*/cli.py",
    "*/__main__.py",
    "*/exec/*.py",
    "*/lint/*.py",
    "*/lint/flow/*.py",
    "*/obs/*.py",
    "*/perf/*.py",
    "*/sim/export.py",
    "*/sim/runner.py",
    "*/workload/trace.py",
    "*/experiments/*.py",
    "*/analysis/plots.py",
    "*/analysis/tables.py",
    "benchmarks/*.py",
    "*/benchmarks/*.py",
    "examples/*.py",
    "*/examples/*.py",
)


def _match_any(path: str, patterns: Tuple[str, ...]) -> bool:
    return any(fnmatch(path, pattern) for pattern in patterns)


@dataclass(frozen=True)
class LintConfig:
    """Immutable knob set of one lint run."""

    #: Rules to check; defaults to the full catalogue.
    select: FrozenSet[str] = field(
        default_factory=lambda: frozenset(RULES)
    )
    clock_modules: Tuple[str, ...] = DEFAULT_CLOCK_MODULES
    rng_modules: Tuple[str, ...] = DEFAULT_RNG_MODULES
    obs_modules: Tuple[str, ...] = DEFAULT_OBS_MODULES
    io_modules: Tuple[str, ...] = DEFAULT_IO_MODULES

    def enabled(self, code: str) -> bool:
        return code in self.select

    # -- per-rule module exemptions -----------------------------------------

    def is_clock_module(self, path: str) -> bool:
        return _match_any(path, self.clock_modules)

    def is_rng_module(self, path: str) -> bool:
        return _match_any(path, self.rng_modules)

    def is_obs_module(self, path: str) -> bool:
        return _match_any(path, self.obs_modules)

    def is_io_module(self, path: str) -> bool:
        return _match_any(path, self.io_modules)
