"""The simlint AST pass: simulation-specific determinism & invariant rules.

One :class:`RuleVisitor` walk checks all six rules.  The visitor keeps a
tiny import-alias table so dotted calls are matched by *resolved* module
path (``import numpy as np; np.random.seed(...)`` and
``from numpy import random; random.seed(...)`` both resolve to
``numpy.random.seed``), which keeps the rules robust against aliasing
without needing type inference.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from .config import LintConfig
from .findings import Finding

# -- SIM001: wall-clock sources ---------------------------------------------

#: Zero-argument (or any-argument) calls that read the host clock.
_WALLCLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
}

#: Datetime constructors that read the host clock when called with no
#: arguments (an explicit ``tz``/source argument is somebody else's
#: problem — the issue is the *implicit* ambient clock).
_WALLCLOCK_ARGLESS = {
    "datetime.datetime.now",
    "datetime.datetime.today",
    "datetime.date.today",
    "datetime.datetime.utcnow",
}

# -- SIM002: unseeded randomness --------------------------------------------

#: numpy.random module-level functions drawing from the *global* state.
_NUMPY_GLOBAL_DRAWS = {
    "beta", "binomial", "bytes", "chisquare", "choice", "dirichlet",
    "exponential", "f", "gamma", "geometric", "gumbel", "hypergeometric",
    "integers", "laplace", "logistic", "lognormal", "logseries",
    "multinomial", "multivariate_normal", "negative_binomial",
    "noncentral_chisquare", "noncentral_f", "normal", "pareto",
    "permutation", "poisson", "power", "rand", "randint", "randn",
    "random", "random_integers", "random_sample", "ranf", "rayleigh",
    "sample", "seed", "shuffle", "standard_cauchy",
    "standard_exponential", "standard_gamma", "standard_normal",
    "standard_t", "triangular", "uniform", "vonmises", "wald",
    "weibull", "zipf",
}

# -- SIM003: float equality on simulation times ------------------------------

#: Identifiers treated as simulation-time expressions.
_TIME_EXACT_NAMES = {
    "now",
    "time",
    "last_access",
    "timestamp",
    "deadline",
    "completion",
    "arrival",
    "stamp",
    "first_start",
}
_TIME_SUFFIXES = ("_time", "_at", "_seconds")

# -- SIM005: shared-config mutation ------------------------------------------

_CONFIG_BASE_NAMES = {"config", "scenario", "cfg"}
_CONFIG_SUFFIXES = ("_config", "_scenario")

# -- SIM006: I/O in simulation code ------------------------------------------

_IO_BUILTINS = {"open", "print", "input"}
_IO_METHODS = {"write_text", "write_bytes"}


def _terminal_name(node: ast.expr) -> Optional[str]:
    """The last identifier of a Name/Attribute chain (else None)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _mentions_guard_flag(node: ast.expr) -> bool:
    """True if the expression references ``.enabled``/``.engine_dispatch``."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr in (
            "enabled",
            "engine_dispatch",
        ):
            return True
        if isinstance(sub, ast.Name) and sub.id in ("enabled", "engine_dispatch"):
            return True
    return False


def _is_time_like(node: ast.expr) -> bool:
    name = _terminal_name(node)
    if name is None:
        return False
    name = name.lower()
    if name in _TIME_EXACT_NAMES:
        return True
    return any(name.endswith(suffix) for suffix in _TIME_SUFFIXES)


def _is_config_like(node: ast.expr) -> bool:
    name = _terminal_name(node)
    if name is None:
        return False
    name = name.lower()
    if name in _CONFIG_BASE_NAMES:
        return True
    return any(name.endswith(suffix) for suffix in _CONFIG_SUFFIXES)


class RuleVisitor(ast.NodeVisitor):
    """Single-pass checker producing :class:`Finding` s for one module."""

    def __init__(self, path: str, config: LintConfig) -> None:
        self.path = path
        self.config = config
        self.findings: List[Finding] = []
        #: local alias -> dotted module/object path (import resolution).
        self._aliases: Dict[str, str] = {}
        #: stack of enclosing ``if`` tests that mention a hook guard flag.
        self._guard_depth = 0
        #: per-function: line after which an early-return guard protects
        #: emissions (``if not bus.enabled: return`` at function top).
        self._early_guard_lines: List[Optional[int]] = []

    # -- helpers -------------------------------------------------------------

    def _report(self, code: str, node: ast.AST, message: str) -> None:
        if not self.config.enabled(code):
            return
        self.findings.append(
            Finding(
                code=code,
                path=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                message=message,
            )
        )

    def _resolve(self, node: ast.expr) -> Optional[str]:
        """Resolve a Name/Attribute chain to a dotted path via the alias
        table; returns None when the base is not an imported name."""
        parts: List[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        base = self._aliases.get(current.id)
        if base is None:
            return None
        parts.append(base)
        return ".".join(reversed(parts))

    # -- imports -------------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            self._aliases[local] = alias.name if alias.asname else local
            if alias.asname:
                self._aliases[alias.asname] = alias.name
            else:
                # `import a.b` binds `a`; resolve through the top module.
                self._aliases[alias.name.split(".")[0]] = alias.name.split(".")[0]
            if self._is_random_module(alias.name):
                self._check_random_import(node)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        for alias in node.names:
            local = alias.asname or alias.name
            self._aliases[local] = f"{module}.{alias.name}" if module else alias.name
        if self._is_random_module(module):
            self._check_random_import(node)
        self.generic_visit(node)

    @staticmethod
    def _is_random_module(module: str) -> bool:
        return module == "random" or module.startswith("random.")

    def _check_random_import(self, node: ast.AST) -> None:
        if self.config.is_rng_module(self.path):
            return
        self._report(
            "SIM002",
            node,
            "import of the global `random` module; draw from a named "
            "RandomStreams stream instead",
        )

    # -- calls (SIM001, SIM002, SIM004, SIM005, SIM006) ----------------------

    def visit_Call(self, node: ast.Call) -> None:
        resolved = self._resolve(node.func) if not isinstance(node.func, ast.Name) \
            else self._aliases.get(node.func.id)
        self._check_wallclock(node, resolved)
        self._check_numpy_random(node, resolved)
        self._check_emit_guard(node)
        self._check_setattr_mutation(node)
        self._check_io(node, resolved)
        self.generic_visit(node)

    def _check_wallclock(self, node: ast.Call, resolved: Optional[str]) -> None:
        if resolved is None or self.config.is_clock_module(self.path):
            return
        if resolved in _WALLCLOCK_CALLS:
            self._report(
                "SIM001",
                node,
                f"wall-clock read `{resolved}()`; use repro.core.clock."
                "wall_clock() (timing reports) or the engine clock "
                "(simulation time)",
            )
        elif (
            resolved in _WALLCLOCK_ARGLESS
            and not node.args
            and not node.keywords
        ):
            self._report(
                "SIM001",
                node,
                f"implicit wall-clock read `{resolved}()`; simulation code "
                "must not depend on the host clock",
            )

    def _check_numpy_random(self, node: ast.Call, resolved: Optional[str]) -> None:
        if self.config.is_rng_module(self.path):
            return
        if resolved is None or not resolved.startswith("numpy.random."):
            return
        tail = resolved[len("numpy.random."):]
        if tail == "seed" or tail in _NUMPY_GLOBAL_DRAWS and "." not in tail:
            self._report(
                "SIM002",
                node,
                f"`{resolved}` uses numpy's process-global random state; "
                "draw from a named RandomStreams stream",
            )
        elif tail == "default_rng" and not node.args and not node.keywords:
            self._report(
                "SIM002",
                node,
                "`numpy.random.default_rng()` without a seed is "
                "non-reproducible; pass an explicit seed or use "
                "RandomStreams",
            )

    def _check_emit_guard(self, node: ast.Call) -> None:
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "emit"):
            return
        receiver = _terminal_name(func.value)
        if receiver not in ("obs", "bus"):
            return
        if self.config.is_obs_module(self.path):
            return
        if self._guard_depth > 0:
            return
        if self._early_guard_lines and self._early_guard_lines[-1] is not None \
                and node.lineno > self._early_guard_lines[-1]:
            return
        self._report(
            "SIM004",
            node,
            "hook emission without the one-branch disabled guard; wrap in "
            "`if bus.enabled:` (or return early when disabled) so untraced "
            "runs never build the event",
        )

    def _check_setattr_mutation(self, node: ast.Call) -> None:
        func = node.func
        target: Optional[ast.expr] = None
        if isinstance(func, ast.Name) and func.id == "setattr" and node.args:
            target = node.args[0]
        elif (
            isinstance(func, ast.Attribute)
            and func.attr == "__setattr__"
            and node.args
        ):
            target = node.args[0]
        if target is not None and _is_config_like(target):
            self._report(
                "SIM005",
                node,
                "setattr on a shared config/scenario object after "
                "construction; derive a new value with .with_()",
            )

    def _check_io(self, node: ast.Call, resolved: Optional[str]) -> None:
        if self.config.is_io_module(self.path):
            return
        func = node.func
        name: Optional[str] = None
        if isinstance(func, ast.Name) and func.id in _IO_BUILTINS:
            # Respect shadowing through an import alias (`from x import open`).
            if self._aliases.get(func.id, func.id) == func.id:
                name = func.id
        elif isinstance(func, ast.Attribute) and func.attr in _IO_METHODS:
            name = func.attr
        if name is not None:
            self._report(
                "SIM006",
                node,
                f"I/O call `{name}` in simulation code; only export/CLI/obs "
                "modules may touch files or the terminal",
            )

    # -- comparisons (SIM003) ------------------------------------------------

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for side in (left, right):
                if _is_time_like(side):
                    self._report(
                        "SIM003",
                        node,
                        "exact ==/!= on a simulation-time expression "
                        f"(`{_terminal_name(side)}`); float round-off makes "
                        "this fragile — use units.times_equal()",
                    )
                    break
        self.generic_visit(node)

    # -- assignments (SIM005) ------------------------------------------------

    def _check_assign_target(self, target: ast.expr) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_assign_target(element)
            return
        if isinstance(target, ast.Starred):
            self._check_assign_target(target.value)
            return
        if isinstance(target, (ast.Subscript, ast.Attribute)) and _is_config_like(
            target.value
        ):
            self._report(
                "SIM005",
                target,
                "mutation of a shared config/scenario object; configs are "
                "frozen values — build a modified copy with .with_()",
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_assign_target(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_assign_target(node.target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_assign_target(node.target)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._check_assign_target(target)
        self.generic_visit(node)

    # -- guard tracking (SIM004) ----------------------------------------------

    def visit_If(self, node: ast.If) -> None:
        guarded = _mentions_guard_flag(node.test)
        self.visit(node.test)
        if guarded:
            self._guard_depth += 1
        for child in node.body:
            self.visit(child)
        if guarded:
            self._guard_depth -= 1
        for child in node.orelse:
            self.visit(child)

    def _enter_function(self, node: ast.AST, body: List[ast.stmt]) -> None:
        """Record the line of an early-return hook guard, if any: a top-
        level ``if <...enabled...>: ... return`` statement."""
        guard_line: Optional[int] = None
        for statement in body:
            if (
                isinstance(statement, ast.If)
                and _mentions_guard_flag(statement.test)
                and any(isinstance(s, ast.Return) for s in ast.walk(statement))
            ):
                guard_line = statement.lineno
                break
        self._early_guard_lines.append(guard_line)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_function(node, node.body)
        self.generic_visit(node)
        self._early_guard_lines.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_function(node, node.body)
        self.generic_visit(node)
        self._early_guard_lines.pop()
