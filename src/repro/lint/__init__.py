"""simlint — determinism & invariant static analysis for the simulator.

A custom AST pass enforcing the reproducibility discipline the paper's
results depend on: no ambient wall-clock reads (SIM001), no unseeded
randomness (SIM002), no exact float comparison of simulation times
(SIM003), guarded hook emissions (SIM004), immutable shared configs
(SIM005) and no I/O from simulation code (SIM006).

Run it as ``repro lint src/repro`` (exit code 1 on findings) or use the
API::

    from repro.lint import lint_paths, render_text

    findings, n_files = lint_paths(["src/repro"])
    print(render_text(findings, n_files))
"""

from .checker import (
    JSON_SCHEMA_VERSION,
    LintUsageError,
    iter_python_files,
    lint_paths,
    lint_source,
    make_config,
    render_json,
    render_text,
)
from .config import LintConfig
from .findings import RULES, Finding

__all__ = [
    "Finding",
    "RULES",
    "LintConfig",
    "LintUsageError",
    "JSON_SCHEMA_VERSION",
    "lint_source",
    "lint_paths",
    "iter_python_files",
    "make_config",
    "render_text",
    "render_json",
]
