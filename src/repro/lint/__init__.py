"""simlint — determinism & invariant static analysis for the simulator.

A custom AST pass enforcing the reproducibility discipline the paper's
results depend on: no ambient wall-clock reads (SIM001), no unseeded
randomness (SIM002), no exact float comparison of simulation times
(SIM003), guarded hook emissions (SIM004), immutable shared configs
(SIM005) and no I/O from simulation code (SIM006).

On top of the per-file pass, :mod:`repro.lint.flow` builds a
project-wide graph and checks *cross-module* determinism contracts
(SIM101–SIM105): RNG stream ownership, event-ordering discipline,
summary-JSON schema agreement, stale suppressions and the obs hook
taxonomy.

Run it as ``repro lint src/repro`` (exit code 1 on findings), add
``--flow`` for the whole-program pass, or use the API::

    from repro.lint import lint_paths, render_text

    findings, n_files = lint_paths(["src/repro"])
    print(render_text(findings, n_files))
"""

from .checker import (
    JSON_SCHEMA_VERSION,
    LintUsageError,
    iter_python_files,
    lint_paths,
    lint_source,
    make_config,
    parse_suppression_directives,
    render_json,
    render_text,
    syntax_error_finding,
)
from .config import LintConfig
from .findings import ALL_RULES, FLOW_RULES, RULES, Finding, suggest_rule_codes
from .flow import (
    FlowReport,
    default_flow_config,
    flow_lint_paths,
    render_flow_json,
    render_flow_text,
)

__all__ = [
    "Finding",
    "RULES",
    "FLOW_RULES",
    "ALL_RULES",
    "LintConfig",
    "LintUsageError",
    "JSON_SCHEMA_VERSION",
    "FlowReport",
    "lint_source",
    "lint_paths",
    "iter_python_files",
    "make_config",
    "parse_suppression_directives",
    "suggest_rule_codes",
    "syntax_error_finding",
    "render_text",
    "render_json",
    "default_flow_config",
    "flow_lint_paths",
    "render_flow_text",
    "render_flow_json",
]
