"""The flow-rule passes SIM101–SIM105 over a :class:`ProjectGraph`.

Each pass is a pure function ``(graph, config) -> List[Finding]``; the
driver (:mod:`.checker`) applies suppression comments and the committed
baseline afterwards.  Rule semantics:

SIM101 — **RNG stream aliasing.**  Every named stream must have exactly
one owning component: two components calling ``streams.get("x")`` share
(and therefore perturb) each other's draws, silently breaking the
add-a-consumer-without-disturbing-anyone guarantee of
:class:`repro.core.rng.RandomStreams`.  Dynamically-computed names with
no literal prefix are flagged too — they defeat static ownership
entirely — while literal-prefix f-string *families*
(``f"faults.node{i}"``) are allowed as long as no other stream name
falls inside the family's prefix.

SIM102 — **event-ordering hazards.**  The DES is only deterministic if
all state changes flow through the calendar: touching private ``Engine``
attributes outside the kernel, assigning to a ``.now`` clock, or a
``TraceSink.on_event`` observer that schedules events / mutates the
shared event object are all static races.

SIM103 — **schema drift.**  Summary-JSON writers and readers are checked
as a contract: every key a reader requires must be produced by its
writer, writers must stamp ``schema_version``, and call sites must not
hardcode ``schema_version=N`` literals (they go stale on the next bump).

SIM104 — **stale suppressions.**  A ``# simlint: disable[=CODES]``
directive must still suppress at least one finding (per-file or flow) on
its target line; each code that matches nothing is reported.

SIM105 — **obs hook contract.**  Every kind in the ``class kinds``
taxonomy must be emitted somewhere and consumed somewhere (a sink,
exporter or filter); emitting a raw dotted string that is not in the
taxonomy is a typo by construction.
"""

from __future__ import annotations

import difflib
from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..config import LintConfig
from ..findings import Finding
from .graph import FunctionFacts, KindDef, ModuleInfo, ProjectGraph, StreamReg


def _finding(
    code: str,
    config: LintConfig,
    out: List[Finding],
    path: str,
    line: int,
    col: int,
    message: str,
) -> None:
    if config.enabled(code):
        out.append(Finding(code=code, path=path, line=line, col=col, message=message))


# -- SIM101: RNG stream aliasing ----------------------------------------------


def check_stream_aliasing(graph: ProjectGraph, config: LintConfig) -> List[Finding]:
    out: List[Finding] = []
    regs: List[StreamReg] = []
    components: Dict[StreamReg, str] = {}
    for path in sorted(graph.modules):
        info = graph.modules[path]
        if config.is_rng_module(path):
            continue  # the factory's own internals are not registrations
        for reg in info.stream_regs:
            regs.append(reg)
            components[reg] = info.component

    literal_owner: Dict[str, Set[str]] = defaultdict(set)
    for reg in regs:
        if not reg.dynamic:
            literal_owner[reg.name].add(components[reg])

    for reg in regs:
        if reg.dynamic and not reg.name:
            _finding(
                "SIM101",
                config,
                out,
                reg.path,
                reg.line,
                reg.col,
                "dynamically-computed RNG stream name with no literal "
                "prefix; static analysis cannot prove the stream is "
                "dedicated — use a literal name or a literal-prefix "
                "f-string family",
            )
        elif reg.dynamic:
            # A family owns its prefix: any literal stream name (or other
            # family) from a different component inside the prefix aliases.
            for other in regs:
                if other is reg or components[other] == components[reg]:
                    continue
                if other.name.startswith(reg.name) or reg.name.startswith(
                    other.name
                ):
                    _finding(
                        "SIM101",
                        config,
                        out,
                        reg.path,
                        reg.line,
                        reg.col,
                        f"dynamic RNG stream family '{reg.name}*' overlaps "
                        f"stream '{other.name}' registered by component "
                        f"'{components[other]}' ({other.path}:{other.line})",
                    )
        elif len(literal_owner[reg.name]) > 1:
            owners = ", ".join(sorted(literal_owner[reg.name]))
            _finding(
                "SIM101",
                config,
                out,
                reg.path,
                reg.line,
                reg.col,
                f"RNG stream '{reg.name}' is registered by more than one "
                f"component ({owners}); a named stream must have a single "
                "owner or the components alias each other's draws",
            )
    return out


# -- SIM102: event-ordering hazards -------------------------------------------


def check_event_ordering(graph: ProjectGraph, config: LintConfig) -> List[Finding]:
    out: List[Finding] = []
    sinks = graph.sink_classes()
    for path in sorted(graph.modules):
        info = graph.modules[path]
        in_kernel = path.endswith("core/engine.py")
        if not in_kernel:
            for line, col, attr in info.engine_private_refs:
                _finding(
                    "SIM102",
                    config,
                    out,
                    path,
                    line,
                    col,
                    f"access to private engine attribute `.{attr}` outside "
                    "the kernel; go through the calendar API "
                    "(call_at/call_after/cancel) so event ordering stays "
                    "deterministic",
                )
            for line, col in info.now_stores:
                _finding(
                    "SIM102",
                    config,
                    out,
                    path,
                    line,
                    col,
                    "assignment to a `.now` attribute; simulation time is "
                    "engine-owned and advances only via dispatch",
                )
        for class_name, facts in sorted(info.observers.items()):
            if class_name not in sinks:
                continue
            for line, col, method in facts.sched_calls:
                _finding(
                    "SIM102",
                    config,
                    out,
                    path,
                    line,
                    col,
                    f"trace observer {class_name}.on_event schedules "
                    f"simulation work (`{method}`); sinks must be "
                    "read-only — feeding back into the calendar makes "
                    "metrics depend on whether tracing is enabled",
                )
            for line, col, root in facts.foreign_stores:
                _finding(
                    "SIM102",
                    config,
                    out,
                    path,
                    line,
                    col,
                    f"trace observer {class_name}.on_event mutates the "
                    f"shared `{root}` object; every other sink sees the "
                    "mutation — copy instead",
                )
    return out


# -- SIM103: schema drift ------------------------------------------------------


class SchemaContract:
    """One writer/readers pairing checked for key drift."""

    __slots__ = ("name", "writer", "readers")

    def __init__(
        self,
        name: str,
        writer: Tuple[str, str],
        readers: Sequence[Tuple[str, str]],
    ) -> None:
        self.name = name
        self.writer = writer
        self.readers = tuple(readers)


#: The repository's summary-JSON contract: what ``load_result_json``
#: (and anything else registered here) reads must be produced by
#: ``result_summary_dict``.
DEFAULT_SCHEMA_CONTRACTS: Tuple[SchemaContract, ...] = (
    SchemaContract(
        name="result-summary",
        writer=("*/sim/export.py", "result_summary_dict"),
        readers=(("*/sim/export.py", "load_result_json"),),
    ),
)


def _reader_keys(info: ModuleInfo, facts: FunctionFacts) -> Set[str]:
    keys = set(facts.read_keys)
    for const in facts.referenced_constants:
        keys.update(info.string_constants.get(const, ()))
    return keys


def check_schema_drift(
    graph: ProjectGraph,
    config: LintConfig,
    contracts: Sequence[SchemaContract] = DEFAULT_SCHEMA_CONTRACTS,
) -> List[Finding]:
    out: List[Finding] = []
    for path in sorted(graph.modules):
        for literal in graph.modules[path].schema_literals:
            _finding(
                "SIM103",
                config,
                out,
                path,
                literal.line,
                literal.col,
                f"hardcoded schema_version={literal.value} passed to "
                f"`{literal.callee}`; reference the writer's "
                "SCHEMA_VERSION constant so version bumps propagate",
            )
    for contract in contracts:
        writer = graph.find_function(*contract.writer)
        if writer is None:
            continue
        writer_info, writer_facts = writer
        written = writer_facts.returned_dict_keys
        if not written:
            continue
        if "schema_version" not in written:
            _finding(
                "SIM103",
                config,
                out,
                writer_info.path,
                1,
                1,
                f"schema contract '{contract.name}': writer "
                f"{contract.writer[1]} does not stamp 'schema_version'",
            )
        for reader_glob, reader_name in contract.readers:
            reader = graph.find_function(reader_glob, reader_name)
            if reader is None:
                continue
            reader_info, reader_facts = reader
            for key in sorted(_reader_keys(reader_info, reader_facts) - written):
                _finding(
                    "SIM103",
                    config,
                    out,
                    reader_info.path,
                    1,
                    1,
                    f"schema contract '{contract.name}': {reader_name} "
                    f"reads key '{key}' that {contract.writer[1]} never "
                    "writes (drift — bump schema_version and fix one side)",
                )
    return out


# -- SIM104: stale suppressions ------------------------------------------------


def check_stale_suppressions(
    graph: ProjectGraph,
    config: LintConfig,
    flow_findings: Sequence[Finding],
) -> List[Finding]:
    """A directive earns its keep by matching a *raw* finding (per-file
    rules pre-suppression, or any flow finding) on its target line."""
    out: List[Finding] = []
    by_location: Dict[Tuple[str, int], Set[str]] = defaultdict(set)
    for path in sorted(graph.modules):
        for raw in graph.modules[path].raw_findings:
            by_location[(raw.path, raw.line)].add(raw.code)
    for finding in flow_findings:
        by_location[(finding.path, finding.line)].add(finding.code)
    for path in sorted(graph.modules):
        for directive in graph.modules[path].suppressions:
            present = by_location.get((path, directive.target_line), set())
            if not directive.codes:
                if not present:
                    _finding(
                        "SIM104",
                        config,
                        out,
                        path,
                        directive.comment_line,
                        1,
                        "bare `# simlint: disable` suppresses nothing on "
                        f"line {directive.target_line}; remove it",
                    )
                continue
            for code in directive.codes:
                if code not in present:
                    _finding(
                        "SIM104",
                        config,
                        out,
                        path,
                        directive.comment_line,
                        1,
                        f"suppression for {code} matches no finding on "
                        f"line {directive.target_line} (stale); remove "
                        "the code from the directive",
                    )
    return out


# -- SIM105: obs hook contract ---------------------------------------------------


def check_hook_contract(graph: ProjectGraph, config: LintConfig) -> List[Finding]:
    out: List[Finding] = []
    defs: Dict[str, Tuple[str, KindDef]] = {}
    values: Set[str] = set()
    for path in sorted(graph.modules):
        info = graph.modules[path]
        for definition in info.kind_defs:
            defs[definition.const] = (path, definition)
            values.add(definition.value)
    if not defs:
        return out
    emitted: Set[str] = set()
    consumed: Set[str] = set()
    for path in sorted(graph.modules):
        info = graph.modules[path]
        for ref in info.kind_refs:
            # Non-emit references are consumptions wherever they live:
            # sinks and exporters mostly sit in obs/, but a label map in
            # the defining module counts just the same.
            if ref.emitted:
                emitted.add(ref.const)
            else:
                consumed.add(ref.const)
    for const in sorted(defs):
        path, definition = defs[const]
        if const not in emitted:
            _finding(
                "SIM105",
                config,
                out,
                path,
                definition.line,
                definition.col,
                f"hook kind {const} ('{definition.value}') is defined but "
                "never emitted (dead hook) — delete it or instrument the "
                "component",
            )
        elif const not in consumed:
            _finding(
                "SIM105",
                config,
                out,
                path,
                definition.line,
                definition.col,
                f"hook kind {const} ('{definition.value}') is emitted but "
                "never consumed by any sink/exporter — subscribe a "
                "counter/label or drop the emission",
            )
    for path in sorted(graph.modules):
        for literal in graph.modules[path].emit_literals:
            if literal.value in values:
                continue
            hint = difflib.get_close_matches(literal.value, sorted(values), n=1)
            suffix = f" (did you mean '{hint[0]}'?)" if hint else ""
            _finding(
                "SIM105",
                config,
                out,
                path,
                literal.line,
                literal.col,
                f"emit() with raw kind string '{literal.value}' not in the "
                f"kinds taxonomy{suffix}; use the kinds.* constant",
            )
    return out


# -- driver entry ---------------------------------------------------------------


def run_flow_rules(
    graph: ProjectGraph,
    config: Optional[LintConfig] = None,
    contracts: Sequence[SchemaContract] = DEFAULT_SCHEMA_CONTRACTS,
) -> List[Finding]:
    """All passes in rule order; SIM104 runs last so it sees the other
    flow findings when judging whether a suppression is stale."""
    config = config or LintConfig()
    findings: List[Finding] = []
    findings.extend(check_stream_aliasing(graph, config))
    findings.extend(check_event_ordering(graph, config))
    findings.extend(check_schema_drift(graph, config))
    findings.extend(check_hook_contract(graph, config))
    findings.extend(check_stale_suppressions(graph, config, findings))
    return sorted(findings, key=Finding.sort_key)
