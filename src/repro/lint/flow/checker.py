"""Driver for the whole-program flow lint (``repro lint --flow``).

Pipeline: walk files -> build the :class:`ProjectGraph` fact base ->
run the SIM101–SIM105 passes -> drop findings waived by in-source
suppression comments -> split the rest against the committed baseline.
Only *new* (non-grandfathered) findings gate CI.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..checker import iter_python_files
from ..config import LintConfig
from ..findings import ALL_RULES, Finding
from .baseline import BaselineEntry, apply_baseline, load_baseline
from .graph import ProjectGraph, build_graph
from .rules import run_flow_rules

#: Bumped when the flow JSON report shape changes.
FLOW_JSON_SCHEMA_VERSION = 1


def default_flow_config() -> LintConfig:
    """Config with the full catalogue enabled (flow rules included).

    The plain :class:`LintConfig` default selects only the per-file
    rules, which would silently disable every SIM1xx pass.
    """
    return LintConfig(select=frozenset(ALL_RULES))


@dataclass
class FlowReport:
    """Outcome of one flow-lint run."""

    #: Findings not covered by the baseline — these gate CI.
    new: List[Finding] = field(default_factory=list)
    #: Findings matched by a baseline entry (reported, never fatal).
    grandfathered: List[Finding] = field(default_factory=list)
    #: Baseline entries that matched nothing (debt already paid).
    unused_entries: List[BaselineEntry] = field(default_factory=list)
    files_checked: int = 0
    #: Fact-base size counters from :meth:`ProjectGraph.stats`.
    graph_stats: Dict[str, int] = field(default_factory=dict)

    def is_clean(self) -> bool:
        return not self.new

    @property
    def all_findings(self) -> List[Finding]:
        return sorted(self.new + self.grandfathered, key=Finding.sort_key)


def _apply_source_suppressions(
    findings: Sequence[Finding], graph: ProjectGraph
) -> List[Finding]:
    by_path: Dict[str, Dict[int, Set[str]]] = {}
    for path, info in graph.modules.items():
        lines: Dict[int, Set[str]] = {}
        for directive in info.suppressions:
            lines.setdefault(directive.target_line, set()).update(
                directive.codes or {"*"}
            )
        by_path[path] = lines
    kept: List[Finding] = []
    for finding in findings:
        codes = by_path.get(finding.path, {}).get(finding.line)
        if codes is not None:
            # A bare directive must not swallow the SIM104 finding that
            # flags the directive itself; waiving one takes an explicit
            # ``disable=SIM104``.
            blanket = "*" in codes and finding.code != "SIM104"
            if blanket or finding.code in codes:
                continue
        kept.append(finding)
    return kept


def flow_lint_source(
    sources: Dict[str, str], config: Optional[LintConfig] = None
) -> Tuple[List[Finding], ProjectGraph]:
    """Flow-lint an in-memory ``{path: source}`` project (test harness
    entry point; no filesystem access)."""
    from .graph import collect_module

    config = config or default_flow_config()
    graph = ProjectGraph()
    for path in sorted(sources):
        try:
            info = collect_module(path, sources[path], config)
        except SyntaxError as error:
            from ..checker import syntax_error_finding

            graph.parse_errors.append(
                syntax_error_finding(Path(path).as_posix(), error)
            )
            continue
        graph.modules[info.path] = info
    findings = run_flow_rules(graph, config)
    findings = _apply_source_suppressions(findings, graph)
    findings.extend(graph.parse_errors)
    return sorted(findings, key=Finding.sort_key), graph


def flow_lint_paths(
    paths: Sequence[str],
    config: Optional[LintConfig] = None,
    baseline_path: Optional[Path] = None,
) -> FlowReport:
    """Flow-lint every ``.py`` file under ``paths`` against a baseline."""
    config = config or default_flow_config()
    files = iter_python_files(paths)
    graph = build_graph(files, config)
    findings = run_flow_rules(graph, config)
    findings = _apply_source_suppressions(findings, graph)
    findings.extend(graph.parse_errors)
    findings = sorted(findings, key=Finding.sort_key)
    entries = load_baseline(baseline_path) if baseline_path else []
    new, grandfathered, unused = apply_baseline(findings, entries)
    return FlowReport(
        new=new,
        grandfathered=grandfathered,
        unused_entries=unused,
        files_checked=len(files),
        graph_stats=graph.stats(),
    )


# -- rendering ---------------------------------------------------------------


def render_flow_text(report: FlowReport) -> str:
    """Human-readable flow report, grep-friendly like the per-file one."""
    lines = [
        f"{finding.location()}: {finding.code} {finding.message}"
        for finding in report.new
    ]
    for finding in report.grandfathered:
        lines.append(
            f"{finding.location()}: {finding.code} [baseline] {finding.message}"
        )
    for entry in report.unused_entries:
        lines.append(
            f"simlint-flow: baseline entry matches nothing "
            f"({entry.code} {entry.path} ~ {entry.match!r}); remove it"
        )
    noun = "file" if report.files_checked == 1 else "files"
    if report.new:
        lines.append(
            f"simlint-flow: {len(report.new)} new finding(s), "
            f"{len(report.grandfathered)} grandfathered in "
            f"{report.files_checked} {noun}"
        )
    else:
        lines.append(
            f"simlint-flow: clean ({report.files_checked} {noun} checked, "
            f"{len(report.grandfathered)} grandfathered)"
        )
    return "\n".join(lines)


def render_flow_json(report: FlowReport) -> str:
    """Machine-readable flow report for the CI findings artifact."""
    payload = {
        "schema_version": FLOW_JSON_SCHEMA_VERSION,
        "tool": "simlint-flow",
        "files_checked": report.files_checked,
        "count": len(report.new),
        "findings": [finding.as_dict() for finding in report.new],
        "grandfathered": [
            finding.as_dict() for finding in report.grandfathered
        ],
        "unused_baseline_entries": [
            entry.as_dict() for entry in report.unused_entries
        ],
        "graph": report.graph_stats,
    }
    return json.dumps(payload, indent=2)
