"""Committed baseline of grandfathered flow findings.

The flow rules gate CI, but a new rule typically fires on pre-existing
code that is known-acceptable (e.g. hook kinds consumed only by the test
suite).  Rather than weakening the rule or sprinkling suppression
comments, such findings are *grandfathered* in a committed JSON baseline
(`.simlint-flow.json` at the repository root).  CI then fails only on
findings **not** covered by the baseline — i.e. on regressions.

Entries match findings structurally, not positionally: a finding is
covered when its ``code`` equals the entry's, its ``path`` matches the
entry's glob, and the entry's ``match`` substring occurs in the message.
Line numbers are deliberately not part of the match — they churn on
every unrelated edit.  Every entry must carry a non-empty
``justification`` so the reason it is acceptable survives in review.

``repro lint --flow --update-baseline`` rewrites the file from the
current findings (with placeholder justifications to fill in), and the
loader reports entries that no longer match anything so the baseline
shrinks as debt is paid down.
"""

from __future__ import annotations

import fnmatch
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Sequence, Tuple

from ..findings import Finding

#: Version stamp of the baseline file format itself.
BASELINE_SCHEMA_VERSION = 1

#: Default baseline location, relative to the lint root.
DEFAULT_BASELINE_NAME = ".simlint-flow.json"


class BaselineError(ValueError):
    """Raised when a baseline file is malformed."""


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered finding pattern."""

    code: str
    path: str
    match: str
    justification: str

    def covers(self, finding: Finding) -> bool:
        return (
            finding.code == self.code
            and fnmatch.fnmatch(finding.path, self.path)
            and self.match in finding.message
        )

    def as_dict(self) -> Dict[str, str]:
        return {
            "code": self.code,
            "path": self.path,
            "match": self.match,
            "justification": self.justification,
        }


def _entry_from_dict(raw: Any, index: int) -> BaselineEntry:
    if not isinstance(raw, dict):
        raise BaselineError(f"baseline entry #{index} is not an object")
    missing = [k for k in ("code", "path", "match", "justification") if k not in raw]
    if missing:
        raise BaselineError(
            f"baseline entry #{index} is missing {', '.join(missing)}"
        )
    entry = BaselineEntry(
        code=str(raw["code"]),
        path=str(raw["path"]),
        match=str(raw["match"]),
        justification=str(raw["justification"]).strip(),
    )
    if not entry.justification:
        raise BaselineError(
            f"baseline entry #{index} ({entry.code} {entry.path}) has an "
            "empty justification; every grandfathered finding must say why"
        )
    return entry


def load_baseline(path: Path) -> List[BaselineEntry]:
    """Parse a baseline file; a missing file is an empty baseline."""
    if not path.exists():
        return []
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise BaselineError(f"baseline {path} is not valid JSON: {error}") from error
    if not isinstance(payload, dict):
        raise BaselineError(f"baseline {path}: top level must be an object")
    version = payload.get("schema_version")
    if version != BASELINE_SCHEMA_VERSION:
        raise BaselineError(
            f"baseline {path}: schema_version {version!r} is not "
            f"{BASELINE_SCHEMA_VERSION}"
        )
    raw_entries = payload.get("entries", [])
    if not isinstance(raw_entries, list):
        raise BaselineError(f"baseline {path}: 'entries' must be a list")
    return [_entry_from_dict(raw, i) for i, raw in enumerate(raw_entries)]


def apply_baseline(
    findings: Sequence[Finding], entries: Sequence[BaselineEntry]
) -> Tuple[List[Finding], List[Finding], List[BaselineEntry]]:
    """Split findings by baseline coverage.

    Returns ``(new, grandfathered, unused_entries)`` where *new* are the
    findings CI should gate on and *unused_entries* are baseline entries
    that matched nothing (candidates for deletion).
    """
    new: List[Finding] = []
    grandfathered: List[Finding] = []
    used: set = set()
    for finding in findings:
        covered = False
        for i, entry in enumerate(entries):
            if entry.covers(finding):
                used.add(i)
                covered = True
                break
        (grandfathered if covered else new).append(finding)
    unused = [entry for i, entry in enumerate(entries) if i not in used]
    return new, grandfathered, unused


def baseline_payload(findings: Sequence[Finding]) -> Dict[str, Any]:
    """Serializable baseline covering exactly the given findings."""
    entries: List[Dict[str, str]] = []
    seen: set = set()
    for finding in sorted(findings, key=Finding.sort_key):
        key = (finding.code, finding.path, finding.message)
        if key in seen:
            continue
        seen.add(key)
        entries.append(
            {
                "code": finding.code,
                "path": finding.path,
                "match": finding.message,
                "justification": "TODO: justify or fix",
            }
        )
    return {
        "schema_version": BASELINE_SCHEMA_VERSION,
        "tool": "simlint-flow",
        "entries": entries,
    }


def write_baseline(path: Path, findings: Sequence[Finding]) -> None:
    path.write_text(
        json.dumps(baseline_payload(findings), indent=2, sort_keys=False) + "\n",
        encoding="utf-8",
    )
