"""Whole-program fact collection for the flow rules.

One :class:`FlowCollector` AST walk per module extracts the cross-module
facts the SIM101–SIM105 passes need; :func:`build_graph` assembles them
into a :class:`ProjectGraph`:

* **imports** — repro-internal module adjacency (who imports whom);
* **RNG stream registrations** — every ``streams.get("name")`` /
  ``streams.spawn("name")`` site, with the literal name or the literal
  prefix of an f-string family (``f"faults.node{i}"`` → ``faults.node``);
* **hook kinds** — constants defined on a ``class kinds``, references
  split into *emissions* (arguments of an ``.emit(...)`` call) and
  *consumptions* (every other use outside the defining module);
* **schema facts** — dict-literal keys returned by writer functions,
  string keys read via subscripts / ``.get`` / ``.setdefault`` and via
  module-level string-tuple constants, plus hardcoded
  ``schema_version=<int>`` keyword literals at call sites;
* **ordering facts** — accesses to private ``Engine`` attributes,
  stores to ``.now``, the class-inheritance table, and what each
  ``on_event`` observer method schedules or mutates;
* **suppressions & raw findings** — per-file ``# simlint: disable``
  directives plus the *pre-suppression* per-file findings, so SIM104 can
  prove a directive still suppresses something.

Nothing here decides what is a violation — that is :mod:`.rules`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..config import LintConfig
from ..findings import Finding
from ..rules import RuleVisitor

#: Private Engine attributes nothing outside the kernel may touch.
ENGINE_PRIVATE_ATTRS = frozenset(
    {"_now", "_heap", "_seq", "_running", "_stopped"}
)

#: Methods that feed work into the event calendar.
SCHEDULING_METHODS = frozenset(
    {"call_at", "call_after", "schedule_at", "schedule_after"}
)


def component_of(path: str) -> str:
    """The owning component of a module path.

    For paths containing a ``repro`` package segment this is the first
    package below it (``src/repro/sched/decentral/policy.py`` →
    ``sched``; top-level modules like ``cli.py`` own themselves).
    Otherwise the parent directory name, so fixture trees in tests get
    sensible components too.
    """
    parts = Path(path).as_posix().split("/")
    if "repro" in parts:
        index = len(parts) - 1 - parts[::-1].index("repro")
        below = parts[index + 1 :]
        if len(below) >= 2:
            return below[0]
        if below:
            return Path(below[0]).stem
    if len(parts) >= 2:
        return parts[-2]
    return Path(parts[-1]).stem


@dataclass(frozen=True)
class StreamReg:
    """One RNG stream registration site (``.get``/``.spawn`` call)."""

    name: str  # literal name, or the literal prefix for dynamic names
    dynamic: bool  # True when any part of the name is computed
    path: str
    line: int
    col: int


@dataclass(frozen=True)
class KindDef:
    """One event-kind constant on a ``class kinds``."""

    const: str
    value: str
    path: str
    line: int
    col: int


@dataclass(frozen=True)
class KindRef:
    """One ``kinds.X`` reference outside the defining class."""

    const: str
    emitted: bool  # True when the reference is an ``.emit(...)`` argument
    path: str
    line: int
    col: int


@dataclass(frozen=True)
class EmitLiteral:
    """A raw string passed as the kind of an ``.emit(...)`` call."""

    value: str
    path: str
    line: int
    col: int


@dataclass(frozen=True)
class SchemaVersionLiteral:
    """A hardcoded ``schema_version=<int>`` keyword at a call site."""

    value: int
    callee: str
    path: str
    line: int
    col: int


@dataclass(frozen=True)
class Suppression:
    """One suppression directive: where it sits and what it targets."""

    comment_line: int
    target_line: int
    codes: Tuple[str, ...]  # empty tuple == bare disable (all codes)
    path: str


@dataclass
class FunctionFacts:
    """Schema-relevant behaviour of one function."""

    returned_dict_keys: Set[str] = field(default_factory=set)
    read_keys: Set[str] = field(default_factory=set)
    referenced_constants: Set[str] = field(default_factory=set)


@dataclass
class ObserverFacts:
    """What an ``on_event`` method does besides observing."""

    sched_calls: List[Tuple[int, int, str]] = field(default_factory=list)
    foreign_stores: List[Tuple[int, int, str]] = field(default_factory=list)


@dataclass
class ModuleInfo:
    """Everything the flow rules need to know about one module."""

    path: str
    component: str
    imports: Set[str] = field(default_factory=set)
    stream_regs: List[StreamReg] = field(default_factory=list)
    kind_defs: List[KindDef] = field(default_factory=list)
    kind_refs: List[KindRef] = field(default_factory=list)
    emit_literals: List[EmitLiteral] = field(default_factory=list)
    schema_literals: List[SchemaVersionLiteral] = field(default_factory=list)
    functions: Dict[str, FunctionFacts] = field(default_factory=dict)
    string_constants: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    class_bases: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    observers: Dict[str, ObserverFacts] = field(default_factory=dict)
    engine_private_refs: List[Tuple[int, int, str]] = field(default_factory=list)
    now_stores: List[Tuple[int, int]] = field(default_factory=list)
    suppressions: List[Suppression] = field(default_factory=list)
    raw_findings: List[Finding] = field(default_factory=list)


@dataclass
class ProjectGraph:
    """The assembled whole-program index (input of every flow pass)."""

    modules: Dict[str, ModuleInfo] = field(default_factory=dict)
    #: Files that failed to parse, as SIM000 findings (reported as-is).
    parse_errors: List[Finding] = field(default_factory=list)

    def sink_classes(self, roots: Sequence[str] = ("TraceSink",)) -> Set[str]:
        """Transitive subclasses of ``roots`` across every module."""
        bases: Dict[str, Tuple[str, ...]] = {}
        for info in self.modules.values():
            bases.update(info.class_bases)
        sinks: Set[str] = set(roots)
        changed = True
        while changed:
            changed = False
            for name, parents in bases.items():
                if name not in sinks and any(p in sinks for p in parents):
                    sinks.add(name)
                    changed = True
        return sinks

    def find_function(
        self, path_glob: str, name: str
    ) -> Optional[Tuple[ModuleInfo, FunctionFacts]]:
        """Locate a function by path glob + name (schema contracts)."""
        from fnmatch import fnmatch

        for path in sorted(self.modules):
            info = self.modules[path]
            if fnmatch(path, path_glob) and name in info.functions:
                return info, info.functions[name]
        return None

    def stats(self) -> Dict[str, int]:
        """Coarse graph size numbers for reports and benchmarks."""
        return {
            "modules": len(self.modules),
            "import_edges": sum(len(m.imports) for m in self.modules.values()),
            "stream_registrations": sum(
                len(m.stream_regs) for m in self.modules.values()
            ),
            "hook_kinds": sum(len(m.kind_defs) for m in self.modules.values()),
            "hook_refs": sum(len(m.kind_refs) for m in self.modules.values()),
        }


def _terminal_name(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _root_name(node: ast.expr) -> Optional[str]:
    """The base identifier of an attribute chain (``a.b.c`` → ``a``)."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


class FlowCollector(ast.NodeVisitor):
    """Single-pass fact extractor for one module (see module docstring)."""

    def __init__(self, info: ModuleInfo) -> None:
        self.info = info
        #: ids of ``kinds.X`` nodes already recorded as emissions, so the
        #: generic attribute visit does not double-count them as reads.
        self._emitted_ids: Set[int] = set()
        #: locals assigned from ``kinds.X`` expressions (e.g.
        #: ``kind = kinds.A if resumed else kinds.B``) awaiting a later
        #: ``emit(kind, ...)``; flushed as plain reads if never emitted.
        self._pending_aliases: Dict[str, List[Tuple[str, int, int]]] = {}
        self._function_stack: List[FunctionFacts] = []
        self._class_stack: List[str] = []

    def visit_Module(self, node: ast.Module) -> None:
        self.generic_visit(node)
        for name in sorted(self._pending_aliases):
            self._flush_alias(name)

    def _flush_alias(self, name: str) -> None:
        for const, line, col in self._pending_aliases.pop(name, ()):
            self.info.kind_refs.append(
                KindRef(
                    const=const,
                    emitted=False,
                    path=self.info.path,
                    line=line,
                    col=col,
                )
            )

    # -- imports -------------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.info.imports.add(alias.name)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module:
            self.info.imports.add(node.module)
        self.generic_visit(node)

    # -- classes (kinds taxonomy, sink hierarchy, observers) ------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        base_names = tuple(
            name
            for name in (_terminal_name(base) for base in node.bases)
            if name is not None
        )
        self.info.class_bases[node.name] = base_names
        if node.name == "kinds":
            for statement in node.body:
                if (
                    isinstance(statement, ast.Assign)
                    and len(statement.targets) == 1
                    and isinstance(statement.targets[0], ast.Name)
                    and isinstance(statement.value, ast.Constant)
                    and isinstance(statement.value.value, str)
                ):
                    self.info.kind_defs.append(
                        KindDef(
                            const=statement.targets[0].id,
                            value=statement.value.value,
                            path=self.info.path,
                            line=statement.lineno,
                            col=statement.col_offset + 1,
                        )
                    )
        self._class_stack.append(node.name)
        for statement in node.body:
            if (
                isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef))
                and statement.name == "on_event"
            ):
                self._collect_observer(node.name, statement)
            self.visit(statement)
        self._class_stack.pop()

    def _collect_observer(
        self, class_name: str, method: ast.AST
    ) -> None:
        facts = self.info.observers.setdefault(class_name, ObserverFacts())
        for sub in ast.walk(method):
            if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
                if sub.func.attr in SCHEDULING_METHODS:
                    facts.sched_calls.append(
                        (sub.lineno, sub.col_offset + 1, sub.func.attr)
                    )
            elif isinstance(sub, (ast.Assign, ast.AugAssign)):
                targets = (
                    sub.targets if isinstance(sub, ast.Assign) else [sub.target]
                )
                for target in targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        root = _root_name(target)
                        if root == "event":
                            facts.foreign_stores.append(
                                (target.lineno, target.col_offset + 1, root)
                            )

    # -- functions (schema facts) ---------------------------------------------

    def _visit_function(self, node: ast.AST, name: str, body: List[ast.stmt]) -> None:
        # Only top-level and method functions get schema facts; nested
        # closures fold into their parent (good enough for contracts).
        facts = self.info.functions.setdefault(name, FunctionFacts())
        self._function_stack.append(facts)
        for statement in body:
            self.visit(statement)
        self._function_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node, node.name, node.body)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node, node.name, node.body)

    def visit_Return(self, node: ast.Return) -> None:
        if self._function_stack and isinstance(node.value, ast.Dict):
            for key in node.value.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    self._function_stack[-1].returned_dict_keys.add(key.value)
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if (
            self._function_stack
            and isinstance(node.slice, ast.Constant)
            and isinstance(node.slice.value, str)
        ):
            self._function_stack[-1].read_keys.add(node.slice.value)
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        # Module-level tuples/lists of strings double as key manifests
        # (``_REQUIRED_SUMMARY_KEYS``); record them for contract readers.
        if (
            not self._function_stack
            and not self._class_stack
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, (ast.Tuple, ast.List))
        ):
            elements = node.value.elts
            if elements and all(
                isinstance(e, ast.Constant) and isinstance(e.value, str)
                for e in elements
            ):
                self.info.string_constants[node.targets[0].id] = tuple(
                    e.value for e in elements  # type: ignore[union-attr]
                )
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            kind_attrs = [
                sub
                for sub in ast.walk(node.value)
                if isinstance(sub, ast.Attribute)
                and _terminal_name(sub.value) == "kinds"
            ]
            if kind_attrs:
                alias = node.targets[0].id
                self._flush_alias(alias)  # reassignment: old refs were reads
                self._pending_aliases[alias] = [
                    (sub.attr, sub.lineno, sub.col_offset + 1)
                    for sub in kind_attrs
                ]
                self._emitted_ids.update(id(sub) for sub in kind_attrs)
        for target in node.targets:
            self._check_now_store(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_now_store(node.target)
        self.generic_visit(node)

    def _check_now_store(self, target: ast.expr) -> None:
        if (
            isinstance(target, ast.Attribute)
            and target.attr == "now"
            and _root_name(target) != "self"
        ):
            self.info.now_stores.append((target.lineno, target.col_offset + 1))

    # -- calls (streams, emissions, schema_version literals) -------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr in ("get", "spawn"):
                self._maybe_stream_reg(node, func)
            if func.attr == "emit":
                self._collect_emission(node)
            if func.attr in ("get", "setdefault") and self._function_stack:
                if (
                    node.args
                    and isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, str)
                ):
                    self._function_stack[-1].read_keys.add(node.args[0].value)
        for keyword in node.keywords:
            if (
                keyword.arg == "schema_version"
                and isinstance(keyword.value, ast.Constant)
                and isinstance(keyword.value.value, int)
            ):
                self.info.schema_literals.append(
                    SchemaVersionLiteral(
                        value=keyword.value.value,
                        callee=_terminal_name(func) or "?",
                        path=self.info.path,
                        line=keyword.value.lineno,
                        col=keyword.value.col_offset + 1,
                    )
                )
        self.generic_visit(node)

    def _maybe_stream_reg(self, node: ast.Call, func: ast.Attribute) -> None:
        receiver = func.value
        terminal = _terminal_name(receiver)
        is_streams = terminal is not None and "stream" in terminal.lower()
        if isinstance(receiver, ast.Call):
            callee = _terminal_name(receiver.func)
            is_streams = is_streams or callee == "RandomStreams"
        if not is_streams or not node.args:
            return
        arg = node.args[0]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            name, dynamic = arg.value, False
        elif isinstance(arg, ast.JoinedStr):
            prefix_parts: List[str] = []
            for value in arg.values:
                if isinstance(value, ast.Constant) and isinstance(value.value, str):
                    prefix_parts.append(value.value)
                else:
                    break
            name, dynamic = "".join(prefix_parts), True
        else:
            name, dynamic = "", True
        self.info.stream_regs.append(
            StreamReg(
                name=name,
                dynamic=dynamic,
                path=self.info.path,
                line=node.lineno,
                col=node.col_offset + 1,
            )
        )

    def _collect_emission(self, node: ast.Call) -> None:
        for arg in node.args:
            if isinstance(arg, ast.Name) and arg.id in self._pending_aliases:
                for const, line, col in self._pending_aliases.pop(arg.id):
                    self.info.kind_refs.append(
                        KindRef(
                            const=const,
                            emitted=True,
                            path=self.info.path,
                            line=line,
                            col=col,
                        )
                    )
            if (
                isinstance(arg, ast.Attribute)
                and _terminal_name(arg.value) == "kinds"
            ):
                self._emitted_ids.add(id(arg))
                self.info.kind_refs.append(
                    KindRef(
                        const=arg.attr,
                        emitted=True,
                        path=self.info.path,
                        line=arg.lineno,
                        col=arg.col_offset + 1,
                    )
                )
            elif isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                # Only the kind slot matters; it is the only dotted-name
                # string argument of emit() by convention, so record every
                # dotted literal and let the rule match against the
                # taxonomy (plain words like a source tag never collide).
                if "." in arg.value:
                    self.info.emit_literals.append(
                        EmitLiteral(
                            value=arg.value,
                            path=self.info.path,
                            line=arg.lineno,
                            col=arg.col_offset + 1,
                        )
                    )

    # -- attributes (kind reads, engine privates) ------------------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if id(node) not in self._emitted_ids:
            if _terminal_name(node.value) == "kinds":
                self.info.kind_refs.append(
                    KindRef(
                        const=node.attr,
                        emitted=False,
                        path=self.info.path,
                        line=node.lineno,
                        col=node.col_offset + 1,
                    )
                )
        if node.attr in ENGINE_PRIVATE_ATTRS:
            receiver = _terminal_name(node.value)
            if receiver is not None and receiver.lower().endswith("engine"):
                self.info.engine_private_refs.append(
                    (node.lineno, node.col_offset + 1, node.attr)
                )
        if self._function_stack:
            facts = self._function_stack[-1]
            if isinstance(node.value, ast.Name):
                facts.referenced_constants.add(node.value.id)
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if self._function_stack:
            self._function_stack[-1].referenced_constants.add(node.id)
        self.generic_visit(node)


def collect_module(
    path: str, source: str, config: Optional[LintConfig] = None
) -> ModuleInfo:
    """Parse one module and extract its flow facts (plus raw per-file
    findings and suppression directives for SIM104)."""
    from ..checker import parse_suppression_directives

    config = config or LintConfig()
    posix = Path(path).as_posix()
    info = ModuleInfo(path=posix, component=component_of(posix))
    tree = ast.parse(source, filename=path)
    FlowCollector(info).visit(tree)
    # Raw (pre-suppression) per-file findings with the FULL rule set: a
    # suppression is live as long as it silences *some* default finding,
    # regardless of the current --select.
    visitor = RuleVisitor(posix, LintConfig())
    visitor.visit(tree)
    info.raw_findings = sorted(visitor.findings, key=Finding.sort_key)
    for comment_line, target_line, codes in parse_suppression_directives(source):
        info.suppressions.append(
            Suppression(
                comment_line=comment_line,
                target_line=target_line,
                codes=codes,
                path=posix,
            )
        )
    return info


def build_graph(
    files: Sequence[Path], config: Optional[LintConfig] = None
) -> ProjectGraph:
    """Parse every file and assemble the whole-program graph.

    Unparseable files surface as SIM000 findings on
    :attr:`ProjectGraph.parse_errors` instead of aborting the build.
    """
    from ..checker import syntax_error_finding

    graph = ProjectGraph()
    for file_path in files:
        source = file_path.read_text(encoding="utf-8")
        try:
            info = collect_module(str(file_path), source, config)
        except SyntaxError as error:
            graph.parse_errors.append(
                syntax_error_finding(file_path.as_posix(), error)
            )
            continue
        graph.modules[info.path] = info
    return graph
