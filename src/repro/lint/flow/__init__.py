"""Whole-program flow lint: cross-module determinism contracts.

Where :mod:`repro.lint` checks one file at a time, this package builds a
project-wide fact base (:mod:`.graph`) and checks contracts that only
exist *between* modules (:mod:`.rules`, SIM101–SIM105): RNG stream
ownership, event-ordering discipline, writer/reader schema agreement,
suppression staleness and the obs hook taxonomy.  Pre-existing accepted
findings live in a committed baseline (:mod:`.baseline`) so CI gates on
regressions only.
"""

from .baseline import (
    BASELINE_SCHEMA_VERSION,
    BaselineEntry,
    BaselineError,
    DEFAULT_BASELINE_NAME,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from .checker import (
    FLOW_JSON_SCHEMA_VERSION,
    FlowReport,
    default_flow_config,
    flow_lint_paths,
    flow_lint_source,
    render_flow_json,
    render_flow_text,
)
from .graph import ProjectGraph, build_graph, collect_module, component_of
from .rules import run_flow_rules

__all__ = [
    "BASELINE_SCHEMA_VERSION",
    "BaselineEntry",
    "BaselineError",
    "DEFAULT_BASELINE_NAME",
    "FLOW_JSON_SCHEMA_VERSION",
    "FlowReport",
    "ProjectGraph",
    "apply_baseline",
    "build_graph",
    "collect_module",
    "component_of",
    "default_flow_config",
    "flow_lint_paths",
    "flow_lint_source",
    "load_baseline",
    "render_flow_json",
    "render_flow_text",
    "run_flow_rules",
    "write_baseline",
]
