"""Simulation configuration with the paper's defaults (§2.4).

One frozen dataclass carries every knob of a run; derived objects
(data space, cost model, distributions) are built from it on demand so a
config remains a plain, serialisable value.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Optional, Tuple

from ..core import units
from ..core.errors import ConfigurationError
from ..cluster.costmodel import CostModel
from ..data.dataspace import DataSpace
from ..topo.spec import TopologySpec
from ..workload.distributions import (
    ErlangJobSize,
    HotRegion,
    HotspotStartDistribution,
)


@dataclass(frozen=True)
class ScriptedFault:
    """One trace-driven fault for deterministic tests and replays.

    ``kind`` is ``"crash"`` (node ``node_id`` fails at ``time`` and
    recovers ``duration`` seconds later) or ``"stall"`` (tertiary storage
    degrades cluster-wide for ``duration`` seconds; ``node_id`` ignored).
    """

    time: float
    duration: float
    kind: str = "crash"
    node_id: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("crash", "stall"):
            raise ConfigurationError(
                f"fault kind must be 'crash' or 'stall', got {self.kind!r}"
            )
        if self.time < 0:
            raise ConfigurationError(f"fault time must be >= 0, got {self.time}")
        if self.duration <= 0:
            raise ConfigurationError(
                f"fault duration must be > 0, got {self.duration}"
            )


@dataclass(frozen=True)
class FaultConfig:
    """Fault-injection parameters (the ``repro.faults`` subsystem).

    Node crashes follow independent per-node alternating renewal
    processes: up times ~ Exp(``node_mtbf``), down times ~ Exp(``node_mttr``)
    drawn from the ``faults.node<i>`` RNG streams.  Tertiary stalls are a
    cluster-wide process from the ``faults.tertiary`` stream: gaps ~
    Exp(``stall_interval``), durations ~ Exp(``stall_duration``), during
    which tertiary reads slow down by ``stall_slowdown``.  ``scripted``
    faults replace the stochastic processes entirely (trace-driven tests).

    Recovery: an aborted subjob is retried after an exponential backoff
    ``retry_backoff_base * retry_backoff_factor**(attempt-1)`` capped at
    ``retry_backoff_max``; ``max_retries = 0`` means unlimited.
    """

    #: Mean time between failures per node (0 disables crashes).
    node_mtbf: float = 1 * units.DAY
    #: Mean time to repair per node.
    node_mttr: float = 2 * units.HOUR
    #: Whether a crash loses the node's disk cache contents.
    wipe_cache_on_failure: bool = False
    #: Mean time between tertiary stalls (0 disables stalls).
    stall_interval: float = 0.0
    #: Mean stall duration.
    stall_duration: float = 10 * units.MINUTE
    #: Per-event time multiplier for tertiary reads during a stall.
    stall_slowdown: float = 4.0
    #: First retry delay after an abort.
    retry_backoff_base: float = 60.0
    #: Backoff growth factor per failed attempt.
    retry_backoff_factor: float = 2.0
    #: Backoff ceiling.
    retry_backoff_max: float = 1 * units.HOUR
    #: Retry budget per subjob (0 = unlimited).
    max_retries: int = 0
    #: Trace-driven faults; non-empty disables the stochastic processes.
    scripted: Tuple[ScriptedFault, ...] = ()

    def __post_init__(self) -> None:
        if self.node_mtbf < 0 or self.node_mttr <= 0:
            raise ConfigurationError(
                f"need node_mtbf >= 0 and node_mttr > 0, got "
                f"mtbf={self.node_mtbf}, mttr={self.node_mttr}"
            )
        if self.stall_interval < 0 or self.stall_duration <= 0:
            raise ConfigurationError(
                f"need stall_interval >= 0 and stall_duration > 0, got "
                f"interval={self.stall_interval}, duration={self.stall_duration}"
            )
        if self.stall_slowdown < 1.0:
            raise ConfigurationError(
                f"stall_slowdown must be >= 1.0, got {self.stall_slowdown}"
            )
        if self.retry_backoff_base <= 0 or self.retry_backoff_factor < 1.0:
            raise ConfigurationError(
                f"need retry_backoff_base > 0 and retry_backoff_factor >= 1, "
                f"got base={self.retry_backoff_base}, "
                f"factor={self.retry_backoff_factor}"
            )
        if self.retry_backoff_max < self.retry_backoff_base:
            raise ConfigurationError(
                "retry_backoff_max must be >= retry_backoff_base "
                f"({self.retry_backoff_max} < {self.retry_backoff_base})"
            )
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )


@dataclass(frozen=True)
class NetFaultConfig:
    """Control-plane unreliability parameters (``repro.faults.net``).

    Every scheduler↔node control message (central dispatch/report,
    decentral grants and standing-bid posts) is routed through a
    :class:`~repro.faults.net.ControlChannel` that drops, duplicates,
    reorders and delays messages with the probabilities below, drawn from
    the dedicated ``faults.net.*`` RNG streams.  The hardened protocols
    recover via ack+retransmit with exponential backoff
    (``ack_timeout * ack_backoff_factor**(attempt-1)`` capped at
    ``ack_timeout_max``), give up after ``retransmit_budget`` retransmits
    (dead-letter: the work is re-pended, never stranded), and detect a
    dead arbiter after ``lease_misses`` consecutive lost lease beats
    (every ``lease_interval`` seconds) with a deterministic failover
    re-election.
    """

    #: Per-transmission loss probability (applies to acks too).
    loss: float = 0.0
    #: Probability a transmitted copy is spontaneously duplicated.
    duplicate: float = 0.0
    #: Mean exponential one-way delivery delay in seconds (0 = immediate).
    delay_mean: float = 0.0
    #: Probability a copy is held back past later traffic (reordering).
    reorder: float = 0.0
    #: Extra delay window applied to a reordered copy.
    reorder_window: float = 0.25
    #: First retransmit timeout after an unacknowledged send.
    ack_timeout: float = 1.0
    #: Retransmit timeout growth factor per attempt.
    ack_backoff_factor: float = 2.0
    #: Retransmit timeout ceiling.
    ack_timeout_max: float = 30.0
    #: Retransmits before a message is dead-lettered (completion reports
    #: retransmit without budget — losing ground truth is never an option).
    retransmit_budget: int = 8
    #: Arbiter lease heartbeat interval (decentral mode).
    lease_interval: float = 60.0
    #: Consecutive lost lease beats that trigger a failover re-election.
    lease_misses: int = 3

    def __post_init__(self) -> None:
        for name in ("loss", "duplicate", "reorder"):
            value = getattr(self, name)
            if not (0.0 <= value < 1.0):
                raise ConfigurationError(
                    f"net {name} probability must be in [0, 1), got {value}"
                )
        if self.delay_mean < 0 or self.reorder_window < 0:
            raise ConfigurationError(
                f"net delays must be >= 0, got delay_mean={self.delay_mean}, "
                f"reorder_window={self.reorder_window}"
            )
        if self.ack_timeout <= 0 or self.ack_backoff_factor < 1.0:
            raise ConfigurationError(
                f"need ack_timeout > 0 and ack_backoff_factor >= 1, got "
                f"timeout={self.ack_timeout}, factor={self.ack_backoff_factor}"
            )
        if self.ack_timeout_max < self.ack_timeout:
            raise ConfigurationError(
                "ack_timeout_max must be >= ack_timeout "
                f"({self.ack_timeout_max} < {self.ack_timeout})"
            )
        if self.retransmit_budget < 1:
            raise ConfigurationError(
                f"retransmit_budget must be >= 1, got {self.retransmit_budget}"
            )
        if self.lease_interval <= 0 or self.lease_misses < 1:
            raise ConfigurationError(
                f"need lease_interval > 0 and lease_misses >= 1, got "
                f"interval={self.lease_interval}, misses={self.lease_misses}"
            )

    @property
    def enabled(self) -> bool:
        """Whether any fault dimension is actually active.

        An all-zero config is the perfect network: the channel becomes a
        synchronous pass-through that draws no random numbers and
        schedules no events, so runs stay bit-identical to a channel-less
        build.
        """
        return (
            self.loss > 0
            or self.duplicate > 0
            or self.delay_mean > 0
            or self.reorder > 0
        )


@dataclass(frozen=True)
class SimulationConfig:
    """All parameters of one simulation run.

    Defaults reproduce the paper's §2.4 setup: 10 identical nodes, 100 GB
    disk caches, 2 TB data space of 600 KB events, 0.2 s CPU per event,
    10 MB/s disks, 1 MB/s tertiary streams, Erlang-4 job sizes with mean
    40 000 events (mode 30 000 — see DESIGN.md §2), two hot regions
    holding 50 % of the job start points in 10 % of the space, Poisson
    arrivals.
    """

    # -- randomness -----------------------------------------------------------
    seed: int = 0

    # -- cluster ---------------------------------------------------------------
    n_nodes: int = 10
    cache_bytes: int = 100 * units.GB
    node_speed_factors: Optional[Tuple[float, ...]] = None

    # -- data ------------------------------------------------------------------
    total_data_bytes: int = 2 * units.TB
    event_bytes: int = 600 * units.KB

    # -- hardware timing ---------------------------------------------------------
    cpu_time_per_event: float = 0.2
    disk_throughput: float = 10 * units.MB  # bytes/second
    tertiary_throughput: float = 1 * units.MB
    network_throughput: float = 125 * units.MB
    pipelined_io: bool = False
    #: Per-tertiary-request setup latency (tape positioning); the paper
    #: assumes Castor's disk arrays hide it (0.0).
    tertiary_latency_s: float = 0.0

    # -- workload -----------------------------------------------------------------
    arrival_rate_per_hour: float = 1.0
    mean_job_events: float = 40_000.0
    erlang_shape: int = 4
    hot_regions: Tuple[Tuple[float, float], ...] = ((0.20, 0.05), (0.60, 0.05))
    hot_weight: float = 0.5

    # -- scheduling granularity -------------------------------------------------------
    min_subjob_events: int = 10
    chunk_events: int = 2000

    # -- run control ---------------------------------------------------------------
    duration: float = 40 * units.DAY
    warmup_fraction: float = 0.25
    probe_interval: float = 2 * units.HOUR

    # -- fault injection --------------------------------------------------------
    #: ``None`` simulates the paper's implicitly perfect cluster.
    faults: Optional[FaultConfig] = None
    #: ``None`` simulates the paper's implicitly perfect control LAN.
    net: Optional[NetFaultConfig] = None

    # -- hierarchical topology (repro.topo) --------------------------------------
    #: ``None`` (or a trivial depth-1 spec) simulates the paper's flat
    #: cluster: every node one disk hop from the shared tertiary store.
    topology: Optional[TopologySpec] = None

    # -- validation -------------------------------------------------------------------

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ConfigurationError(f"n_nodes must be >= 1, got {self.n_nodes}")
        if self.cache_bytes < 0:
            raise ConfigurationError(f"cache_bytes must be >= 0, got {self.cache_bytes}")
        if self.arrival_rate_per_hour <= 0:
            raise ConfigurationError(
                f"arrival_rate_per_hour must be > 0, got {self.arrival_rate_per_hour}"
            )
        if not (0.0 <= self.warmup_fraction < 1.0):
            raise ConfigurationError(
                f"warmup_fraction must be in [0, 1), got {self.warmup_fraction}"
            )
        if self.duration <= 0:
            raise ConfigurationError(f"duration must be > 0, got {self.duration}")
        if self.min_subjob_events < 1:
            raise ConfigurationError(
                f"min_subjob_events must be >= 1, got {self.min_subjob_events}"
            )
        if self.chunk_events < self.min_subjob_events:
            raise ConfigurationError(
                "chunk_events must be >= min_subjob_events "
                f"({self.chunk_events} < {self.min_subjob_events})"
            )
        if self.mean_job_events * self.event_bytes > self.total_data_bytes:
            raise ConfigurationError("mean job larger than the data space")
        if self.tertiary_latency_s < 0:
            raise ConfigurationError(
                f"tertiary_latency_s must be >= 0, got {self.tertiary_latency_s}"
            )

    # -- derived objects ---------------------------------------------------------------

    def dataspace(self) -> DataSpace:
        return DataSpace.from_bytes(self.total_data_bytes, self.event_bytes)

    def cost_model(self) -> CostModel:
        return CostModel.from_hardware(
            event_bytes=self.event_bytes,
            cpu_time_per_event=self.cpu_time_per_event,
            disk_throughput=self.disk_throughput,
            tertiary_throughput=self.tertiary_throughput,
            network_throughput=self.network_throughput,
            pipelined=self.pipelined_io,
            tertiary_latency=self.tertiary_latency_s,
        )

    def job_size_distribution(self) -> ErlangJobSize:
        return ErlangJobSize(self.mean_job_events, self.erlang_shape)

    def start_distribution(self) -> HotspotStartDistribution:
        return HotspotStartDistribution(
            self.dataspace(),
            regions=tuple(HotRegion(s, l) for s, l in self.hot_regions),
            hot_weight=self.hot_weight,
        )

    # -- derived scalars ---------------------------------------------------------------

    @property
    def cache_events(self) -> int:
        """Per-node disk cache capacity in whole events."""
        return int(self.cache_bytes // self.event_bytes)

    @property
    def warmup_time(self) -> float:
        return self.duration * self.warmup_fraction

    @property
    def mean_service_time_uncached(self) -> float:
        """Expected single-node no-cache job time (the paper's 32 000 s)."""
        return self.mean_job_events * self.cost_model().uncached_event_time

    @property
    def mean_service_time_cached(self) -> float:
        return self.mean_job_events * self.cost_model().cached_event_time

    @property
    def max_theoretical_load_per_hour(self) -> float:
        """All CPUs busy, all data cached (the paper's 3.46 jobs/h)."""
        return self.n_nodes * units.HOUR / self.mean_service_time_cached

    @property
    def offered_load_fraction(self) -> float:
        """Offered load relative to the theoretical maximum."""
        return self.arrival_rate_per_hour / self.max_theoretical_load_per_hour

    # -- convenience ----------------------------------------------------------------------

    def with_(self, **changes) -> "SimulationConfig":
        """A modified copy (thin wrapper over dataclasses.replace)."""
        return replace(self, **changes)

    def to_dict(self) -> dict:
        return asdict(self)


def paper_config(**overrides) -> SimulationConfig:
    """The §2.4 reference configuration, with keyword overrides."""
    return SimulationConfig(**overrides)


def quick_config(**overrides) -> SimulationConfig:
    """A reduced-scale configuration for tests and smoke benches.

    Scales the data space, caches and job sizes down by ~20x while
    preserving the paper's ratios (cache/data ≈ 5 %, job/data ≈ 1.2 %,
    caching factor 3.08), so policy behaviour is qualitatively unchanged
    but runs take milliseconds.
    """
    defaults = dict(
        total_data_bytes=100 * units.GB,
        cache_bytes=5 * units.GB,
        mean_job_events=2_000.0,
        min_subjob_events=10,
        chunk_events=200,
        duration=10 * units.DAY,
        arrival_rate_per_hour=1.0,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)
