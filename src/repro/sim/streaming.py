"""O(1)-memory streaming statistics for million-job runs.

The paper's measurement conventions (mean/median/p95 waiting time, mean
speedup, …) were computed over a retained list of per-job records — fine
for the paper's 20 nodes and a few thousand jobs, O(jobs) memory at the
1000-node scale the ROADMAP targets.  This module provides the streaming
replacements:

* :class:`StreamingMoments` — count/mean/variance via Welford's online
  update, plus exact running min/max;
* :class:`P2Quantile` — the Jain & Chlamtac P² algorithm: a five-marker
  piecewise-parabolic quantile estimate updated in O(1) per observation;
* :class:`StreamingTally` — the exact-then-sketch policy used by the
  metrics collector: observations are buffered exactly (and summarised
  with the same numpy calls as the historical code, bit-identically)
  until ``exact_cap`` is reached, after which the buffer is replayed
  into the streaming estimators, freed, and all further summaries are
  sketched.

The collapse is observable: :attr:`StreamingTally.exact` is ``False``
once sketching starts, and the summary JSON (schema v6) carries the flag
as ``measured.exact``.  Accuracy of the sketched path is characterised in
``docs/SCALING.md`` and pinned by ``tests/test_metrics_streaming.py``.
"""

from __future__ import annotations

import bisect
import math
from array import array
from typing import Dict, List, Tuple

import numpy as np

#: Default number of observations a tally keeps exactly before it
#: collapses into sketches.  At 8 bytes per observation this bounds each
#: series at ~0.8 MB; every run below the cap (all committed goldens,
#: every test workload) stays on the historical bit-exact numpy path.
DEFAULT_EXACT_CAP = 100_000


class StreamingMoments:
    """Welford online mean/variance with exact running min/max."""

    __slots__ = ("n", "mean", "_m2", "min", "max")

    def __init__(self) -> None:
        self.n = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def push(self, value: float) -> None:
        self.n += 1
        delta = value - self.mean
        self.mean += delta / self.n
        self._m2 += delta * (value - self.mean)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def variance(self) -> float:
        """Population variance (ddof=0, matching ``np.var``'s default)."""
        if self.n == 0:
            return math.nan
        return self._m2 / self.n

    @property
    def std(self) -> float:
        variance = self.variance
        return math.sqrt(variance) if variance == variance else math.nan


class P2Quantile:
    """P² streaming quantile estimator (Jain & Chlamtac, CACM 1985).

    Five markers track the running minimum, the p/2, p and (1+p)/2
    quantiles and the maximum; on every observation the three interior
    markers are nudged toward their desired positions with a piecewise-
    parabolic (hence P²) height adjustment.  O(1) memory and time per
    observation; relative error on the heavy-tailed waiting/stretch
    distributions here is a few percent (see ``docs/SCALING.md``).
    """

    __slots__ = ("p", "_heights", "_positions", "_desired", "_rates")

    def __init__(self, p: float) -> None:
        if not 0.0 < p < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {p}")
        self.p = p
        self._heights: List[float] = []
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0]
        self._rates = [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0]

    @property
    def n(self) -> int:
        count = len(self._heights)
        return count if count < 5 else int(self._positions[4])

    def push(self, value: float) -> None:
        heights = self._heights
        if len(heights) < 5:
            bisect.insort(heights, value)
            return
        positions = self._positions
        # Locate the cell, stretching the extreme markers if needed.
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 0
            while cell < 3 and heights[cell + 1] <= value:
                cell += 1
        for index in range(cell + 1, 5):
            positions[index] += 1.0
        desired = self._desired
        for index in range(5):
            desired[index] += self._rates[index]
        # Nudge the interior markers toward their desired positions.
        for index in (1, 2, 3):
            gap = desired[index] - positions[index]
            right = positions[index + 1] - positions[index]
            left = positions[index - 1] - positions[index]
            if (gap >= 1.0 and right > 1.0) or (gap <= -1.0 and left < -1.0):
                step = 1.0 if gap >= 1.0 else -1.0
                candidate = self._parabolic(index, step)
                if heights[index - 1] < candidate < heights[index + 1]:
                    heights[index] = candidate
                else:
                    heights[index] = self._linear(index, step)
                positions[index] += step

    def _parabolic(self, index: int, step: float) -> float:
        heights, positions = self._heights, self._positions
        span = positions[index + 1] - positions[index - 1]
        up = (positions[index] - positions[index - 1] + step) * (
            heights[index + 1] - heights[index]
        ) / (positions[index + 1] - positions[index])
        down = (positions[index + 1] - positions[index] - step) * (
            heights[index] - heights[index - 1]
        ) / (positions[index] - positions[index - 1])
        return heights[index] + (step / span) * (up + down)

    def _linear(self, index: int, step: float) -> float:
        heights, positions = self._heights, self._positions
        neighbour = index + int(step)
        return heights[index] + step * (heights[neighbour] - heights[index]) / (
            positions[neighbour] - positions[index]
        )

    @property
    def value(self) -> float:
        """The current quantile estimate (NaN before any observation)."""
        heights = self._heights
        if not heights:
            return math.nan
        if len(heights) < 5:
            return float(np.percentile(heights, self.p * 100.0))
        return heights[2]


class StreamingTally:
    """One measured series: exact under ``exact_cap``, sketched beyond.

    While the observation count stays at or below the cap the tally is a
    plain append-only buffer and every summary statistic is computed with
    the same numpy calls as the historical record-based code — so small
    runs (every golden, every test) are bit-identical.  The first
    observation past the cap replays the buffer, in arrival order, into
    :class:`StreamingMoments` plus one :class:`P2Quantile` per registered
    percentile, frees the buffer, and flips :attr:`exact`.
    """

    __slots__ = ("exact_cap", "_quantiles", "_buffer", "_moments", "_sketches")

    def __init__(
        self,
        quantiles: Tuple[float, ...] = (),
        exact_cap: int = DEFAULT_EXACT_CAP,
    ) -> None:
        if exact_cap < 0:
            raise ValueError(f"exact_cap must be >= 0, got {exact_cap}")
        self.exact_cap = exact_cap
        self._quantiles = tuple(quantiles)
        self._buffer: array = array("d")
        self._moments: StreamingMoments | None = None
        self._sketches: Dict[float, P2Quantile] = {}

    @property
    def exact(self) -> bool:
        """True while every observation is still retained exactly."""
        return self._moments is None

    @property
    def n(self) -> int:
        moments = self._moments
        return len(self._buffer) if moments is None else moments.n

    def push(self, value: float) -> None:
        moments = self._moments
        if moments is None:
            buffer = self._buffer
            buffer.append(value)
            if len(buffer) > self.exact_cap:
                self._collapse()
            return
        moments.push(value)
        for sketch in self._sketches.values():
            sketch.push(value)

    def _collapse(self) -> None:
        moments = StreamingMoments()
        sketches = {q: P2Quantile(q / 100.0) for q in self._quantiles}
        for value in self._buffer:
            moments.push(value)
            for sketch in sketches.values():
                sketch.push(value)
        self._moments = moments
        self._sketches = sketches
        self._buffer = array("d")  # freed: the tally is now O(1)

    # -- summaries -------------------------------------------------------------

    def values(self) -> np.ndarray:
        """The retained observations (empty once sketching started)."""
        return np.asarray(self._buffer, dtype=float)

    def mean(self) -> float:
        moments = self._moments
        if moments is None:
            buffer = self._buffer
            return float(np.mean(buffer)) if len(buffer) else math.nan
        return moments.mean

    def std(self) -> float:
        moments = self._moments
        if moments is None:
            buffer = self._buffer
            return float(np.std(buffer)) if len(buffer) else math.nan
        return moments.std

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile — exact, or the registered P² sketch."""
        moments = self._moments
        if moments is None:
            buffer = self._buffer
            return float(np.percentile(buffer, q)) if len(buffer) else math.nan
        if q not in self._sketches:
            raise KeyError(
                f"percentile {q} was not registered before the tally "
                f"collapsed to sketches (registered: {self._quantiles})"
            )
        return self._sketches[q].value

    def max(self) -> float:
        moments = self._moments
        if moments is None:
            buffer = self._buffer
            return float(np.max(buffer)) if len(buffer) else math.nan
        return moments.max if moments.n else math.nan

    def min(self) -> float:
        moments = self._moments
        if moments is None:
            buffer = self._buffer
            return float(np.min(buffer)) if len(buffer) else math.nan
        return moments.min if moments.n else math.nan
