"""Runtime sim-sanitizer: invariant checks behind ``--check-invariants``.

The static layer (``repro lint``) proves properties of the *source*; this
module checks properties of a *running* simulation:

* the engine never dispatches events backwards in time and its calendar
  heap stays well-formed (:meth:`repro.core.engine.Engine.validate_heap`);
* per-node caches conserve event accounting and keep a valid LRU
  structure (:meth:`repro.data.cache.LRUSegmentCache.validate`);
* subjobs follow the documented state machine
  (``PENDING → RUNNING ⇄ SUSPENDED → DONE``) and are never assigned to
  two nodes at once — the paper's "single subjob per processor" rule from
  the scheduler's side.

Checks are designed to be *compiled out by default*: with the mode off,
the engine pays one attribute test per dispatch and the nodes pay one
``is None`` test per transition; nothing else changes, so a checked run
must produce **identical metrics** to an unchecked one (asserted by
``tests/test_sanitizer.py``).

Cheap transition checks run inline; the O(state) deep checks piggyback on
the simulator's existing metric probe events so the event calendar — and
therefore the simulated timeline — is byte-identical either way.

Every failure raises :class:`~repro.core.errors.InvariantViolation` with
a message naming the component, the simulated time and the broken law.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, Set

from ..core.errors import InvariantViolation, SchedulingError
from ..workload.jobs import Job, Subjob, SubjobState

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.cluster import Cluster
    from ..cluster.node import Node
    from ..core.engine import Engine


class InvariantChecker:
    """Tracks subjob↔node assignments and runs the deep periodic checks.

    One instance per checked simulation; nodes call the ``on_subjob_*``
    transition hooks (installed by :class:`~repro.sim.simulator.Simulation`
    when ``check_invariants=True``), the simulator calls
    :meth:`deep_check` from its probe callback.
    """

    def __init__(self) -> None:
        #: sid -> node_id for every subjob currently RUNNING somewhere.
        self._running: Dict[str, int] = {}
        #: node_ids currently failed (repro.faults crash injection).
        self._down: Set[int] = set()
        #: Lifetime counter, reported in logs/tests.
        self.checks_run = 0

    # -- node transition hooks (cheap, inline) -------------------------------

    def on_subjob_start(self, node: "Node", subjob: Subjob) -> None:
        """Called by a node just before a subjob enters RUNNING."""
        self.checks_run += 1
        sid = subjob.sid
        holder = self._running.get(sid)
        if holder is not None:
            raise InvariantViolation(
                f"subjob {sid} double-assigned: starting on node "
                f"{node.node_id} while already running on node {holder}"
            )
        if subjob.state not in (SubjobState.PENDING, SubjobState.SUSPENDED):
            raise InvariantViolation(
                f"illegal transition {subjob.state.value} → running for "
                f"subjob {sid} on node {node.node_id}"
            )
        if subjob.node is not None:
            raise InvariantViolation(
                f"subjob {sid} starting on node {node.node_id} but still "
                f"bound to node {subjob.node.node_id}"
            )
        if node.current is not None:
            raise InvariantViolation(
                f"node {node.node_id} starting subjob {sid} while busy "
                f"with {node.current.sid}"
            )
        if node.node_id in self._down:
            raise InvariantViolation(
                f"node {node.node_id} starting subjob {sid} while failed"
            )
        self._running[sid] = node.node_id

    def on_subjob_suspend(self, node: "Node", subjob: Subjob) -> None:
        """Called by a node when a preemption suspends its subjob."""
        self.checks_run += 1
        self._expect_running_here(node, subjob, "suspend")
        del self._running[subjob.sid]

    def on_subjob_finish(self, node: "Node", subjob: Subjob) -> None:
        """Called by a node when a subjob's last event completes."""
        self.checks_run += 1
        self._expect_running_here(node, subjob, "finish")
        del self._running[subjob.sid]
        if subjob.processed != subjob.segment.length:
            raise InvariantViolation(
                f"subjob {subjob.sid} finished with {subjob.processed}/"
                f"{subjob.segment.length} events processed"
            )

    def on_subjob_abort(self, node: "Node", subjob: Subjob) -> None:
        """Called by a node when a crash aborts its running subjob."""
        self.checks_run += 1
        self._expect_running_here(node, subjob, "abort")
        del self._running[subjob.sid]

    def on_node_failed(self, node: "Node") -> None:
        """Called by a node entering the failed state."""
        self.checks_run += 1
        node_id = node.node_id
        if node_id in self._down:
            raise InvariantViolation(f"node {node_id} failed twice")
        if node.current is not None:
            raise InvariantViolation(
                f"node {node_id} declared failed while still running "
                f"{node.current.sid}"
            )
        for sid, holder in self._running.items():
            if holder == node_id:
                raise InvariantViolation(
                    f"node {node_id} declared failed but subjob {sid} is "
                    "still registered as running there"
                )
        self._down.add(node_id)

    def on_node_recovered(self, node: "Node") -> None:
        """Called by a node leaving the failed state."""
        self.checks_run += 1
        if node.node_id not in self._down:
            raise InvariantViolation(
                f"node {node.node_id} recovered without being failed"
            )
        self._down.discard(node.node_id)

    def _expect_running_here(
        self, node: "Node", subjob: Subjob, action: str
    ) -> None:
        holder = self._running.get(subjob.sid)
        if holder is None:
            raise InvariantViolation(
                f"{action} of subjob {subjob.sid} on node {node.node_id} "
                "but it was never registered as running"
            )
        if holder != node.node_id:
            raise InvariantViolation(
                f"{action} of subjob {subjob.sid} on node {node.node_id} "
                f"but it is registered as running on node {holder}"
            )

    # -- deep periodic checks (O(state), off the hot path) --------------------

    def deep_check(
        self,
        engine: "Engine",
        cluster: "Cluster",
        jobs: Iterable[Job],
    ) -> None:
        """Validate the calendar heap, every node cache and job/subjob
        bookkeeping; piggybacked on the simulator's metric probe."""
        self.checks_run += 1
        engine.validate_heap()
        for node in cluster:
            node.cache.validate()
            current = node.current
            if current is not None and self._running.get(current.sid) != node.node_id:
                raise InvariantViolation(
                    f"node {node.node_id} runs {current.sid} but the "
                    "assignment registry disagrees"
                )
            if node.failed != (node.node_id in self._down):
                raise InvariantViolation(
                    f"node {node.node_id} failed flag ({node.failed}) "
                    "disagrees with the fault registry"
                )
            if node.failed and current is not None:
                raise InvariantViolation(
                    f"failed node {node.node_id} is executing {current.sid}"
                )
        running_sids = {
            node.current.sid for node in cluster if node.current is not None
        }
        for sid, node_id in self._running.items():
            if sid not in running_sids:
                raise InvariantViolation(
                    f"registry thinks subjob {sid} runs on node {node_id} "
                    "but no node is executing it"
                )
        for job in jobs:
            if job.done:
                continue
            try:
                job.check_invariants()
            except SchedulingError as error:
                raise InvariantViolation(
                    f"job bookkeeping broken at t={engine.now:.6f}: {error}"
                ) from error
