"""Steady-state vs overload classification.

The paper cuts every curve "at high loads when the system leaves the
steady state and becomes overloaded.  When overloaded, the notion of
average waiting time does not make sense anymore since jobs are
accumulating and the waiting time grows to infinity."

We detect that regime from the backlog probes (jobs in system over time):
after warmup, an overloaded system shows a persistent positive backlog
trend whose slope is a non-trivial fraction of the arrival rate, and its
completion rate stays below the arrival rate.  Both signals must agree,
which keeps the classifier robust to the bursty-but-stable behaviour of
the delayed scheduler (whose backlog saws up and down with each period).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core import units
from .metrics import BacklogSample


@dataclass(frozen=True)
class OverloadVerdict:
    """Outcome of the steady-state analysis of one run."""

    overloaded: bool
    backlog_slope_per_hour: float
    mean_backlog: float
    final_backlog: int
    arrival_rate_per_hour: float
    completion_rate_per_hour: float

    @property
    def utilization_of_arrivals(self) -> float:
        """Completions / arrivals over the analysis window."""
        if self.arrival_rate_per_hour <= 0:
            return math.nan
        return self.completion_rate_per_hour / self.arrival_rate_per_hour


def analyse_backlog(
    samples: Sequence[BacklogSample],
    warmup_time: float,
    jobs_arrived: int,
    jobs_completed: int,
    duration: float,
    slope_tolerance: float = 0.05,
    completion_tolerance: float = 0.97,
) -> OverloadVerdict:
    """Classify a run as steady-state or overloaded.

    ``slope_tolerance`` is the fraction of the arrival rate the backlog
    may grow at before the run counts as overloaded (default 5 %);
    ``completion_tolerance`` is the minimum completion/arrival ratio of a
    steady-state run.
    """
    measured = [s for s in samples if s.time >= warmup_time]
    measure_span = max(duration - warmup_time, 1e-9)
    arrival_rate = jobs_arrived * units.HOUR / max(duration, 1e-9)
    completion_rate = jobs_completed * units.HOUR / max(duration, 1e-9)

    if len(measured) < 4:
        # Not enough probes to fit a trend; fall back to rate comparison.
        overloaded = (
            jobs_arrived > 10
            and jobs_completed < completion_tolerance * jobs_arrived
        )
        return OverloadVerdict(
            overloaded=overloaded,
            backlog_slope_per_hour=math.nan,
            mean_backlog=math.nan,
            final_backlog=jobs_arrived - jobs_completed,
            arrival_rate_per_hour=arrival_rate,
            completion_rate_per_hour=completion_rate,
        )

    times = np.array([s.time for s in measured], dtype=float)
    backlog = np.array([s.jobs_in_system for s in measured], dtype=float)
    # Least-squares slope in jobs/hour.
    hours = (times - times[0]) / units.HOUR
    slope = float(np.polyfit(hours, backlog, deg=1)[0])
    mean_backlog = float(np.mean(backlog))

    growing = slope > slope_tolerance * max(arrival_rate, 1e-9)
    # Require material absolute growth too, so tiny-but-noisy backlogs at
    # low load never trip the detector.
    span_hours = hours[-1] if hours[-1] > 0 else 1.0
    grew_by = slope * span_hours
    materially_growing = growing and grew_by > max(3.0, 0.25 * mean_backlog)

    starving = completion_rate < completion_tolerance * arrival_rate

    overloaded = bool(materially_growing and starving)
    return OverloadVerdict(
        overloaded=overloaded,
        backlog_slope_per_hour=slope,
        mean_backlog=mean_backlog,
        final_backlog=jobs_arrived - jobs_completed,
        arrival_rate_per_hour=arrival_rate,
        completion_rate_per_hour=completion_rate,
    )
