"""Per-job records and steady-state performance aggregation.

The paper characterises each policy by two curves (average speedup and
average waiting time vs offered load), a waiting-time distribution near
saturation (Fig 4), and sustainability (whether the run stayed in steady
state).  This module computes all of these from completed-job records,
applying the paper's measurement conventions:

* the startup period (caches filling) is discarded — jobs arriving before
  the warmup time are not measured;
* speedup of a job = its single-node no-cache time (``n_events × uncached
  per-event time``) divided by its processing time;
* processing time runs from the first processed event to the last one,
  suspended stretches included;
* waiting time runs from submission to the first processed event;
  ``waiting_excl_delay`` additionally subtracts the delayed scheduler's
  period delay (the convention of Figs 5 and 6).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..sched.stats import SchedulerStats  # noqa: F401  (sim-layer re-export)
from ..workload.jobs import Job


@dataclass(frozen=True)
class JobRecord:
    """Immutable summary of one completed job."""

    job_id: int
    arrival_time: float
    schedule_time: float
    first_start: float
    completion: float
    n_events: int
    reference_time: float  # single-node, no-cache processing time

    @property
    def waiting_time(self) -> float:
        return self.first_start - self.arrival_time

    @property
    def waiting_time_excl_delay(self) -> float:
        return self.first_start - self.schedule_time

    @property
    def processing_time(self) -> float:
        return self.completion - self.first_start

    @property
    def sojourn_time(self) -> float:
        """Total time in the system (submission → completion)."""
        return self.completion - self.arrival_time

    @property
    def speedup(self) -> float:
        if self.processing_time <= 0:
            return math.inf
        return self.reference_time / self.processing_time


@dataclass(frozen=True)
class FaultSummary:
    """Aggregate fault/recovery accounting of one run (repro.faults).

    ``goodput`` is the fraction of compute time that produced credited
    events: ``busy / (busy + lost)`` (1.0 on a fault-free run).
    ``degraded_makespan`` is the completion time of the last job that
    finished — under faults, the tail directly shows recovery cost.
    """

    failures: int = 0
    stalls: int = 0
    subjobs_aborted: int = 0
    retries: int = 0
    giveups: int = 0
    lost_events: int = 0
    lost_seconds: float = 0.0
    downtime_seconds: float = 0.0
    stall_seconds: float = 0.0
    goodput: float = 1.0
    degraded_makespan: float = 0.0

    def as_dict(self) -> dict:
        return {
            "failures": self.failures,
            "stalls": self.stalls,
            "subjobs_aborted": self.subjobs_aborted,
            "retries": self.retries,
            "giveups": self.giveups,
            "lost_events": self.lost_events,
            "lost_seconds": self.lost_seconds,
            "downtime_seconds": self.downtime_seconds,
            "stall_seconds": self.stall_seconds,
            "goodput": self.goodput,
            "degraded_makespan": self.degraded_makespan,
        }


@dataclass
class BacklogSample:
    """One probe of the system backlog."""

    time: float
    jobs_in_system: int  # arrived but not completed
    busy_nodes: int


class MetricsCollector:
    """Accumulates job records and backlog probes during a run."""

    def __init__(self, uncached_event_time: float) -> None:
        self.uncached_event_time = uncached_event_time
        self.records: List[JobRecord] = []
        self.backlog: List[BacklogSample] = []
        self.jobs_arrived = 0
        self.jobs_completed = 0

    def on_arrival(self, job: Job) -> None:
        self.jobs_arrived += 1

    def on_completion(self, job: Job) -> None:
        assert job.first_start is not None and job.completion is not None
        self.jobs_completed += 1
        self.records.append(
            JobRecord(
                job_id=job.job_id,
                arrival_time=job.arrival_time,
                schedule_time=job.schedule_time,
                first_start=job.first_start,
                completion=job.completion,
                n_events=job.n_events,
                reference_time=job.n_events * self.uncached_event_time,
            )
        )

    def probe(self, time: float, busy_nodes: int) -> None:
        self.backlog.append(
            BacklogSample(
                time=time,
                jobs_in_system=self.jobs_arrived - self.jobs_completed,
                busy_nodes=busy_nodes,
            )
        )

    def measured_records(self, warmup_time: float) -> List[JobRecord]:
        """Records of jobs that arrived after warmup."""
        return [r for r in self.records if r.arrival_time >= warmup_time]


def _mean(values: Sequence[float]) -> float:
    return float(np.mean(values)) if len(values) else math.nan


def _percentile(values: Sequence[float], q: float) -> float:
    return float(np.percentile(values, q)) if len(values) else math.nan


@dataclass
class PerformanceSummary:
    """Aggregate statistics over the measured (post-warmup) jobs."""

    n_jobs: int
    mean_waiting: float
    median_waiting: float
    p95_waiting: float
    max_waiting: float
    mean_waiting_excl_delay: float
    mean_processing: float
    mean_sojourn: float
    mean_speedup: float
    median_speedup: float
    mean_job_events: float
    throughput_per_hour: float
    waiting_times: np.ndarray = field(repr=False)
    waiting_times_excl_delay: np.ndarray = field(repr=False)
    speedups: np.ndarray = field(repr=False)

    @classmethod
    def from_records(
        cls,
        records: Sequence[JobRecord],
        measure_interval: Optional[float] = None,
    ) -> "PerformanceSummary":
        waits = np.array([r.waiting_time for r in records], dtype=float)
        waits_excl = np.array(
            [r.waiting_time_excl_delay for r in records], dtype=float
        )
        speedups = np.array([r.speedup for r in records], dtype=float)
        processing = [r.processing_time for r in records]
        sojourn = [r.sojourn_time for r in records]
        events = [float(r.n_events) for r in records]
        if measure_interval and measure_interval > 0:
            throughput = len(records) * 3600.0 / measure_interval
        else:
            throughput = math.nan
        return cls(
            n_jobs=len(records),
            mean_waiting=_mean(waits),
            median_waiting=_percentile(waits, 50),
            p95_waiting=_percentile(waits, 95),
            max_waiting=float(np.max(waits)) if len(waits) else math.nan,
            mean_waiting_excl_delay=_mean(waits_excl),
            mean_processing=_mean(processing),
            mean_sojourn=_mean(sojourn),
            mean_speedup=_mean(speedups),
            median_speedup=_percentile(speedups, 50),
            mean_job_events=_mean(events),
            throughput_per_hour=throughput,
            waiting_times=waits,
            waiting_times_excl_delay=waits_excl,
            speedups=speedups,
        )
