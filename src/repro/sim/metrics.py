"""Per-job records and steady-state performance aggregation.

The paper characterises each policy by two curves (average speedup and
average waiting time vs offered load), a waiting-time distribution near
saturation (Fig 4), and sustainability (whether the run stayed in steady
state).  This module computes all of these from completed-job records,
applying the paper's measurement conventions:

* the startup period (caches filling) is discarded — jobs arriving before
  the warmup time are not measured;
* speedup of a job = its single-node no-cache time (``n_events × uncached
  per-event time``) divided by its processing time;
* processing time runs from the first processed event to the last one,
  suspended stretches included;
* waiting time runs from submission to the first processed event;
  ``waiting_excl_delay`` additionally subtracts the delayed scheduler's
  period delay (the convention of Figs 5 and 6).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..sched.stats import SchedulerStats  # noqa: F401  (sim-layer re-export)
from ..workload.jobs import Job
from .streaming import DEFAULT_EXACT_CAP, StreamingTally

#: Per-job records retained by default before the collector stops
#: appending (aggregates keep streaming).  Pass ``retain_records=True``
#: to :func:`repro.sim.simulator.run_simulation` (CLI: ``--retain-records``)
#: for unbounded retention.
DEFAULT_RECORD_CAP = 100_000


@dataclass(frozen=True)
class JobRecord:
    """Immutable summary of one completed job."""

    job_id: int
    arrival_time: float
    schedule_time: float
    first_start: float
    completion: float
    n_events: int
    reference_time: float  # single-node, no-cache processing time

    @property
    def waiting_time(self) -> float:
        return self.first_start - self.arrival_time

    @property
    def waiting_time_excl_delay(self) -> float:
        return self.first_start - self.schedule_time

    @property
    def processing_time(self) -> float:
        return self.completion - self.first_start

    @property
    def sojourn_time(self) -> float:
        """Total time in the system (submission → completion)."""
        return self.completion - self.arrival_time

    @property
    def speedup(self) -> float:
        if self.processing_time <= 0:
            return math.inf
        return self.reference_time / self.processing_time


@dataclass(frozen=True)
class FaultSummary:
    """Aggregate fault/recovery accounting of one run (repro.faults).

    ``goodput`` is the fraction of compute time that produced credited
    events: ``busy / (busy + lost)`` (1.0 on a fault-free run).
    ``degraded_makespan`` is the completion time of the last job that
    finished — under faults, the tail directly shows recovery cost.
    """

    failures: int = 0
    stalls: int = 0
    subjobs_aborted: int = 0
    retries: int = 0
    giveups: int = 0
    lost_events: int = 0
    lost_seconds: float = 0.0
    downtime_seconds: float = 0.0
    stall_seconds: float = 0.0
    goodput: float = 1.0
    degraded_makespan: float = 0.0

    def as_dict(self) -> dict:
        return {
            "failures": self.failures,
            "stalls": self.stalls,
            "subjobs_aborted": self.subjobs_aborted,
            "retries": self.retries,
            "giveups": self.giveups,
            "lost_events": self.lost_events,
            "lost_seconds": self.lost_seconds,
            "downtime_seconds": self.downtime_seconds,
            "stall_seconds": self.stall_seconds,
            "goodput": self.goodput,
            "degraded_makespan": self.degraded_makespan,
        }


@dataclass
class BacklogSample:
    """One probe of the system backlog."""

    time: float
    jobs_in_system: int  # arrived but not completed
    busy_nodes: int


class MetricsCollector:
    """Accumulates job statistics and backlog probes during a run.

    Memory model (see ``docs/SCALING.md``): the measured aggregates are
    :class:`~repro.sim.streaming.StreamingTally` s — exact (and summarised
    bit-identically to the historical record-based code) up to
    ``exact_cap`` measured jobs, O(1) sketches beyond.  Per-job
    :class:`JobRecord` retention is bounded by ``record_cap`` (``None``
    = unbounded); past the cap records are dropped and counted in
    :attr:`records_dropped` while every aggregate keeps streaming.

    ``warmup_time`` fixes the measurement window up front: only jobs
    arriving at or after it feed the tallies, mirroring the paper's
    convention of discarding the cache-filling startup period.
    """

    def __init__(
        self,
        uncached_event_time: float,
        warmup_time: float = 0.0,
        record_cap: Optional[int] = None,
        exact_cap: int = DEFAULT_EXACT_CAP,
    ) -> None:
        self.uncached_event_time = uncached_event_time
        self.warmup_time = warmup_time
        self.record_cap = record_cap
        self.records: List[JobRecord] = []
        self.records_dropped = 0
        self.backlog: List[BacklogSample] = []
        self.jobs_arrived = 0
        self.jobs_completed = 0
        #: Completion time of the last job that finished (any arrival
        #: time) — the degraded-makespan input, streamed so it survives
        #: record truncation.
        self.max_completion = 0.0
        self.tallies: Dict[str, StreamingTally] = {
            "waiting": StreamingTally(quantiles=(50.0, 95.0), exact_cap=exact_cap),
            "waiting_excl": StreamingTally(exact_cap=exact_cap),
            "processing": StreamingTally(exact_cap=exact_cap),
            "sojourn": StreamingTally(exact_cap=exact_cap),
            "speedup": StreamingTally(quantiles=(50.0,), exact_cap=exact_cap),
            "events": StreamingTally(exact_cap=exact_cap),
            "stretch": StreamingTally(quantiles=(95.0,), exact_cap=exact_cap),
        }

    def on_arrival(self, job: Job) -> None:
        self.jobs_arrived += 1

    def on_completion(self, job: Job) -> None:
        assert job.first_start is not None and job.completion is not None
        self.jobs_completed += 1
        record = JobRecord(
            job_id=job.job_id,
            arrival_time=job.arrival_time,
            schedule_time=job.schedule_time,
            first_start=job.first_start,
            completion=job.completion,
            n_events=job.n_events,
            reference_time=job.n_events * self.uncached_event_time,
        )
        if record.completion > self.max_completion:
            self.max_completion = record.completion
        if self.record_cap is None or len(self.records) < self.record_cap:
            self.records.append(record)
        else:
            self.records_dropped += 1
        if record.arrival_time >= self.warmup_time:
            tallies = self.tallies
            tallies["waiting"].push(record.waiting_time)
            tallies["waiting_excl"].push(record.waiting_time_excl_delay)
            tallies["processing"].push(record.processing_time)
            tallies["sojourn"].push(record.sojourn_time)
            tallies["speedup"].push(record.speedup)
            tallies["events"].push(float(record.n_events))
            tallies["stretch"].push(record.sojourn_time / record.reference_time)

    def probe(self, time: float, busy_nodes: int) -> None:
        self.backlog.append(
            BacklogSample(
                time=time,
                jobs_in_system=self.jobs_arrived - self.jobs_completed,
                busy_nodes=busy_nodes,
            )
        )

    @property
    def exact(self) -> bool:
        """True while the measured aggregates are still exact."""
        return self.tallies["waiting"].exact

    def measured_records(self, warmup_time: float) -> List[JobRecord]:
        """*Retained* records of jobs that arrived after warmup.

        Truncated once ``record_cap`` is exceeded — use :meth:`summary`
        for aggregates that survive truncation.
        """
        return [r for r in self.records if r.arrival_time >= warmup_time]

    def summary(
        self, measure_interval: Optional[float] = None
    ) -> "PerformanceSummary":
        """Aggregate the measured (post-warmup) jobs.

        Bit-identical to ``PerformanceSummary.from_records`` over the
        measured records while :attr:`exact` holds; streamed (Welford
        means, P² percentiles, empty sample arrays) beyond the cap.
        """
        tallies = self.tallies
        waiting = tallies["waiting"]
        if waiting.exact:
            return PerformanceSummary._from_series(
                waits=waiting.values(),
                waits_excl=tallies["waiting_excl"].values(),
                speedups=tallies["speedup"].values(),
                processing=tallies["processing"].values(),
                sojourn=tallies["sojourn"].values(),
                events=tallies["events"].values(),
                stretch=tallies["stretch"].values(),
                measure_interval=measure_interval,
            )
        speedup = tallies["speedup"]
        stretch = tallies["stretch"]
        n_jobs = waiting.n
        if measure_interval and measure_interval > 0:
            throughput = n_jobs * 3600.0 / measure_interval
        else:
            throughput = math.nan
        empty = np.empty(0, dtype=float)
        return PerformanceSummary(
            n_jobs=n_jobs,
            mean_waiting=waiting.mean(),
            median_waiting=waiting.percentile(50.0),
            p95_waiting=waiting.percentile(95.0),
            max_waiting=waiting.max(),
            mean_waiting_excl_delay=tallies["waiting_excl"].mean(),
            mean_processing=tallies["processing"].mean(),
            mean_sojourn=tallies["sojourn"].mean(),
            mean_speedup=speedup.mean(),
            median_speedup=speedup.percentile(50.0),
            mean_job_events=tallies["events"].mean(),
            throughput_per_hour=throughput,
            waiting_times=empty,
            waiting_times_excl_delay=empty,
            speedups=empty,
            std_waiting=waiting.std(),
            mean_stretch=stretch.mean(),
            p95_stretch=stretch.percentile(95.0),
            max_stretch=stretch.max(),
            exact=False,
        )


def _mean(values: Sequence[float]) -> float:
    return float(np.mean(values)) if len(values) else math.nan


def _percentile(values: Sequence[float], q: float) -> float:
    return float(np.percentile(values, q)) if len(values) else math.nan


@dataclass
class PerformanceSummary:
    """Aggregate statistics over the measured (post-warmup) jobs.

    ``exact`` is ``True`` when every statistic was computed over the full
    set of measured jobs; on runs past the streaming cap the means come
    from Welford accumulators, the percentiles from P² sketches, and the
    sample arrays are empty (see ``docs/SCALING.md``).  ``stretch`` is a
    job's sojourn time over its single-node no-cache reference time — the
    slowdown metric of the fractional/batch scheduling literature.
    """

    n_jobs: int
    mean_waiting: float
    median_waiting: float
    p95_waiting: float
    max_waiting: float
    mean_waiting_excl_delay: float
    mean_processing: float
    mean_sojourn: float
    mean_speedup: float
    median_speedup: float
    mean_job_events: float
    throughput_per_hour: float
    waiting_times: np.ndarray = field(repr=False)
    waiting_times_excl_delay: np.ndarray = field(repr=False)
    speedups: np.ndarray = field(repr=False)
    std_waiting: float = math.nan
    mean_stretch: float = math.nan
    p95_stretch: float = math.nan
    max_stretch: float = math.nan
    exact: bool = True

    @classmethod
    def from_records(
        cls,
        records: Sequence[JobRecord],
        measure_interval: Optional[float] = None,
    ) -> "PerformanceSummary":
        return cls._from_series(
            waits=np.array([r.waiting_time for r in records], dtype=float),
            waits_excl=np.array(
                [r.waiting_time_excl_delay for r in records], dtype=float
            ),
            speedups=np.array([r.speedup for r in records], dtype=float),
            processing=[r.processing_time for r in records],
            sojourn=[r.sojourn_time for r in records],
            events=[float(r.n_events) for r in records],
            stretch=[
                r.sojourn_time / r.reference_time if r.reference_time else math.inf
                for r in records
            ],
            measure_interval=measure_interval,
        )

    @classmethod
    def _from_series(
        cls,
        waits: np.ndarray,
        waits_excl: np.ndarray,
        speedups: np.ndarray,
        processing: Sequence[float],
        sojourn: Sequence[float],
        events: Sequence[float],
        stretch: Sequence[float],
        measure_interval: Optional[float] = None,
    ) -> "PerformanceSummary":
        """Exact aggregation of raw series (the historical numpy path)."""
        if measure_interval and measure_interval > 0:
            throughput = len(waits) * 3600.0 / measure_interval
        else:
            throughput = math.nan
        return cls(
            n_jobs=len(waits),
            mean_waiting=_mean(waits),
            median_waiting=_percentile(waits, 50),
            p95_waiting=_percentile(waits, 95),
            max_waiting=float(np.max(waits)) if len(waits) else math.nan,
            mean_waiting_excl_delay=_mean(waits_excl),
            mean_processing=_mean(processing),
            mean_sojourn=_mean(sojourn),
            mean_speedup=_mean(speedups),
            median_speedup=_percentile(speedups, 50),
            mean_job_events=_mean(events),
            throughput_per_hour=throughput,
            waiting_times=np.asarray(waits, dtype=float),
            waiting_times_excl_delay=np.asarray(waits_excl, dtype=float),
            speedups=np.asarray(speedups, dtype=float),
            std_waiting=float(np.std(waits)) if len(waits) else math.nan,
            mean_stretch=_mean(stretch),
            p95_stretch=_percentile(stretch, 95),
            max_stretch=float(np.max(stretch)) if len(stretch) else math.nan,
            exact=True,
        )
