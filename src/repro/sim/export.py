"""Export simulation results for external analysis.

Writes per-job records and backlog probes to CSV (spreadsheets, pandas,
gnuplot — the paper's plots were gnuplot) and full result summaries to
JSON.  Everything round-trips: ``load_records_csv`` reads back what
``write_records_csv`` wrote and ``load_result_json`` reads back what
``write_result_json`` wrote.  Summary JSON is stamped with
``schema_version`` so downstream tooling can detect incompatible files.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import List, Sequence, Union

from .metrics import BacklogSample, JobRecord
from .simulator import SimulationResult

PathLike = Union[str, Path]

#: Summary-JSON schema version.  Bump when keys are added, removed or
#: change meaning.  Version 2 added ``schema_version`` itself plus the
#: guarantee that ``policy_stats`` and ``events_by_source`` are present.
#: Version 3 added the ``faults`` object (``None`` on fault-free runs).
#: Version 4 added the ``sched`` control-plane accounting object.
#: Version 5 added the control-plane reliability counters (retransmits,
#: duplicates_dropped, timeouts, dead_letters, failovers) inside
#: ``sched``, all 0 on a perfect network.
#: Version 6 added the streaming-metrics fields: ``measured.exact``
#: (False once the run crossed the exact cap and percentiles come from
#: P² sketches), ``measured.std_waiting`` and the stretch statistics
#: (``mean_stretch``/``p95_stretch``/``max_stretch``), plus the
#: top-level ``records_dropped`` retention counter.
#: Version 7 added the ``topo`` object (``None`` on flat runs): per-tier
#: cache hit/miss/eviction counts, storage-cost integrals and
#: link-saturation counters of a hierarchical (repro.topo) run, and
#: allowed a ``tier`` key inside ``events_by_source``.
SCHEMA_VERSION = 7

#: Keys every version-2 summary must carry.
_REQUIRED_SUMMARY_KEYS = (
    "schema_version",
    "policy",
    "policy_stats",
    "events_by_source",
    "measured",
    "config",
)

_RECORD_FIELDS = (
    "job_id",
    "arrival_time",
    "schedule_time",
    "first_start",
    "completion",
    "n_events",
    "reference_time",
)

_DERIVED_FIELDS = ("waiting_time", "processing_time", "sojourn_time", "speedup")


def write_records_csv(path: PathLike, records: Sequence[JobRecord]) -> int:
    """Write job records (raw + derived columns); returns the row count."""
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(_RECORD_FIELDS + _DERIVED_FIELDS)
        for record in records:
            writer.writerow(
                [getattr(record, field) for field in _RECORD_FIELDS]
                + [getattr(record, field) for field in _DERIVED_FIELDS]
            )
    return len(records)


def load_records_csv(path: PathLike) -> List[JobRecord]:
    """Read job records back (derived columns are recomputed, not read)."""
    records: List[JobRecord] = []
    with open(path, newline="", encoding="utf-8") as handle:
        for row in csv.DictReader(handle):
            records.append(
                JobRecord(
                    job_id=int(row["job_id"]),
                    arrival_time=float(row["arrival_time"]),
                    schedule_time=float(row["schedule_time"]),
                    first_start=float(row["first_start"]),
                    completion=float(row["completion"]),
                    n_events=int(row["n_events"]),
                    reference_time=float(row["reference_time"]),
                )
            )
    return records


def write_backlog_csv(path: PathLike, samples: Sequence[BacklogSample]) -> int:
    """Write the backlog probe series (time, jobs in system, busy nodes)."""
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["time", "jobs_in_system", "busy_nodes"])
        for sample in samples:
            writer.writerow([sample.time, sample.jobs_in_system, sample.busy_nodes])
    return len(samples)


def result_summary_dict(result: SimulationResult) -> dict:
    """A JSON-serialisable summary of one simulation result."""
    return {
        "schema_version": SCHEMA_VERSION,
        "policy": result.policy_name,
        "policy_params": {
            key: value for key, value in result.policy_params.items()
        },
        "policy_stats": dict(result.policy_stats),
        "config": result.config.to_dict(),
        "load_per_hour": result.load_per_hour,
        "jobs_arrived": result.jobs_arrived,
        "jobs_completed": result.jobs_completed,
        "measured": {
            "n_jobs": result.measured.n_jobs,
            "mean_speedup": result.measured.mean_speedup,
            "median_speedup": result.measured.median_speedup,
            "mean_waiting": result.measured.mean_waiting,
            "median_waiting": result.measured.median_waiting,
            "p95_waiting": result.measured.p95_waiting,
            "max_waiting": result.measured.max_waiting,
            "std_waiting": result.measured.std_waiting,
            "mean_waiting_excl_delay": result.measured.mean_waiting_excl_delay,
            "mean_processing": result.measured.mean_processing,
            "mean_sojourn": result.measured.mean_sojourn,
            "mean_stretch": result.measured.mean_stretch,
            "p95_stretch": result.measured.p95_stretch,
            "max_stretch": result.measured.max_stretch,
            "throughput_per_hour": result.measured.throughput_per_hour,
            "exact": result.measured.exact,
        },
        "overloaded": result.overload.overloaded,
        "backlog_slope_per_hour": result.overload.backlog_slope_per_hour,
        "node_utilization": result.node_utilization,
        "cache_hit_fraction": result.cache_hit_fraction(),
        "tertiary_events_read": result.tertiary_events_read,
        "tertiary_redundancy": result.tertiary_redundancy,
        "events_by_source": dict(result.events_by_source),
        "engine_events": result.engine_events,
        "records_dropped": result.records_dropped,
        "wall_seconds": result.wall_seconds,
        "faults": result.faults.as_dict() if result.faults is not None else None,
        "sched": result.sched.as_dict() if result.sched is not None else None,
        "topo": result.topo.as_dict() if result.topo is not None else None,
    }


def write_result_json(path: PathLike, result: SimulationResult) -> None:
    """Write the summary JSON (records go to CSV, not here)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(result_summary_dict(result), handle, indent=2, default=float)


def load_result_json(path: PathLike) -> dict:
    """Read a summary JSON back, validating the schema.

    Raises :class:`ValueError` on files from a newer schema or with
    required keys missing; files written before versioning (no
    ``schema_version`` key) are upgraded in place with empty
    ``policy_stats``/``events_by_source`` defaults so old sweeps stay
    readable.
    """
    with open(path, encoding="utf-8") as handle:
        summary = json.load(handle)
    if not isinstance(summary, dict):
        raise ValueError(f"{path}: expected a JSON object")
    version = summary.setdefault("schema_version", 1)
    if not isinstance(version, int) or isinstance(version, bool):
        raise ValueError(
            f"{path}: schema_version must be an integer, got {version!r}"
        )
    if version > SCHEMA_VERSION:
        raise ValueError(
            f"{path}: schema_version {version} is newer than the supported "
            f"{SCHEMA_VERSION}"
        )
    summary.setdefault("policy_stats", {})
    summary.setdefault("events_by_source", {})
    summary.setdefault("faults", None)  # pre-v3 files: no fault injection
    summary.setdefault("sched", None)  # pre-v4 files: no control accounting
    # Pre-v5 files: the ``sched`` object lacks the reliability counters;
    # SchedulerStats.from_dict defaults them to 0 (perfect network).
    # Pre-v6 files: no streaming-metrics keys — every retained statistic
    # in those files was exact, so readers may treat ``measured.exact``
    # as True and ``records_dropped`` as 0 when absent.
    summary.setdefault("records_dropped", 0)
    # Pre-v7 files predate hierarchical topologies: every run was flat.
    summary.setdefault("topo", None)
    missing = [key for key in _REQUIRED_SUMMARY_KEYS if key not in summary]
    if missing:
        raise ValueError(f"{path}: summary is missing keys {missing}")
    return summary
