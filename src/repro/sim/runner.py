"""Experiment runner: parameter sweeps through the execution layer.

A sweep is a list of :class:`RunSpec` (config + policy + policy
parameters, built with :meth:`RunSpec.make` or the :func:`load_sweep`
helper).  :func:`run_sweep` hands the specs to a
:class:`repro.exec.Executor` — serial for small sweeps, a process pool
otherwise, with streamed per-completion progress, crash isolation and
optional content-addressed caching — and returns a :class:`SweepResult`
pairing each spec with its
:class:`~repro.sim.simulator.SimulationResult` (or, in ``capture`` mode,
the :class:`~repro.exec.SpecError` that felled it).

``SweepResult`` then post-processes the pairs:

* :meth:`SweepResult.series` — (load, metric) points per label, the
  paper's figure format, with overloaded points cut off by default;
* :meth:`SweepResult.max_sustained_load` — highest steady load per label;
* :meth:`SweepResult.by_label` / :meth:`SweepResult.to_json` — grouping
  and machine-readable export (summary-JSON v7 conventions:
  ``schema_version``, per-point ``seed``, fault summary, control-plane
  ``sched`` accounting including the reliability counters, the
  streaming-metrics fields — ``measured.exact``, stretch statistics,
  ``records_dropped`` — and the per-point ``topo`` tier accounting).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..core.errors import ExecError
from ..exec.outcomes import ExecStats, Progress, SpecError
from .config import SimulationConfig
from .simulator import SimulationResult, run_simulation

if TYPE_CHECKING:  # pragma: no cover - the executor imports us back lazily
    from ..exec.executor import Executor

#: Sweep-export schema version; tracks the summary-JSON conventions
#: (v3 added ``schema_version``, ``seed`` and the ``faults`` object;
#: v4 added the ``sched`` control-plane accounting object; v5 added the
#: reliability counters inside ``sched``; v6 added the streaming-metrics
#: fields — ``measured.exact``, stretch statistics, ``records_dropped``;
#: v7 added the per-point ``topo`` object — per-tier cache and
#: link-saturation accounting, ``None`` on flat runs).
SWEEP_SCHEMA_VERSION = 7

#: One slot of a sweep: the result, or the structured failure.
SpecOutcome = Union[SimulationResult, SpecError]


@dataclass(frozen=True)
class RunSpec:
    """One point of a sweep."""

    config: SimulationConfig
    policy: str
    policy_params: Tuple[Tuple[str, object], ...] = ()
    label: str = ""

    @classmethod
    def make(
        cls,
        config: SimulationConfig,
        policy: str,
        label: str = "",
        **policy_params,
    ) -> "RunSpec":
        return cls(
            config=config,
            policy=policy,
            policy_params=tuple(sorted(policy_params.items())),
            label=label or policy,
        )


def _execute(spec: RunSpec) -> SimulationResult:
    return run_simulation(spec.config, spec.policy, **dict(spec.policy_params))


@dataclass
class SweepResult:
    """Results of a sweep, keyed by spec order.

    ``results`` holds one entry per spec: a ``SimulationResult``, or a
    :class:`~repro.exec.SpecError` when the sweep ran in ``capture`` mode
    and that point crashed.  The analysis accessors silently skip failed
    slots; :meth:`errors` lists them.
    """

    specs: List[RunSpec]
    results: List[SpecOutcome]
    #: Execution accounting (cache hits, retries, wall time) when the
    #: sweep ran through an executor; not part of the JSON export.
    stats: Optional[ExecStats] = field(default=None, compare=False)

    def pairs(self) -> Iterator[Tuple[RunSpec, SimulationResult]]:
        """(spec, result) for every *successful* slot, in spec order."""
        for spec, outcome in zip(self.specs, self.results):
            if not isinstance(outcome, SpecError):
                yield spec, outcome

    def errors(self) -> List[Tuple[RunSpec, SpecError]]:
        """(spec, error) for every failed slot, in spec order."""
        return [
            (spec, outcome)
            for spec, outcome in zip(self.specs, self.results)
            if isinstance(outcome, SpecError)
        ]

    @property
    def n_failed(self) -> int:
        return sum(1 for outcome in self.results if isinstance(outcome, SpecError))

    def by_label(self) -> Dict[str, List[SimulationResult]]:
        """Group results by spec label, preserving order within groups."""
        groups: Dict[str, List[SimulationResult]] = {}
        for spec, result in self.pairs():
            groups.setdefault(spec.label, []).append(result)
        return groups

    def series(
        self, metric: str, include_overloaded: bool = False
    ) -> Dict[str, List[Tuple[float, float]]]:
        """(load, metric) points per label — the paper's figure format.

        Overloaded points are dropped by default, mirroring the paper's
        "curves are cut at high loads when the cluster becomes
        overloaded".
        """
        out: Dict[str, List[Tuple[float, float]]] = {}
        for label, results in self.by_label().items():
            points: List[Tuple[float, float]] = []
            for result in results:
                if result.overload.overloaded and not include_overloaded:
                    continue
                points.append((result.load_per_hour, _metric(result, metric)))
            points.sort()
            out[label] = points
        return out

    def max_sustained_load(self) -> Dict[str, float]:
        """Highest non-overloaded load per label (0.0 if none)."""
        out: Dict[str, float] = {}
        for label, results in self.by_label().items():
            sustained = [r.load_per_hour for r in results if r.steady]
            out[label] = max(sustained) if sustained else 0.0
        return out

    def to_json(self) -> str:
        """Summary-JSON v3 export: deterministic for a given sweep —
        byte-identical across ``--jobs`` settings, cache hits and
        resumed runs."""
        points = []
        for spec, outcome in zip(self.specs, self.results):
            entry = {
                "label": spec.label,
                "policy": spec.policy,
                "policy_params": dict(spec.policy_params),
                "seed": spec.config.seed,
            }
            if isinstance(outcome, SpecError):
                entry["error"] = outcome.as_dict()
            else:
                entry.update(
                    {
                        "load_per_hour": outcome.load_per_hour,
                        "mean_speedup": outcome.measured.mean_speedup,
                        "mean_waiting": outcome.measured.mean_waiting,
                        "mean_waiting_excl_delay": outcome.measured.mean_waiting_excl_delay,
                        "mean_processing": outcome.measured.mean_processing,
                        "n_jobs": outcome.measured.n_jobs,
                        "overloaded": outcome.overload.overloaded,
                        "tertiary_redundancy": outcome.tertiary_redundancy,
                        "node_utilization": outcome.node_utilization,
                        "faults": (
                            outcome.faults.as_dict()
                            if outcome.faults is not None
                            else None
                        ),
                        "sched": (
                            outcome.sched.as_dict()
                            if outcome.sched is not None
                            else None
                        ),
                        "topo": (
                            outcome.topo.as_dict()
                            if outcome.topo is not None
                            else None
                        ),
                    }
                )
            points.append(entry)
        payload = {"schema_version": SWEEP_SCHEMA_VERSION, "results": points}
        return json.dumps(payload, indent=2, default=float)


def _metric(result: SimulationResult, metric: str) -> float:
    if metric == "speedup":
        return result.measured.mean_speedup
    if metric == "waiting":
        return result.measured.mean_waiting
    if metric == "waiting_excl_delay":
        return result.measured.mean_waiting_excl_delay
    if metric == "processing":
        return result.measured.mean_processing
    if metric == "sojourn":
        return result.measured.mean_sojourn
    if metric == "utilization":
        return result.node_utilization
    if metric == "redundancy":
        return result.tertiary_redundancy
    raise KeyError(f"unknown metric {metric!r}")


def _print_progress(progress: Progress) -> None:  # pragma: no cover - console
    print(f"[{progress.done}/{progress.total}] {progress.brief}", flush=True)


def run_sweep(
    specs: Sequence[RunSpec],
    processes: Optional[int] = None,
    progress: bool = False,
    *,
    executor: Optional["Executor"] = None,
    on_error: str = "raise",
) -> SweepResult:
    """Run all specs through the execution layer.

    ``processes=None`` picks a sensible default (serial for small sweeps,
    a process pool otherwise; ``$REPRO_JOBS`` overrides).  Pass a
    preconfigured :class:`repro.exec.Executor` to enable result caching,
    journaling/resume, retries or observability.

    ``on_error="raise"`` (the default) raises :class:`ExecError` if any
    spec failed — the historical abort semantics; ``on_error="capture"``
    leaves each failure as a :class:`~repro.exec.SpecError` in its slot
    so one bad point cannot take down the sweep.
    """
    from ..exec.executor import Executor

    if on_error not in ("raise", "capture"):
        raise ValueError(
            f"on_error must be 'raise' or 'capture', got {on_error!r}"
        )
    specs = list(specs)
    if executor is None:
        executor = Executor(jobs=processes)
    elif processes is not None:
        executor.jobs = processes
    outcome = executor.run(
        specs, progress=_print_progress if progress else None
    )
    sweep = SweepResult(
        specs=specs, results=outcome.results, stats=outcome.stats
    )
    if on_error == "raise" and sweep.n_failed:
        first = sweep.errors()[0][1]
        raise ExecError(
            f"{sweep.n_failed} of {len(specs)} sweep specs failed; first: "
            f"{first.brief()}\n{first.traceback}"
        )
    return sweep


def load_sweep(
    base_config: SimulationConfig,
    policy: str,
    loads_per_hour: Iterable[float],
    label: str = "",
    **policy_params,
) -> List[RunSpec]:
    """Specs for one policy across several offered loads."""
    return [
        RunSpec.make(
            base_config.with_(arrival_rate_per_hour=load),
            policy,
            label=label or policy,
            **policy_params,
        )
        for load in loads_per_hour
    ]
