"""Experiment runner: parameter sweeps with optional multiprocessing.

A sweep is a list of :class:`RunSpec` (config + policy + policy
parameters, built with :meth:`RunSpec.make` or the :func:`load_sweep`
helper).  :func:`run_sweep` executes the specs — serially for small
sweeps, across a process pool otherwise — and returns a
:class:`SweepResult` pairing each spec with its
:class:`~repro.sim.simulator.SimulationResult`.

``SweepResult`` then post-processes the pairs:

* :meth:`SweepResult.series` — (load, metric) points per label, the
  paper's figure format, with overloaded points cut off by default;
* :meth:`SweepResult.max_sustained_load` — highest steady load per label;
* :meth:`SweepResult.by_label` / :meth:`SweepResult.to_json` — grouping
  and machine-readable export.
"""

from __future__ import annotations

import json
import multiprocessing
import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .config import SimulationConfig
from .simulator import SimulationResult, run_simulation


@dataclass(frozen=True)
class RunSpec:
    """One point of a sweep."""

    config: SimulationConfig
    policy: str
    policy_params: Tuple[Tuple[str, object], ...] = ()
    label: str = ""

    @classmethod
    def make(
        cls,
        config: SimulationConfig,
        policy: str,
        label: str = "",
        **policy_params,
    ) -> "RunSpec":
        return cls(
            config=config,
            policy=policy,
            policy_params=tuple(sorted(policy_params.items())),
            label=label or policy,
        )


def _execute(spec: RunSpec) -> SimulationResult:
    return run_simulation(spec.config, spec.policy, **dict(spec.policy_params))


@dataclass
class SweepResult:
    """Results of a sweep, keyed by spec order."""

    specs: List[RunSpec]
    results: List[SimulationResult]

    def by_label(self) -> Dict[str, List[SimulationResult]]:
        """Group results by spec label, preserving order within groups."""
        groups: Dict[str, List[SimulationResult]] = {}
        for spec, result in zip(self.specs, self.results):
            groups.setdefault(spec.label, []).append(result)
        return groups

    def series(
        self, metric: str, include_overloaded: bool = False
    ) -> Dict[str, List[Tuple[float, float]]]:
        """(load, metric) points per label — the paper's figure format.

        Overloaded points are dropped by default, mirroring the paper's
        "curves are cut at high loads when the cluster becomes
        overloaded".
        """
        out: Dict[str, List[Tuple[float, float]]] = {}
        for label, results in self.by_label().items():
            points: List[Tuple[float, float]] = []
            for result in results:
                if result.overload.overloaded and not include_overloaded:
                    continue
                points.append((result.load_per_hour, _metric(result, metric)))
            points.sort()
            out[label] = points
        return out

    def max_sustained_load(self) -> Dict[str, float]:
        """Highest non-overloaded load per label (0.0 if none)."""
        out: Dict[str, float] = {}
        for label, results in self.by_label().items():
            sustained = [r.load_per_hour for r in results if r.steady]
            out[label] = max(sustained) if sustained else 0.0
        return out

    def to_json(self) -> str:
        payload = []
        for spec, result in zip(self.specs, self.results):
            payload.append(
                {
                    "label": spec.label,
                    "policy": spec.policy,
                    "policy_params": dict(spec.policy_params),
                    "load_per_hour": result.load_per_hour,
                    "mean_speedup": result.measured.mean_speedup,
                    "mean_waiting": result.measured.mean_waiting,
                    "mean_waiting_excl_delay": result.measured.mean_waiting_excl_delay,
                    "mean_processing": result.measured.mean_processing,
                    "n_jobs": result.measured.n_jobs,
                    "overloaded": result.overload.overloaded,
                    "tertiary_redundancy": result.tertiary_redundancy,
                    "node_utilization": result.node_utilization,
                }
            )
        return json.dumps(payload, indent=2, default=float)


def _metric(result: SimulationResult, metric: str) -> float:
    if metric == "speedup":
        return result.measured.mean_speedup
    if metric == "waiting":
        return result.measured.mean_waiting
    if metric == "waiting_excl_delay":
        return result.measured.mean_waiting_excl_delay
    if metric == "processing":
        return result.measured.mean_processing
    if metric == "sojourn":
        return result.measured.mean_sojourn
    if metric == "utilization":
        return result.node_utilization
    if metric == "redundancy":
        return result.tertiary_redundancy
    raise KeyError(f"unknown metric {metric!r}")


def run_sweep(
    specs: Sequence[RunSpec],
    processes: Optional[int] = None,
    progress: bool = False,
) -> SweepResult:
    """Run all specs; ``processes=None`` picks a sensible default
    (serial for small sweeps, a process pool otherwise)."""
    specs = list(specs)
    if processes is None:
        processes = 1 if len(specs) <= 2 else min(len(specs), os.cpu_count() or 1)
    if processes <= 1:
        results = []
        for index, spec in enumerate(specs):
            result = _execute(spec)
            if progress:  # pragma: no cover - console feedback only
                print(f"[{index + 1}/{len(specs)}] {result.brief()}", flush=True)
            results.append(result)
        return SweepResult(specs=specs, results=results)
    with multiprocessing.Pool(processes=processes) as pool:
        results = pool.map(_execute, specs)
    if progress:  # pragma: no cover
        for result in results:
            print(result.brief(), flush=True)
    return SweepResult(specs=specs, results=results)


def load_sweep(
    base_config: SimulationConfig,
    policy: str,
    loads_per_hour: Iterable[float],
    label: str = "",
    **policy_params,
) -> List[RunSpec]:
    """Specs for one policy across several offered loads."""
    return [
        RunSpec.make(
            base_config.with_(arrival_rate_per_hour=load),
            policy,
            label=label or policy,
            **policy_params,
        )
        for load in loads_per_hour
    ]
