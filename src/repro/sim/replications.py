"""Replicated simulation runs: mean ± confidence interval statistics.

A single discrete-event run is one sample from a stochastic system; the
paper plots single runs (standard for 2004), but a credible reproduction
should quantify run-to-run variance.  :func:`run_replications` executes
the same configuration under ``n`` different seeds and reports the
across-replication mean and Student-t confidence interval of every
headline metric.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from .config import SimulationConfig
from .runner import RunSpec, run_sweep
from .simulator import SimulationResult

if TYPE_CHECKING:  # pragma: no cover
    from ..exec.executor import Executor

#: Two-sided Student-t critical values at 95 % for small sample sizes
#: (index = degrees of freedom); avoids a scipy dependency in the core.
_T95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447,
    7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228, 11: 2.201, 12: 2.179,
    13: 2.160, 14: 2.145, 15: 2.131, 20: 2.086, 25: 2.060, 30: 2.042,
}


def t_critical_95(dof: int) -> float:
    """Two-sided 95 % Student-t critical value (1.96 asymptotically)."""
    if dof <= 0:
        return math.nan
    if dof in _T95:
        return _T95[dof]
    best = max(k for k in _T95 if k <= dof) if dof > 1 else 1
    return _T95[best] if dof < 30 else 1.96


@dataclass(frozen=True)
class MetricEstimate:
    """Across-replication mean with a 95 % confidence half-width."""

    mean: float
    half_width: float
    n: int

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    @property
    def relative_half_width(self) -> float:
        if self.mean == 0:
            return math.nan
        return self.half_width / abs(self.mean)

    def __str__(self) -> str:
        return f"{self.mean:.4g} ± {self.half_width:.2g} (n={self.n})"


def estimate(samples: List[float]) -> MetricEstimate:
    """Mean ± 95 % CI half-width of i.i.d. replication samples."""
    data = np.asarray([s for s in samples if not math.isnan(s)], dtype=float)
    n = data.size
    if n == 0:
        return MetricEstimate(math.nan, math.nan, 0)
    mean = float(np.mean(data))
    if n == 1:
        return MetricEstimate(mean, math.nan, 1)
    std_error = float(np.std(data, ddof=1)) / math.sqrt(n)
    return MetricEstimate(mean, t_critical_95(n - 1) * std_error, n)


@dataclass
class ReplicatedResult:
    """Results of n seeds of one (config, policy) pair."""

    policy: str
    results: List[SimulationResult]
    estimates: Dict[str, MetricEstimate] = field(default_factory=dict)

    @property
    def n(self) -> int:
        return len(self.results)

    @property
    def any_overloaded(self) -> bool:
        return any(r.overload.overloaded for r in self.results)

    @property
    def all_overloaded(self) -> bool:
        return all(r.overload.overloaded for r in self.results)


#: Metrics extracted per replication.
_METRICS = {
    "mean_speedup": lambda r: r.measured.mean_speedup,
    "mean_waiting": lambda r: r.measured.mean_waiting,
    "mean_waiting_excl_delay": lambda r: r.measured.mean_waiting_excl_delay,
    "mean_processing": lambda r: r.measured.mean_processing,
    "node_utilization": lambda r: r.node_utilization,
    "tertiary_redundancy": lambda r: r.tertiary_redundancy,
    "cache_hit_fraction": lambda r: r.cache_hit_fraction(),
}


def run_replications(
    config: SimulationConfig,
    policy: str,
    n_replications: int = 5,
    base_seed: int = 1000,
    processes: Optional[int] = None,
    executor: Optional["Executor"] = None,
    **policy_params,
) -> ReplicatedResult:
    """Run ``n_replications`` seeds and aggregate the headline metrics.

    Seeds are ``base_seed + i``; each replication draws an entirely fresh
    workload, so the CI captures both workload and scheduling variance.
    The replications run through the execution layer (``repro.exec``);
    pass ``executor`` to enable result caching or retries.
    """
    if n_replications < 1:
        raise ValueError(f"n_replications must be >= 1, got {n_replications}")
    specs = [
        RunSpec.make(
            config.with_(seed=base_seed + index),
            policy,
            label=f"{policy}#seed{base_seed + index}",
            **policy_params,
        )
        for index in range(n_replications)
    ]
    sweep = run_sweep(specs, processes=processes, executor=executor)
    replicated = ReplicatedResult(
        policy=policy, results=[result for _, result in sweep.pairs()]
    )
    for name, extract in _METRICS.items():
        replicated.estimates[name] = estimate(
            [extract(result) for result in replicated.results]
        )
    return replicated


def compare_policies(
    config: SimulationConfig,
    policies: List[Tuple[str, dict]],
    n_replications: int = 5,
    base_seed: int = 1000,
    processes: Optional[int] = None,
    executor: Optional["Executor"] = None,
) -> Dict[str, ReplicatedResult]:
    """Replicated comparison of several policies on matched seeds.

    Matched seeds make the comparison paired: policy A's seed-k run and
    policy B's seed-k run see identically distributed workloads.
    """
    return {
        name: run_replications(
            config,
            name,
            n_replications=n_replications,
            base_seed=base_seed,
            processes=processes,
            executor=executor,
            **params,
        )
        for name, params in policies
    }
