"""The simulation: engine + cluster + workload + policy, wired together.

:class:`Simulation` owns the run lifecycle — it schedules arrivals from a
workload trace or generator, routes node completions to the policy
(splitting them into the paper's "subjob end" vs "job end" notifications),
probes the backlog for overload analysis and collects per-job records —
and returns a pickleable :class:`SimulationResult`.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from ..faults.injector import FaultInjector
    from ..faults.net import ControlChannel

from ..core import units
from ..core.clock import wall_clock
from ..core.engine import Engine
from ..core.events import EventPriority
from ..core.rng import RandomStreams
from ..cluster.access import RemoteReadPlanner
from ..cluster.cluster import Cluster
from ..cluster.costmodel import DataSource
from ..cluster.node import Node
from ..data.tertiary import TertiaryStorage
from ..obs.hooks import HookBus, TraceSink, kinds
from ..sched.base import SchedulerContext, SchedulerPolicy, create_policy
from ..sched.stats import SchedulerStats
from ..topo.planner import TieredPlanner
from ..topo.tree import Topology, TopoSummary
from ..workload.generator import WorkloadGenerator
from ..workload.jobs import Job, JobRequest, Subjob
from .config import SimulationConfig
from .metrics import (
    DEFAULT_RECORD_CAP,
    FaultSummary,
    JobRecord,
    MetricsCollector,
    PerformanceSummary,
)
from .overload import OverloadVerdict, analyse_backlog
from .sanitizer import InvariantChecker


@dataclass
class SimulationResult:
    """Everything a run produced (pickleable for multiprocessing sweeps)."""

    config: SimulationConfig
    policy_name: str
    policy_params: Dict[str, object]
    policy_stats: Dict[str, float]
    #: Per-job records — bounded at ``DEFAULT_RECORD_CAP`` unless the run
    #: opted into full retention (``retain_records`` / ``--retain-records``);
    #: ``records_dropped`` counts what the cap discarded.
    records: List[JobRecord]
    measured: PerformanceSummary
    overload: OverloadVerdict
    jobs_arrived: int
    jobs_completed: int
    tertiary_events_read: int
    tertiary_distinct_events: int
    tertiary_redundancy: float
    node_utilization: float
    events_by_source: Dict[str, int]
    engine_events: int
    wall_seconds: float
    #: Fault/recovery accounting; ``None`` when fault injection was off.
    faults: Optional[FaultSummary] = None
    #: Control-plane accounting — measured for decentral policies, a
    #: message-count estimate synthesized for the central ones.
    sched: Optional[SchedulerStats] = None
    #: Per-job records dropped by the retention cap (0 on small runs and
    #: whenever ``retain_records`` was set).
    records_dropped: int = 0
    #: Per-tier topology accounting; ``None`` on flat (paper-shaped) runs.
    topo: Optional[TopoSummary] = None

    # -- convenience accessors used by the figure harness ------------------------

    @property
    def load_per_hour(self) -> float:
        return self.config.arrival_rate_per_hour

    @property
    def mean_speedup(self) -> float:
        return self.measured.mean_speedup

    @property
    def mean_waiting(self) -> float:
        return self.measured.mean_waiting

    @property
    def mean_waiting_excl_delay(self) -> float:
        return self.measured.mean_waiting_excl_delay

    @property
    def steady(self) -> bool:
        return not self.overload.overloaded

    def cache_hit_fraction(self) -> float:
        total = sum(self.events_by_source.values())
        if total == 0:
            return math.nan
        hits = self.events_by_source.get(DataSource.CACHE.value, 0)
        hits += self.events_by_source.get(DataSource.REMOTE.value, 0)
        hits += self.events_by_source.get(DataSource.TIER.value, 0)
        return hits / total

    def brief(self) -> str:
        """One-line summary for logs and benches."""
        state = "steady" if self.steady else "OVERLOADED"
        return (
            f"{self.policy_name:>15s} load={self.load_per_hour:5.2f}/h "
            f"speedup={self.measured.mean_speedup:6.2f} "
            f"wait={units.fmt_duration(self.measured.mean_waiting):>8s} "
            f"jobs={self.measured.n_jobs:4d} [{state}]"
        )


class Simulation:
    """One simulation run of one policy under one configuration."""

    def __init__(
        self,
        config: SimulationConfig,
        policy: SchedulerPolicy,
        trace: Optional[Sequence[JobRequest]] = None,
        sink: Optional[TraceSink] = None,
        check_invariants: bool = False,
        retain_records: bool = False,
    ) -> None:
        self.config = config
        self.policy = policy
        #: Per-run observability bus; attach sinks before :meth:`run` (the
        #: ``sink`` argument is a convenience for the common single-sink
        #: case).  With no sink attached every emission site short-circuits.
        self.obs = HookBus()
        if sink is not None:
            self.obs.attach(sink)
        #: Sim-sanitizer (``--check-invariants``): cheap transition checks
        #: inline, deep O(state) validation piggybacked on the existing
        #: probe events so the event calendar — and therefore the metrics —
        #: are identical to an unchecked run.
        self.checker: Optional[InvariantChecker] = (
            InvariantChecker() if check_invariants else None
        )
        self.engine = Engine(obs=self.obs, check_invariants=check_invariants)
        self.streams = RandomStreams(config.seed)
        dataspace = config.dataspace()
        self.tertiary = TertiaryStorage(dataspace, obs=self.obs)
        planner = policy.make_planner(self.tertiary)
        #: Hierarchical topology (repro.topo); ``None`` for flat runs —
        #: including trivial depth-1 specs, so the paper-shaped code path
        #: (and its goldens) stays untouched byte for byte.
        self.topo: Optional[Topology] = None
        if config.topology is not None and not config.topology.is_trivial:
            self.topo = Topology(
                config.topology,
                n_nodes=config.n_nodes,
                event_bytes=config.event_bytes,
                obs=self.obs,
            )
            if isinstance(planner, RemoteReadPlanner):
                # Peer selection becomes tier-locality-aware (same-prefix
                # ties go to the closest peer).
                planner.topology_view = self.topo
            planner = TieredPlanner(planner, self.topo)
        self.cluster = Cluster(
            engine=self.engine,
            n_nodes=config.n_nodes,
            cache_capacity_events=config.cache_events,
            cost_model=config.cost_model(),
            planner=planner,
            chunk_events=config.chunk_events,
            speed_factors=(
                list(config.node_speed_factors)
                if config.node_speed_factors is not None
                else None
            ),
            obs=self.obs,
        )
        if self.checker is not None:
            for node in self.cluster:
                node.checker = self.checker
        self.metrics = MetricsCollector(
            config.cost_model().uncached_event_time,
            warmup_time=config.warmup_time,
            record_cap=None if retain_records else DEFAULT_RECORD_CAP,
        )
        #: Jobs currently *in the system* (arrived, not yet completed).
        #: Completed jobs are evicted immediately unless the run opted
        #: into full retention — keeping them would make a million-job
        #: run O(jobs) in memory for no reader: the sanitizer's deep
        #: check skips done jobs and the metrics path snapshots
        #: everything it needs into its own bounded state.  With
        #: ``retain_records=True`` the dict doubles as a whole-run job
        #: archive (the white-box inspection contract tests rely on).
        self.jobs: Dict[int, Job] = {}
        self._retain_jobs = retain_records
        self._trace = list(trace) if trace is not None else None
        #: Pending generated arrivals (the chained pump); ``None`` on
        #: trace-driven runs and once the stream is exhausted.
        self._arrivals: Optional[Iterator[JobRequest]] = None
        self._primed = False

        self.cluster.set_completion_callback(self._on_subjob_complete)
        #: Unreliable control plane (repro.faults.net); ``None`` keeps
        #: every control path synchronous and draw-free (bit-identical to
        #: a channel-less build).
        self.channel: Optional["ControlChannel"] = None
        if config.net is not None and config.net.enabled:
            from ..faults.net import ControlChannel

            self.channel = ControlChannel(
                engine=self.engine,
                config=config.net,
                streams=self.streams,
                obs=self.obs,
            )
        policy.bind(
            SchedulerContext(
                engine=self.engine,
                cluster=self.cluster,
                config=config,
                tertiary=self.tertiary,
                obs=self.obs,
                streams=self.streams,
                channel=self.channel,
                topo=self.topo,
            )
        )
        if self.channel is not None:
            self.channel.attach_policy(policy)
        #: Fault injection (repro.faults); ``None`` = perfect cluster.
        self.injector: Optional["FaultInjector"] = None
        if config.faults is not None:
            from ..faults.injector import FaultInjector

            self.injector = FaultInjector(
                engine=self.engine,
                cluster=self.cluster,
                policy=policy,
                config=config.faults,
                streams=self.streams,
                horizon=config.duration,
                obs=self.obs,
            )

    # -- wiring ---------------------------------------------------------------

    def _make_workload(self) -> Iterator[JobRequest]:
        """The run's arrival stream, lazily (never the whole list).

        Generated workloads stay a generator all the way into the
        chained arrival pump, so a million-job run never materialises a
        million :class:`JobRequest` objects.
        """
        if self._trace is not None:
            return (r for r in self._trace if r.arrival_time < self.config.duration)
        generator = WorkloadGenerator(
            dataspace=self.config.dataspace(),
            arrival_rate_per_hour=self.config.arrival_rate_per_hour,
            job_size=self.config.job_size_distribution(),
            start_distribution=self.config.start_distribution(),
            streams=self.streams,
        )
        return generator.generate(self.config.duration)

    def _pump_next_arrival(self) -> None:
        """Schedule the next pending arrival (chained O(1) calendar).

        Arrival times are non-decreasing, so keeping exactly one arrival
        in the calendar — each firing schedules its successor — yields
        the same dispatch sequence as pre-pushing the whole workload
        (ARRIVAL is its own priority class and successive arrivals keep
        monotone sequence numbers) while the calendar stays O(pending
        completions) instead of O(jobs).
        """
        assert self._arrivals is not None
        request = next(self._arrivals, None)
        if request is None:
            self._arrivals = None
            return
        self.engine.call_at(
            request.arrival_time,
            self._on_arrival,
            request,
            priority=EventPriority.ARRIVAL,
            label=f"arrival:{request.job_id}",
        )

    def _on_arrival(self, request: JobRequest) -> None:
        if self._arrivals is not None:
            self._pump_next_arrival()
        job = Job(request)
        self.jobs[job.job_id] = job
        self.metrics.on_arrival(job)
        if self.obs.enabled:
            self.obs.emit(
                self.engine.now,
                kinds.JOB_ARRIVAL,
                "sim",
                job=job.job_id,
                events=job.n_events,
                start=job.segment.start,
            )
        self.policy.on_job_arrival(job)

    def _on_subjob_complete(self, node: Node, subjob: Subjob) -> None:
        job = subjob.job
        completed = job.maybe_complete(self.engine.now)
        if completed:
            self.metrics.on_completion(job)
            if not self._retain_jobs:
                # Release the job (and transitively its subjobs/request)
                # the moment it leaves the system; in-flight handlers
                # below hold their own references for as long as they
                # need them.
                self.jobs.pop(job.job_id, None)
            if self.obs.enabled:
                self.obs.emit(
                    self.engine.now,
                    kinds.JOB_END,
                    "sim",
                    node=node.node_id,
                    job=job.job_id,
                    waited=job.waiting_time,
                    processed=job.processing_time,
                )
        if self.channel is not None and self.channel.enabled:
            # The node's completion report is a control message: the
            # master-side reaction (retry drains, policy handlers) waits
            # for it to arrive.  Reports retransmit without a budget —
            # ground truth must eventually reach the master — while job
            # completion itself (recorded above) is a node-local fact.
            self.channel.send_reliable(
                lambda: self._on_report_delivered(node, subjob, completed),
                kind="report",
                node=node.node_id,
                unlimited=True,
            )
        else:
            self._on_report_delivered(node, subjob, completed)

    def _on_report_delivered(
        self, node: Node, subjob: Subjob, completed: bool
    ) -> None:
        """Master-side completion handling (post-report on a lossy LAN)."""
        if self.injector is not None:
            # Due retries get first claim on the freed node; the policy
            # handler below then sees it busy and skips (the documented
            # deferred-completion pattern).
            self.injector.on_completion(node)
        if self.channel is not None:
            # Same first-claim treatment for subjobs re-pended after a
            # dispatch dead-letter.
            self.channel.drain()
        if completed:
            self.policy.on_job_end(node, subjob.job, subjob)
        else:
            self.policy.on_subjob_end(node, subjob)

    def _probe(self) -> None:
        if self.checker is not None:
            self.checker.deep_check(self.engine, self.cluster, self.jobs.values())
        self.metrics.probe(self.engine.now, len(self.cluster.busy_nodes()))
        if self.engine.now + self.config.probe_interval <= self.config.duration:
            self.engine.call_after(
                self.config.probe_interval,
                self._probe,
                priority=EventPriority.PROBE,
                label="probe",
            )

    # -- run ----------------------------------------------------------------------

    def prime(self) -> None:
        """Schedule the workload arrivals and backlog probes.

        Called automatically by :meth:`run`; call it directly when driving
        the engine manually (e.g. stepping a policy in tests).

        Explicit traces (possibly unsorted) are bulk-loaded through the
        engine's :meth:`~repro.core.engine.Engine.call_at_batch` fast
        path; generated workloads go through the chained arrival pump so
        the calendar holds one pending arrival at a time.  Both dispatch
        bit-identically to the historical push-everything loop.
        """
        if self._primed:
            return
        self._primed = True
        if self._trace is not None:
            self.engine.call_at_batch(
                (
                    (r.arrival_time, self._on_arrival, (r,), f"arrival:{r.job_id}")
                    for r in self._make_workload()
                ),
                priority=EventPriority.ARRIVAL,
            )
        else:
            self._arrivals = self._make_workload()
            self._pump_next_arrival()
        if self.injector is not None:
            self.injector.prime()
        self.engine.call_at(0.0, self._probe, priority=EventPriority.PROBE)

    def run(self) -> SimulationResult:
        started = wall_clock()
        self.prime()
        if self.obs.enabled:
            self.obs.emit(
                0.0,
                kinds.SIM_START,
                "sim",
                policy=self.policy.name,
                nodes=self.config.n_nodes,
                duration=self.config.duration,
            )
        self.engine.run(until=self.config.duration)
        if self.obs.enabled:
            self.obs.emit(self.engine.now, kinds.SIM_END, "sim")
        wall = wall_clock() - started
        return self._build_result(wall)

    def _build_result(self, wall_seconds: float) -> SimulationResult:
        config = self.config
        measure_interval = config.duration - config.warmup_time
        # Streaming aggregation: bit-identical to the historical
        # ``PerformanceSummary.from_records(measured_records(...))`` path
        # while the run is under the exact cap, sketched beyond it.
        summary = self.metrics.summary(measure_interval=measure_interval)
        verdict = analyse_backlog(
            self.metrics.backlog,
            warmup_time=config.warmup_time,
            jobs_arrived=self.metrics.jobs_arrived,
            jobs_completed=self.metrics.jobs_completed,
            duration=config.duration,
        )
        # The TIER source exists only on hierarchical runs; flat results
        # keep the historical three-key dict, bit-identical to goldens.
        events_by_source: Dict[str, int] = {
            s.value: 0
            for s in DataSource
            if s is not DataSource.TIER or self.topo is not None
        }
        for node in self.cluster:
            for source, count in node.stats.events_by_source.items():
                if source.value in events_by_source:
                    events_by_source[source.value] += count
        # Control-plane accounting: decentral policies measure it; for
        # central ones we synthesize the classic estimate — one dispatch
        # message per subjob start, one report per completion.
        dispatches = sum(
            node.stats.subjobs_completed
            + node.stats.preemptions
            + node.stats.subjobs_aborted
            for node in self.cluster
        )
        completions = sum(node.stats.subjobs_completed for node in self.cluster)
        sched_stats = self.policy.scheduler_stats()
        if sched_stats is None:
            sched_stats = SchedulerStats.central_estimate(dispatches, completions)
        else:
            sched_stats = dataclasses.replace(sched_stats, subjobs_started=dispatches)
        if self.channel is not None and self.channel.enabled:
            net = self.channel.stats
            sched_stats = dataclasses.replace(
                sched_stats,
                retransmits=net.retransmits,
                duplicates_dropped=net.duplicates_dropped,
                timeouts=net.timeouts,
                dead_letters=net.dead_letters,
                failovers=net.failovers,
            )
        fault_summary: Optional[FaultSummary] = None
        if self.injector is not None:
            self.injector.finalize()
            fault_summary = self.injector.summary(
                degraded_makespan=self.metrics.max_completion
            )
        topo_summary: Optional[TopoSummary] = None
        if self.topo is not None:
            self.topo.finalize(until=config.duration)
            topo_summary = self.topo.summary()
        return SimulationResult(
            config=config,
            policy_name=self.policy.name,
            policy_params=self.policy.describe(),
            policy_stats=self.policy.extra_stats(),
            records=self.metrics.records,
            measured=summary,
            overload=verdict,
            jobs_arrived=self.metrics.jobs_arrived,
            jobs_completed=self.metrics.jobs_completed,
            tertiary_events_read=self.tertiary.stats.events_read,
            tertiary_distinct_events=self.tertiary.distinct_events_read,
            tertiary_redundancy=self.tertiary.redundancy_factor,
            node_utilization=self.cluster.utilization(config.duration),
            events_by_source=events_by_source,
            engine_events=self.engine.stats.dispatched,
            wall_seconds=wall_seconds,
            faults=fault_summary,
            sched=sched_stats,
            records_dropped=self.metrics.records_dropped,
            topo=topo_summary,
        )


def run_simulation(
    config: SimulationConfig,
    policy: str,
    trace: Optional[Sequence[JobRequest]] = None,
    sink: Optional[TraceSink] = None,
    check_invariants: bool = False,
    retain_records: bool = False,
    **policy_params: object,
) -> SimulationResult:
    """Build and run one simulation; the library's main entry point.

    Pass ``sink`` (e.g. a :class:`repro.obs.TraceRecorder`) to observe the
    run as structured trace events, and ``check_invariants=True`` to run
    the sim-sanitizer (identical metrics, extra runtime checks).
    ``retain_records=True`` lifts the per-job record cap and keeps
    completed :class:`~repro.workload.jobs.Job` objects in
    ``Simulation.jobs`` (O(jobs) memory; needed only when the full
    per-job state of a >100k-job run matters — aggregates always
    stream).

    >>> from repro.sim.config import quick_config
    >>> result = run_simulation(quick_config(duration=86400.0), "farm")
    >>> result.policy_name
    'farm'
    """
    policy_instance = create_policy(policy, **policy_params)
    return Simulation(
        config,
        policy_instance,
        trace=trace,
        sink=sink,
        check_invariants=check_invariants,
        retain_records=retain_records,
    ).run()
