"""Simulation wiring: configuration, metrics, overload analysis, runner."""

from .config import SimulationConfig, paper_config, quick_config
from .export import (
    SCHEMA_VERSION,
    load_records_csv,
    load_result_json,
    result_summary_dict,
    write_backlog_csv,
    write_records_csv,
    write_result_json,
)
from .metrics import JobRecord, MetricsCollector, PerformanceSummary
from .overload import OverloadVerdict, analyse_backlog
from .replications import (
    MetricEstimate,
    ReplicatedResult,
    compare_policies,
    estimate,
    run_replications,
)
from .runner import RunSpec, SweepResult, load_sweep, run_sweep
from .sanitizer import InvariantChecker
from .simulator import Simulation, SimulationResult, run_simulation

__all__ = [
    "SimulationConfig",
    "paper_config",
    "quick_config",
    "Simulation",
    "InvariantChecker",
    "SimulationResult",
    "run_simulation",
    "JobRecord",
    "MetricsCollector",
    "PerformanceSummary",
    "OverloadVerdict",
    "analyse_backlog",
    "RunSpec",
    "MetricEstimate",
    "ReplicatedResult",
    "run_replications",
    "compare_policies",
    "estimate",
    "SweepResult",
    "run_sweep",
    "load_sweep",
    "write_records_csv",
    "load_records_csv",
    "write_backlog_csv",
    "write_result_json",
    "load_result_json",
    "result_summary_dict",
    "SCHEMA_VERSION",
]
