"""Data-access planning: where each chunk's events come from.

A :class:`DataAccessPlanner` answers, for the node about to execute the
next chunk of a subjob, two questions:

1. *plan*: how far can we read at a uniform rate, and from which source
   (local cache / tertiary storage / a remote node's disk)?
2. *account*: once (part of) the chunk has actually been processed, update
   the caches, LRU timestamps, tertiary counters and replication state.

Policies differ only in the planner they install:

* processing farm & plain job splitting never touch the caches
  (:class:`NoCachePlanner`);
* every cache-aware policy uses :class:`CachingPlanner` (tertiary reads
  populate the local LRU cache, hits refresh it);
* the §4.2 replication variant uses :class:`RemoteReadPlanner`, which
  serves misses from a peer's disk when possible and replicates a segment
  on its 3rd remote access.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..data.intervals import Interval, IntervalSet
from ..data.tertiary import TertiaryStorage
from ..obs.hooks import kinds
from .costmodel import DataSource

if TYPE_CHECKING:  # pragma: no cover
    from ..topo.tree import Tier, TopologyView
    from .node import Node


@dataclass(frozen=True, slots=True)
class ChunkPlan:
    """One uniform-rate chunk: events, source, and (for remote reads)
    which node owns the cached copy.

    ``rate_factor`` scales the chunk's per-event time (>= 1.0); planners
    modelling shared-resource contention (e.g. a congested network link)
    set it from the load they observe at plan time.

    On hierarchical topologies (``repro.topo``) the
    :class:`~repro.topo.planner.TieredPlanner` additionally records the
    data path: ``via`` holds the tiers whose uplinks the stream occupies
    while the chunk runs, and ``tier`` names the tier cache serving a
    :attr:`DataSource.TIER` chunk.  Both stay at their defaults on flat
    topologies, keeping the plan byte-compatible with the paper's model.
    """

    interval: Interval
    source: DataSource
    owner: Optional["Node"] = None
    rate_factor: float = 1.0
    via: Tuple["Tier", ...] = ()
    tier: Optional["Tier"] = None


class DataAccessPlanner:
    """Base planner: resolves chunks against the local cache."""

    #: Whether tertiary reads are written through to the local disk cache.
    populate_cache = True
    #: Whether the local cache is consulted at all.
    use_cache = True

    def __init__(self, tertiary: TertiaryStorage) -> None:
        self.tertiary = tertiary

    # -- planning ------------------------------------------------------------

    def plan_chunk(self, node: "Node", remaining: Interval, max_events: int) -> ChunkPlan:
        """Choose the next uniform chunk of ``remaining`` (left-aligned,
        at most ``max_events`` long)."""
        if self.use_cache:
            prefix = node.cache.cached_prefix(remaining)
            if not prefix.empty:
                return ChunkPlan(prefix.take_left(max_events), DataSource.CACHE)
            miss = node.cache.uncached_prefix(remaining)
            return self._plan_miss(node, miss.take_left(max_events))
        return ChunkPlan(remaining.take_left(max_events), DataSource.TERTIARY)

    def _plan_miss(self, node: "Node", miss: Interval) -> ChunkPlan:
        """Resolve a local cache miss (hook for remote-read planners)."""
        return ChunkPlan(miss, DataSource.TERTIARY)

    # -- accounting -----------------------------------------------------------

    def on_chunk_started(self, node: "Node", plan: ChunkPlan) -> None:
        """Hook: a node began executing ``plan`` (contention trackers)."""

    def on_chunk_finished(self, node: "Node", plan: ChunkPlan) -> None:
        """Hook: the chunk ended (completed or preempted); called exactly
        once per started chunk, after :meth:`on_chunk_processed`."""

    def on_chunk_processed(self, node: "Node", plan: ChunkPlan, processed: Interval) -> None:
        """Record the side effects of having processed ``processed``
        (a left prefix of ``plan.interval``; may be empty after an
        immediate preemption)."""
        if processed.empty:
            return
        now = node.engine.now
        obs = node.obs
        if plan.source is DataSource.CACHE:
            node.cache.touch(processed, now)
            if obs.enabled:
                obs.emit(
                    now,
                    kinds.CACHE_HIT,
                    "planner",
                    node=node.node_id,
                    events=processed.length,
                )
        elif plan.source is DataSource.TERTIARY:
            self.tertiary.read(node.node_id, processed, now=now)
            if obs.enabled and self.use_cache:
                obs.emit(
                    now,
                    kinds.CACHE_MISS,
                    "planner",
                    node=node.node_id,
                    events=processed.length,
                )
            if self.populate_cache:
                node.cache.insert(processed, now)
        elif plan.source is DataSource.REMOTE:
            assert plan.owner is not None
            plan.owner.cache.touch(processed, now)
            if obs.enabled:
                obs.emit(
                    now,
                    kinds.REMOTE_READ,
                    "planner",
                    node=node.node_id,
                    events=processed.length,
                    owner=plan.owner.node_id,
                )
            self._on_remote_read(node, plan.owner, processed)

    def _on_remote_read(self, node: "Node", owner: "Node", processed: Interval) -> None:
        """Hook: called after a remote read (replication planners)."""


class NoCachePlanner(DataAccessPlanner):
    """All data always streams from tertiary storage (§3.1/§3.2: "No disk
    caching is performed. All data segments are always transferred from
    tertiary storage when needed.")."""

    populate_cache = False
    use_cache = False


class CachingPlanner(DataAccessPlanner):
    """Local LRU caching with write-through of tertiary reads (§3.3:
    "always caching data arriving from tertiary storage on node disks")."""


class RemoteAccessCounter:
    """Counts remote accesses per data extent of one owner node.

    ``register`` moves the accessed extent one level up (1st, 2nd, ...
    access) and returns the sub-extents that have just reached the
    replication threshold — §4.2: "data replication is carried out only on
    data items that are accessed for the third time".
    """

    def __init__(self, threshold: int = 3) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        # levels[i] = extents accessed exactly (i+1) times so far
        self._levels: List[IntervalSet] = [IntervalSet() for _ in range(threshold)]

    def register(self, interval: Interval) -> IntervalSet:
        """Record one access to ``interval``; return newly-threshold
        extents."""
        if interval.empty:
            return IntervalSet()
        remaining = IntervalSet([interval])
        promoted = IntervalSet()
        # Highest level first so a piece only moves up one level per call.
        for level in range(self.threshold - 1, -1, -1):
            at_level = self._levels[level].intersection(remaining)
            if not at_level:
                continue
            self._levels[level] = self._levels[level].difference(at_level)
            new_level = min(level + 1, self.threshold - 1)
            self._levels[new_level] = self._levels[new_level].union(at_level)
            if new_level == self.threshold - 1 and level == self.threshold - 2:
                # The piece reached exactly its threshold-th access.
                # Saturated pieces (level == threshold-1 already) are NOT
                # re-promoted: §4.2 replicates a data item once, on its
                # third access — not on every access thereafter.
                promoted = promoted.union(at_level)
            remaining = remaining.difference(at_level)
        # Never-seen parts enter level 0 (their 1st access).
        if remaining:
            if self.threshold == 1:
                promoted = promoted.union(remaining)
            self._levels[0] = self._levels[0].union(remaining)
        return promoted

    def access_count_at(self, point: int) -> int:
        """Current access count for a single event (0 if never seen)."""
        for level in range(self.threshold - 1, -1, -1):
            if self._levels[level].contains_point(point):
                return level + 1
        return 0


@dataclass
class ReplicationStats:
    """Counters for the §4.2 replication study."""

    remote_events: int = 0
    remote_chunks: int = 0
    replicated_events: int = 0
    replication_events: int = 0  # number of replication decisions
    per_owner_remote: Dict[int, int] = field(default_factory=dict)


class RemoteReadPlanner(CachingPlanner):
    """§4.2: serve local misses from a peer's disk cache when one holds
    the data; replicate an extent into the reader's cache on its 3rd
    remote access."""

    #: Tier-locality scoring (repro.topo): installed by the simulator on
    #: hierarchical runs.  ``None`` (flat clusters) keeps peer selection
    #: byte-identical to the paper's model — longest prefix, lowest id.
    topology_view: Optional["TopologyView"] = None

    def __init__(
        self,
        tertiary: TertiaryStorage,
        replication_threshold: int = 3,
        replication_enabled: bool = True,
    ) -> None:
        super().__init__(tertiary)
        self.replication_threshold = replication_threshold
        self.replication_enabled = replication_enabled
        self._counters: Dict[int, RemoteAccessCounter] = {}
        self.stats = ReplicationStats()
        self._peers: List["Node"] = []

    def set_peers(self, nodes: List["Node"]) -> None:
        """Install the cluster's node list (called once by the simulator)."""
        self._peers = list(nodes)

    def _plan_miss(self, node: "Node", miss: Interval) -> ChunkPlan:
        view = self.topology_view
        best_owner: Optional["Node"] = None
        best_key = (0, 0)
        for peer in self._peers:
            if peer is node:
                continue
            prefix = peer.cache.cached_prefix(miss)
            if prefix.empty:
                continue
            # Longest prefix first; among equals, the tier-closest peer
            # (distance 0 everywhere on flat clusters, where this reduces
            # to the historical lowest-id rule).
            distance = (
                view.distance(node.node_id, peer.node_id)
                if view is not None
                else 0
            )
            key = (prefix.length, -distance)
            if key > best_key:
                best_key = key
                best_owner = peer
                best_prefix = prefix
        if best_owner is None:
            return ChunkPlan(miss, DataSource.TERTIARY)
        return ChunkPlan(best_prefix, DataSource.REMOTE, owner=best_owner)

    def peers(self) -> List["Node"]:
        return list(self._peers)

    def _on_remote_read(self, node: "Node", owner: "Node", processed: Interval) -> None:
        self.stats.remote_events += processed.length
        self.stats.remote_chunks += 1
        per_owner = self.stats.per_owner_remote
        per_owner[owner.node_id] = per_owner.get(owner.node_id, 0) + processed.length
        if not self.replication_enabled:
            return
        counter = self._counters.get(owner.node_id)
        if counter is None:
            counter = RemoteAccessCounter(self.replication_threshold)
            self._counters[owner.node_id] = counter
        promoted = counter.register(processed)
        if promoted:
            # Replicate: copy the hot extents into the reader's cache.
            now = node.engine.now
            self.stats.replication_events += 1
            for extent in promoted:
                self.stats.replicated_events += extent.length
                node.cache.insert(extent, now)


class ContentionRemoteReadPlanner(RemoteReadPlanner):
    """Remote reads over a *shared* cluster backbone with contended disks.

    The base :class:`RemoteReadPlanner` prices a remote read as if every
    node pair had a dedicated Gigabit link and the owner's disk were idle —
    the paper's (implicit) assumption.  This planner stresses that
    assumption, for the ``ablate-network`` experiment:

    * the backbone carries ``link_capacity_streams`` full-rate remote
      streams; beyond that, the wire share of the per-event time scales
      with the oversubscription ratio;
    * if the owner is itself reading its disk (a cache-source chunk), the
      remote stream and the owner share the disk fairly (2x disk time).

    Chunk durations are fixed when the chunk starts, so contention is
    sampled at plan time — a snapshot approximation that is exact for
    constant load and conservative for bursts.
    """

    def __init__(
        self,
        tertiary: TertiaryStorage,
        replication_threshold: int = 3,
        replication_enabled: bool = True,
        link_capacity_streams: int = 4,
    ) -> None:
        super().__init__(
            tertiary,
            replication_threshold=replication_threshold,
            replication_enabled=replication_enabled,
        )
        if link_capacity_streams < 1:
            raise ValueError(
                f"link_capacity_streams must be >= 1, got {link_capacity_streams}"
            )
        self.link_capacity_streams = link_capacity_streams
        self._active_remote_streams = 0
        self.peak_remote_streams = 0

    def _plan_miss(self, node: "Node", miss: Interval) -> ChunkPlan:
        plan = super()._plan_miss(node, miss)
        if plan.source is not DataSource.REMOTE:
            return plan
        assert plan.owner is not None
        model = node.cost_model
        disk, wire, cpu = model.disk_time, model.network_time, model.cpu_time
        streams = self._active_remote_streams + 1
        wire_multiplier = max(1.0, streams / self.link_capacity_streams)
        owner_reading_disk = (
            plan.owner.busy and plan.owner.current_source() is DataSource.CACHE
        )
        disk_multiplier = 2.0 if owner_reading_disk else 1.0
        base = disk + wire + cpu
        effective = disk * disk_multiplier + wire * wire_multiplier + cpu
        return ChunkPlan(
            interval=plan.interval,
            source=plan.source,
            owner=plan.owner,
            rate_factor=effective / base,
        )

    def on_chunk_started(self, node: "Node", plan: ChunkPlan) -> None:
        if plan.source is DataSource.REMOTE:
            self._active_remote_streams += 1
            self.peak_remote_streams = max(
                self.peak_remote_streams, self._active_remote_streams
            )

    def on_chunk_finished(self, node: "Node", plan: ChunkPlan) -> None:
        if plan.source is DataSource.REMOTE:
            self._active_remote_streams -= 1
            assert self._active_remote_streams >= 0
