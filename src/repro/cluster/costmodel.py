"""Per-event timing model.

The paper's simulator charges each event a data-transfer time plus a CPU
time, with three possible data sources:

* node **disk cache** (10 MB/s → 0.06 s/event),
* **tertiary** storage (1 MB/s per node stream → 0.6 s/event),
* a **remote** node's disk over Gigabit Ethernet (§4.2; disk-bound, plus
  a small wire time).

With the paper's 0.2 s CPU per event this yields 0.26 s (cached) and
0.8 s (uncached) per event — reproducing the paper's anchors: caching
factor "slightly larger than 3" (3.08), 32 000 s single-node uncached job
time, 3.46 jobs/hour theoretical maximal load.

``pipelined=True`` implements the §7 "future work" extension: transfer and
computation of successive events overlap, so the per-event cost becomes
``max(transfer, cpu)`` instead of their sum.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..core.errors import ConfigurationError


class DataSource(enum.Enum):
    """Where a chunk's events are read from."""

    CACHE = "cache"  # local disk cache hit
    TERTIARY = "tertiary"  # streamed from mass storage
    REMOTE = "remote"  # read from another node's disk cache
    TIER = "tier"  # served by an interior tier cache (repro.topo)


@dataclass(frozen=True)
class CostModel:
    """Per-event timing for each data source.

    All times are seconds per event for a speed-factor-1.0 node.
    """

    cpu_time: float = 0.2
    disk_time: float = 0.06
    tertiary_time: float = 0.6
    network_time: float = 0.0048
    pipelined: bool = False
    #: Fixed setup latency per tertiary read request (tape positioning /
    #: Castor staging).  The paper sets this to zero ("we do not take the
    #: tertiary storage system data access latency into account"); the
    #: ``ablate-tape-latency`` experiment sweeps it.
    tertiary_latency: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "cpu_time",
            "disk_time",
            "tertiary_time",
            "network_time",
            "tertiary_latency",
        ):
            value = getattr(self, name)
            if value < 0:
                raise ConfigurationError(f"{name} must be >= 0, got {value}")

    @classmethod
    def from_hardware(
        cls,
        event_bytes: int,
        cpu_time_per_event: float = 0.2,
        disk_throughput: float = 10e6,
        tertiary_throughput: float = 1e6,
        network_throughput: float = 125e6,
        pipelined: bool = False,
        tertiary_latency: float = 0.0,
    ) -> "CostModel":
        """Derive per-event times from hardware rates (bytes/second).

        >>> CostModel.from_hardware(600_000).uncached_event_time
        0.8
        """
        if min(disk_throughput, tertiary_throughput, network_throughput) <= 0:
            raise ConfigurationError("throughputs must be > 0")
        return cls(
            cpu_time=cpu_time_per_event,
            disk_time=event_bytes / disk_throughput,
            tertiary_time=event_bytes / tertiary_throughput,
            network_time=event_bytes / network_throughput,
            pipelined=pipelined,
            tertiary_latency=tertiary_latency,
        )

    def setup_latency(self, source: DataSource) -> float:
        """Fixed per-chunk setup time for ``source`` (tape positioning)."""
        return self.tertiary_latency if source is DataSource.TERTIARY else 0.0

    # -- per-source times --------------------------------------------------

    def transfer_time(self, source: DataSource) -> float:
        """Data movement seconds per event for ``source``."""
        if source is DataSource.CACHE:
            return self.disk_time
        if source is DataSource.TERTIARY:
            return self.tertiary_time
        if source is DataSource.REMOTE:
            # Remote disk read: bound by the owner's disk, plus wire time.
            return self.disk_time + self.network_time
        if source is DataSource.TIER:
            # Tier caches are disk pools: the read is disk-bound at the
            # serving tier; traversed-link times ride the chunk's
            # rate_factor (set by repro.topo.planner from the path).
            return self.disk_time
        raise ConfigurationError(f"unknown source {source!r}")

    def event_time(self, source: DataSource, speed_factor: float = 1.0) -> float:
        """Total seconds per event on a node of the given speed factor.

        ``speed_factor`` scales the whole per-event cost (a 2.0 node is
        twice as slow); the default homogeneous cluster uses 1.0
        everywhere, matching the paper's "all nodes are identical".
        """
        transfer = self.transfer_time(source)
        if self.pipelined:
            base = max(transfer, self.cpu_time)
        else:
            base = transfer + self.cpu_time
        return base * speed_factor

    # -- derived quantities -------------------------------------------------

    @property
    def cached_event_time(self) -> float:
        """Seconds per event when data is on the local disk (0.26 s)."""
        return self.event_time(DataSource.CACHE)

    @property
    def uncached_event_time(self) -> float:
        """Seconds per event when data comes from tertiary storage
        (0.8 s) — also the paper's speedup reference rate."""
        return self.event_time(DataSource.TERTIARY)

    @property
    def caching_speedup(self) -> float:
        """Maximal speedup factor attributable to caching (≈ 3.08)."""
        return self.uncached_event_time / self.cached_event_time
