"""Processing nodes: single-CPU executors with chunked, preemptible
subjob execution.

A node runs at most one subjob at a time (§2.4: "we only run a single job
or subjob per processor at any given time").  Execution is *chunked*: the
node asks its :class:`~repro.cluster.access.DataAccessPlanner` for the next
uniform-rate run of events, schedules one engine event at the chunk's
completion time, and repeats.  Preemption between events is exact: an
interrupted chunk credits the whole events finished so far and re-queues
the rest (the in-flight fractional event is re-processed later, matching
the paper's event-atomic processing).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.sanitizer import InvariantChecker

from ..core.engine import Engine
from ..core.errors import SchedulingError
from ..core.events import EventPriority, ScheduledEvent
from ..data.cache import LRUSegmentCache
from ..obs.hooks import NULL_BUS, HookBus, kinds
from ..workload.jobs import Subjob, SubjobState
from .access import ChunkPlan, DataAccessPlanner
from .costmodel import CostModel, DataSource

#: Tolerance for float round-off when counting whole events in an elapsed
#: chunk time (an event is counted as done if at least 1 - 1e-9 of it ran).
_EVENT_EPSILON = 1e-9


@dataclass
class NodeStats:
    """Per-node lifetime counters."""

    busy_seconds: float = 0.0
    events_processed: int = 0
    events_by_source: Dict[DataSource, int] = field(
        default_factory=lambda: {source: 0 for source in DataSource}
    )
    chunks_started: int = 0
    preemptions: int = 0
    subjobs_completed: int = 0
    # -- fault accounting (repro.faults) ------------------------------------
    failures: int = 0
    subjobs_aborted: int = 0
    #: Whole events that were processed but lost with the in-flight chunk.
    lost_events: int = 0
    #: Wall time of crashed chunks (elapsed compute that produced nothing).
    lost_seconds: float = 0.0
    downtime_seconds: float = 0.0

    def utilization(self, elapsed: float) -> float:
        return 0.0 if elapsed <= 0 else self.busy_seconds / elapsed


class _RunningChunk:
    __slots__ = (
        "plan",
        "per_event_time",
        "setup_latency",
        "started_at",
        "completion_event",
    )

    def __init__(
        self,
        plan: ChunkPlan,
        per_event_time: float,
        setup_latency: float,
        started_at: float,
        completion_event: ScheduledEvent,
    ) -> None:
        self.plan = plan
        self.per_event_time = per_event_time
        self.setup_latency = setup_latency
        self.started_at = started_at
        self.completion_event = completion_event


class Node:
    """One processing node: CPU + disk cache + a data-access planner.

    The scheduler-facing API is three calls:

    * :meth:`start` — begin/resume a subjob (node must be idle);
    * :meth:`preempt` — suspend the running subjob between events;
    * :attr:`on_subjob_complete` — callback fired when a subjob's last
      event finishes (installed by the simulator; handlers must check
      :attr:`busy`, since completions triggered from within a preemption
      are notified via a zero-delay event).
    """

    def __init__(
        self,
        node_id: int,
        engine: Engine,
        cache: LRUSegmentCache,
        cost_model: CostModel,
        planner: DataAccessPlanner,
        chunk_events: int = 2000,
        speed_factor: float = 1.0,
        obs: HookBus = NULL_BUS,
    ) -> None:
        if chunk_events < 1:
            raise SchedulingError(f"chunk_events must be >= 1, got {chunk_events}")
        if speed_factor <= 0:
            raise SchedulingError(f"speed_factor must be > 0, got {speed_factor}")
        self.node_id = node_id
        self.engine = engine
        self.cache = cache
        self.cost_model = cost_model
        self.planner = planner
        self.chunk_events = chunk_events
        self.speed_factor = speed_factor
        #: Memoized per-source chunk costs: the cost model is a frozen
        #: dataclass and ``speed_factor`` is fixed at construction, so the
        #: per-event time and setup latency per source are constants —
        #: computing them once keeps the chunk hot path free of method
        #: calls and branch chains.
        self._event_time: Dict[DataSource, float] = {
            source: cost_model.event_time(source, speed_factor)
            for source in DataSource
        }
        self._setup_latency: Dict[DataSource, float] = {
            source: cost_model.setup_latency(source) * speed_factor
            for source in DataSource
        }
        self.obs = obs
        self.stats = NodeStats()
        self.current: Optional[Subjob] = None
        self._chunk: Optional[_RunningChunk] = None
        #: Crash state (repro.faults): a failed node accepts no work and
        #: its cache is invisible to placement decisions until recovery.
        self.failed = False
        self._down_since = 0.0
        #: Control-plane reservation (repro.faults.net): set while a
        #: reliable dispatch is in flight to this node so no other
        #: scheduling decision double-books it; cleared on delivery or
        #: dead-letter.  Always ``False`` on a perfect network.
        self.reserved = False
        #: Per-event time multiplier for tertiary chunks (tertiary-stall
        #: modelling; snapshotted into each chunk at plan time, mirroring
        #: the contention planner's rate_factor approximation).
        self.tertiary_slowdown = 1.0
        #: Installed by the simulator: ``callback(node, subjob)``.
        self.on_subjob_complete: Optional[Callable[["Node", Subjob], None]] = None
        #: Sim-sanitizer transition hooks (``--check-invariants``); ``None``
        #: in normal runs, so the cost when off is one ``is None`` test per
        #: subjob transition.
        self.checker: Optional["InvariantChecker"] = None

    # -- queries ---------------------------------------------------------------

    @property
    def busy(self) -> bool:
        return self.current is not None

    @property
    def idle(self) -> bool:
        """Free to accept work: no running subjob, not crashed, and no
        dispatch already in flight to it."""
        return self.current is None and not self.failed and not self.reserved

    def current_source(self) -> Optional[DataSource]:
        """Data source of the in-flight chunk (None when idle)."""
        return self._chunk.plan.source if self._chunk else None

    # -- control ----------------------------------------------------------------

    def start(self, subjob: Subjob) -> None:
        """Begin or resume ``subjob`` on this node."""
        if self.busy:
            raise SchedulingError(
                f"node {self.node_id} is busy with {self.current!r}"
            )
        if self.failed:
            raise SchedulingError(
                f"node {self.node_id} is failed; cannot start {subjob.sid}"
            )
        if subjob.state not in (SubjobState.PENDING, SubjobState.SUSPENDED):
            raise SchedulingError(
                f"cannot start subjob {subjob.sid} in state {subjob.state}"
            )
        if subjob.remaining_events == 0:
            raise SchedulingError(f"subjob {subjob.sid} has no remaining work")
        if self.checker is not None:
            self.checker.on_subjob_start(self, subjob)
        if self.obs.enabled:
            now = self.engine.now
            kind = (
                kinds.SUBJOB_RESUME
                if subjob.state is SubjobState.SUSPENDED
                else kinds.SUBJOB_START
            )
            self.obs.emit(
                now,
                kind,
                "node",
                node=self.node_id,
                job=subjob.job.job_id,
                sid=subjob.sid,
                events=subjob.remaining_events,
            )
            self.obs.emit(now, kinds.NODE_BUSY, "node", node=self.node_id, sid=subjob.sid)
        subjob.state = SubjobState.RUNNING
        subjob.node = self
        self.current = subjob
        subjob.job.mark_started(self.engine.now)
        self._begin_next_chunk()

    def preempt(self) -> Optional[Subjob]:
        """Suspend the running subjob between events.

        Returns the suspended subjob, or ``None`` if the node was idle or
        the subjob turned out to have just finished (its completion
        callback is then delivered through a zero-delay event).
        """
        subjob = self.current
        if subjob is None:
            return None
        chunk = self._chunk
        assert chunk is not None
        self.engine.cancel(chunk.completion_event)
        elapsed = self.engine.now - chunk.started_at
        productive = max(0.0, elapsed - chunk.setup_latency)
        events_done = int(productive / chunk.per_event_time + _EVENT_EPSILON)
        events_done = min(events_done, chunk.plan.interval.length)
        self._account_chunk(chunk, events_done, min(elapsed, chunk.setup_latency))
        self._chunk = None
        self.current = None
        self.stats.preemptions += 1
        if subjob.remaining_events == 0:
            # Preempted exactly at completion: it is in fact done.
            self._finish_subjob(subjob, deferred=True)
            return None
        if self.checker is not None:
            self.checker.on_subjob_suspend(self, subjob)
        subjob.state = SubjobState.SUSPENDED
        subjob.node = None
        if self.obs.enabled:
            now = self.engine.now
            self.obs.emit(
                now,
                kinds.SUBJOB_SUSPEND,
                "node",
                node=self.node_id,
                job=subjob.job.job_id,
                sid=subjob.sid,
                events=subjob.remaining_events,
            )
            self.obs.emit(now, kinds.NODE_IDLE, "node", node=self.node_id)
        return subjob

    # -- faults (repro.faults) ----------------------------------------------------

    def fail(self, wipe_cache: bool = False) -> Optional[Subjob]:
        """Crash the node: abort the running chunk, losing its progress.

        Unlike :meth:`preempt`, an abort credits *nothing* from the
        in-flight chunk — the whole events already computed in it are lost
        work (tracked in :attr:`NodeStats.lost_events` /
        :attr:`NodeStats.lost_seconds`).  Progress from previously
        completed chunks survives, so a retried subjob resumes from the
        last chunk boundary.  Returns the aborted subjob (SUSPENDED), or
        ``None`` if the node was not running one.
        """
        if self.failed:
            raise SchedulingError(f"node {self.node_id} is already failed")
        subjob = self.current
        aborted: Optional[Subjob] = None
        if subjob is not None:
            chunk = self._chunk
            assert chunk is not None
            self.engine.cancel(chunk.completion_event)
            elapsed = self.engine.now - chunk.started_at
            productive = max(0.0, elapsed - chunk.setup_latency)
            lost = int(productive / chunk.per_event_time + _EVENT_EPSILON)
            lost = min(lost, chunk.plan.interval.length)
            # Keep the planner's started/finished pairing, crediting no
            # events (contention trackers must see the stream end).
            self.planner.on_chunk_processed(
                self, chunk.plan, chunk.plan.interval.take_left(0)
            )
            self.planner.on_chunk_finished(self, chunk.plan)
            self._chunk = None
            self.current = None
            self.stats.subjobs_aborted += 1
            self.stats.lost_events += lost
            self.stats.lost_seconds += elapsed
            if self.checker is not None:
                self.checker.on_subjob_abort(self, subjob)
            subjob.state = SubjobState.SUSPENDED
            subjob.node = None
            aborted = subjob
        self.failed = True
        self._down_since = self.engine.now
        self.stats.failures += 1
        if wipe_cache:
            self.cache.clear()
        if self.checker is not None:
            self.checker.on_node_failed(self)
        if self.obs.enabled:
            now = self.engine.now
            if aborted is not None:
                self.obs.emit(
                    now,
                    kinds.SUBJOB_ABORT,
                    "node",
                    node=self.node_id,
                    job=aborted.job.job_id,
                    sid=aborted.sid,
                    events=aborted.remaining_events,
                )
            self.obs.emit(
                now,
                kinds.NODE_FAIL,
                "node",
                node=self.node_id,
                wiped=wipe_cache,
                aborted=aborted.sid if aborted is not None else "",
            )
            self.obs.emit(now, kinds.NODE_IDLE, "node", node=self.node_id)
        return aborted

    def recover(self) -> None:
        """Bring a failed node back up (idle, ready for work)."""
        if not self.failed:
            raise SchedulingError(f"node {self.node_id} is not failed")
        self.failed = False
        self.stats.downtime_seconds += self.engine.now - self._down_since
        if self.checker is not None:
            self.checker.on_node_recovered(self)
        if self.obs.enabled:
            self.obs.emit(
                self.engine.now, kinds.NODE_RECOVER, "node", node=self.node_id
            )

    def flush_downtime(self) -> None:
        """Fold any open downtime stretch into the stats (end of run)."""
        if self.failed:
            self.stats.downtime_seconds += self.engine.now - self._down_since
            self._down_since = self.engine.now

    # -- internals ----------------------------------------------------------------

    def _begin_next_chunk(self) -> None:
        subjob = self.current
        assert subjob is not None
        remaining = subjob.remaining
        assert not remaining.empty
        plan = self.planner.plan_chunk(self, remaining, self.chunk_events)
        if plan.interval.empty or plan.interval.start != remaining.start:
            raise SchedulingError(
                f"planner returned bad chunk {plan.interval} for {remaining}"
            )
        source = plan.source
        per_event = self._event_time[source] * plan.rate_factor
        if source is DataSource.TERTIARY and self.tertiary_slowdown != 1.0:
            per_event *= self.tertiary_slowdown
        setup = self._setup_latency[source]
        duration = setup + plan.interval.length * per_event
        self.planner.on_chunk_started(self, plan)
        completion = self.engine.call_after(
            duration,
            self._on_chunk_complete,
            priority=EventPriority.COMPLETION,
            label=f"chunk:{subjob.sid}@{self.node_id}",
        )
        self._chunk = _RunningChunk(
            plan, per_event, setup, self.engine.now, completion
        )
        self.stats.chunks_started += 1

    def _on_chunk_complete(self) -> None:
        subjob = self.current
        chunk = self._chunk
        assert subjob is not None and chunk is not None
        self._account_chunk(chunk, chunk.plan.interval.length, chunk.setup_latency)
        self._chunk = None
        if subjob.remaining_events == 0:
            self.current = None
            self._finish_subjob(subjob, deferred=False)
        else:
            self._begin_next_chunk()

    def _account_chunk(
        self, chunk: _RunningChunk, events_done: int, setup_spent: float = 0.0
    ) -> None:
        """Credit ``events_done`` whole events of the chunk (plus any
        setup latency actually paid)."""
        subjob = self.current
        assert subjob is not None
        plan = chunk.plan
        planner = self.planner
        processed = plan.interval.take_left(events_done)
        planner.on_chunk_processed(self, plan, processed)
        planner.on_chunk_finished(self, plan)
        subjob.advance(events_done)
        stats = self.stats
        stats.busy_seconds += events_done * chunk.per_event_time + setup_spent
        stats.events_processed += events_done
        stats.events_by_source[plan.source] += events_done
        if self.obs.enabled and events_done > 0:
            self.obs.emit(
                self.engine.now,
                kinds.CHUNK_DONE,
                "node",
                node=self.node_id,
                job=subjob.job.job_id,
                sid=subjob.sid,
                src=chunk.plan.source.value,
                events=events_done,
                duration=events_done * chunk.per_event_time + setup_spent,
            )

    def _finish_subjob(self, subjob: Subjob, deferred: bool) -> None:
        if self.checker is not None:
            self.checker.on_subjob_finish(self, subjob)
        subjob.state = SubjobState.DONE
        subjob.node = None
        self.stats.subjobs_completed += 1
        if self.obs.enabled:
            now = self.engine.now
            self.obs.emit(
                now,
                kinds.SUBJOB_END,
                "node",
                node=self.node_id,
                job=subjob.job.job_id,
                sid=subjob.sid,
            )
            self.obs.emit(now, kinds.NODE_IDLE, "node", node=self.node_id)
        if self.on_subjob_complete is None:
            return
        if deferred:
            # Notify through the calendar so the preempting scheduler's
            # handler finishes before the completion handler runs.
            self.engine.call_after(
                0.0,
                self.on_subjob_complete,
                self,
                subjob,
                priority=EventPriority.COMPLETION,
                label=f"done:{subjob.sid}",
            )
        else:
            self.on_subjob_complete(self, subjob)

    def __repr__(self) -> str:
        state = f"running {self.current.sid}" if self.current else "idle"
        return f"Node(#{self.node_id}, {state}, cache={self.cache.used_events}ev)"
