"""The cluster: a set of processing nodes behind one master scheduler.

Mirrors the paper's Fig. 1 architecture — N identical single-CPU nodes,
each with a local disk cache, all connected to a shared tertiary storage
system.  The master node itself is not simulated (its scheduling decisions
are instantaneous), matching the paper's simulator.

The flat cluster is the degenerate depth-1 case of the hierarchical
topology layer (``repro.topo``): when a run carries no
:class:`~repro.topo.spec.TopologySpec` — or a trivial one (a single
root tier, no tier cache) — the simulator never builds a
:class:`~repro.topo.tree.Topology` and this module's data path runs
exactly the historical code, which is what makes the depth-1
bit-identity guarantee exact rather than approximate.  Deeper specs
arrange these same nodes under rack/site tiers whose caches and
contended uplinks are consulted by the tiered access planner; the
``Cluster`` object itself is unchanged either way.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Tuple

from ..core.engine import Engine
from ..core.errors import ConfigurationError
from ..data.cache import LRUSegmentCache
from ..data.intervals import Interval
from ..obs.hooks import NULL_BUS, HookBus
from .access import DataAccessPlanner
from .costmodel import CostModel
from .node import Node


class Cluster:
    """N processing nodes sharing a cost model and an access planner."""

    def __init__(
        self,
        engine: Engine,
        n_nodes: int,
        cache_capacity_events: int,
        cost_model: CostModel,
        planner: DataAccessPlanner,
        chunk_events: int = 2000,
        speed_factors: Optional[List[float]] = None,
        obs: HookBus = NULL_BUS,
    ) -> None:
        if n_nodes < 1:
            raise ConfigurationError(f"need at least one node, got {n_nodes}")
        if speed_factors is not None and len(speed_factors) != n_nodes:
            raise ConfigurationError(
                f"{len(speed_factors)} speed factors for {n_nodes} nodes"
            )
        self.engine = engine
        self.cost_model = cost_model
        self.planner = planner
        self.obs = obs
        self.nodes: List[Node] = [
            Node(
                node_id=i,
                engine=engine,
                cache=LRUSegmentCache(cache_capacity_events, obs=obs, owner_id=i),
                cost_model=cost_model,
                planner=planner,
                chunk_events=chunk_events,
                speed_factor=1.0 if speed_factors is None else speed_factors[i],
                obs=obs,
            )
            for i in range(n_nodes)
        ]

    # -- iteration -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterator[Node]:
        return iter(self.nodes)

    def __getitem__(self, node_id: int) -> Node:
        return self.nodes[node_id]

    # -- scheduling helpers -------------------------------------------------------

    def idle_nodes(self) -> List[Node]:
        """All currently idle nodes, in id order (deterministic)."""
        return [node for node in self.nodes if node.idle]

    def busy_nodes(self) -> List[Node]:
        return [node for node in self.nodes if node.busy]

    def set_completion_callback(
        self, callback: Callable[[Node, object], None]
    ) -> None:
        for node in self.nodes:
            node.on_subjob_complete = callback

    # -- cache geography ------------------------------------------------------------

    def cached_events_by_node(self, interval: Interval) -> List[Tuple[Node, int]]:
        """``(node, cached events of interval)`` for every node, id order."""
        return [(node, node.cache.cached_events(interval)) for node in self.nodes]

    def best_cache_owner(
        self, interval: Interval, exclude: Optional[Node] = None
    ) -> Tuple[Optional[Node], int]:
        """The node caching the most of ``interval`` (ties → lowest id).

        Returns ``(None, 0)`` when nothing is cached anywhere.
        """
        best: Optional[Node] = None
        best_events = 0
        for node in self.nodes:
            if node is exclude:
                continue
            events = node.cache.cached_events(interval)
            if events > best_events:
                best = node
                best_events = events
        return best, best_events

    def total_cached_events(self) -> int:
        return sum(node.cache.used_events for node in self.nodes)

    def utilization(self, elapsed: float) -> float:
        """Mean fraction of node time spent processing events."""
        if elapsed <= 0 or not self.nodes:
            return 0.0
        return sum(n.stats.utilization(elapsed) for n in self.nodes) / len(self.nodes)

    def __repr__(self) -> str:
        busy = sum(1 for n in self.nodes if n.busy)
        return f"Cluster({len(self.nodes)} nodes, {busy} busy)"
