"""Cluster substrates: cost model, data-access planning, nodes, cluster."""

from .access import (
    CachingPlanner,
    ContentionRemoteReadPlanner,
    ChunkPlan,
    DataAccessPlanner,
    NoCachePlanner,
    RemoteAccessCounter,
    RemoteReadPlanner,
    ReplicationStats,
)
from .cluster import Cluster
from .costmodel import CostModel, DataSource
from .node import Node, NodeStats

__all__ = [
    "CostModel",
    "DataSource",
    "DataAccessPlanner",
    "NoCachePlanner",
    "CachingPlanner",
    "RemoteReadPlanner",
    "ContentionRemoteReadPlanner",
    "RemoteAccessCounter",
    "ReplicationStats",
    "ChunkPlan",
    "Node",
    "NodeStats",
    "Cluster",
]
