"""Data substrates: extent algebra, data space, disk caches, tertiary
storage accounting."""

from .cache import CacheStats, LRUSegmentCache
from .dataspace import DataSpace
from .intervals import Interval, IntervalSet, complement, partition_by
from .tertiary import TertiaryStats, TertiaryStorage

__all__ = [
    "Interval",
    "IntervalSet",
    "complement",
    "partition_by",
    "DataSpace",
    "LRUSegmentCache",
    "CacheStats",
    "TertiaryStorage",
    "TertiaryStats",
]
