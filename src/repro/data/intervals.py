"""Half-open integer intervals and disjoint interval sets.

Every piece of data in the simulated system — a job's data segment, a
subjob's remaining work, a disk cache extent, a delayed-scheduling stripe —
is a contiguous range of event indices.  This module provides the algebra
those components are built on:

* :class:`Interval` — an immutable half-open range ``[start, end)`` of
  event indices;
* :class:`IntervalSet` — a canonical (sorted, disjoint, merged) set of
  intervals with union / intersection / difference / measure.

The representation is canonical: an :class:`IntervalSet` never contains
empty, overlapping or adjacent intervals, so two sets covering the same
points always compare equal.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence, Tuple, Union

import numpy as np

from ..core.errors import IntervalError


@dataclass(frozen=True, order=True, slots=True)
class Interval:
    """A half-open range ``[start, end)`` of integer event indices.

    >>> Interval(0, 10).length
    10
    >>> Interval(0, 10).intersection(Interval(5, 20))
    Interval(5, 10)
    """

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise IntervalError(f"end < start in [{self.start}, {self.end})")

    # -- basic queries -----------------------------------------------------

    @property
    def length(self) -> int:
        """Number of events in the interval."""
        return self.end - self.start

    @property
    def empty(self) -> bool:
        return self.end <= self.start

    def contains(self, point: int) -> bool:
        return self.start <= point < self.end

    def covers(self, other: "Interval") -> bool:
        """True if ``other`` lies entirely inside this interval."""
        return other.empty or (self.start <= other.start and other.end <= self.end)

    def overlaps(self, other: "Interval") -> bool:
        """True if the two intervals share at least one point."""
        return self.start < other.end and other.start < self.end

    def adjacent(self, other: "Interval") -> bool:
        """True if the intervals touch without overlapping."""
        return self.end == other.start or other.end == self.start

    # -- algebra -------------------------------------------------------------

    def intersection(self, other: "Interval") -> "Interval":
        """The common part (possibly empty, normalised to zero length)."""
        start = max(self.start, other.start)
        end = min(self.end, other.end)
        if end <= start:
            return Interval(start, start)
        return Interval(start, end)

    def hull(self, other: "Interval") -> "Interval":
        """Smallest interval covering both operands."""
        if self.empty:
            return other
        if other.empty:
            return self
        return Interval(min(self.start, other.start), max(self.end, other.end))

    def subtract(self, other: "Interval") -> Tuple["Interval", ...]:
        """Points of ``self`` not in ``other`` (0, 1 or 2 pieces)."""
        inter = self.intersection(other)
        if inter.empty:
            return (self,) if not self.empty else ()
        pieces = []
        if self.start < inter.start:
            pieces.append(Interval(self.start, inter.start))
        if inter.end < self.end:
            pieces.append(Interval(inter.end, self.end))
        return tuple(pieces)

    def split_at(self, point: int) -> Tuple["Interval", "Interval"]:
        """Split into ``[start, point)`` and ``[point, end)``.

        ``point`` must lie within ``[start, end]``.
        """
        if not (self.start <= point <= self.end):
            raise IntervalError(
                f"split point {point} outside [{self.start}, {self.end}]"
            )
        return Interval(self.start, point), Interval(point, self.end)

    def split_even(self, parts: int, min_length: int = 1) -> Tuple["Interval", ...]:
        """Split into at most ``parts`` near-equal contiguous pieces.

        No piece is shorter than ``min_length`` (the paper's minimal subjob
        size); if the interval is too small for ``parts`` pieces, fewer are
        returned.  The pieces tile the interval exactly.

        >>> [i.length for i in Interval(0, 10).split_even(3)]
        [4, 3, 3]
        """
        if parts < 1:
            raise IntervalError(f"parts must be >= 1, got {parts}")
        if min_length < 1:
            raise IntervalError(f"min_length must be >= 1, got {min_length}")
        if self.empty:
            return ()
        parts = min(parts, max(1, self.length // min_length))
        base, extra = divmod(self.length, parts)
        pieces: List[Interval] = []
        cursor = self.start
        for index in range(parts):
            size = base + (1 if index < extra else 0)
            pieces.append(Interval(cursor, cursor + size))
            cursor += size
        assert cursor == self.end
        return tuple(pieces)

    def take_left(self, count: int) -> "Interval":
        """The leftmost ``count`` events (clamped to the interval)."""
        if count >= self.end - self.start:
            return self
        if count < 0:
            count = 0
        return Interval(self.start, self.start + count)

    def drop_left(self, count: int) -> "Interval":
        """Everything but the leftmost ``count`` events (clamped)."""
        count = max(0, min(count, self.length))
        return Interval(self.start + count, self.end)

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.start, self.end))

    def __repr__(self) -> str:
        return f"Interval({self.start}, {self.end})"


IntervalLike = Union[Interval, "IntervalSet"]


class IntervalSet:
    """A canonical set of disjoint, non-adjacent, sorted intervals.

    Supports the set algebra the schedulers rely on::

        cached   = node_cache.extents()            # IntervalSet
        hit      = cached & job.segment            # intersection
        miss     = IntervalSet([job.segment]) - hit
        coverage = hit.measure() / job.segment.length

    Internally two parallel lists of starts and ends allow binary-searched
    point and range queries.
    """

    __slots__ = ("_starts", "_ends")

    def __init__(self, intervals: Iterable[Interval] = ()) -> None:
        self._starts: List[int] = []
        self._ends: List[int] = []
        for interval in intervals:
            self.add(interval)

    # -- construction ------------------------------------------------------

    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[int, int]]) -> "IntervalSet":
        return cls(Interval(a, b) for a, b in pairs)

    def copy(self) -> "IntervalSet":
        clone = IntervalSet.__new__(IntervalSet)
        clone._starts = list(self._starts)
        clone._ends = list(self._ends)
        return clone

    # -- queries ---------------------------------------------------------------

    def __len__(self) -> int:
        """Number of disjoint intervals (not the number of points)."""
        return len(self._starts)

    def __bool__(self) -> bool:
        return bool(self._starts)

    def __iter__(self) -> Iterator[Interval]:
        for start, end in zip(self._starts, self._ends):
            yield Interval(start, end)

    def intervals(self) -> Tuple[Interval, ...]:
        return tuple(self)

    def pairs(self) -> List[Tuple[int, int]]:
        return list(zip(self._starts, self._ends))

    def measure(self) -> int:
        """Total number of points covered."""
        return sum(e - s for s, e in zip(self._starts, self._ends))

    def contains_point(self, point: int) -> bool:
        index = bisect_right(self._starts, point) - 1
        return index >= 0 and point < self._ends[index]

    def covers(self, interval: Interval) -> bool:
        """True if every point of ``interval`` is in the set."""
        if interval.empty:
            return True
        index = bisect_right(self._starts, interval.start) - 1
        return index >= 0 and interval.end <= self._ends[index]

    def intersects(self, interval: Interval) -> bool:
        """True if the set shares at least one point with ``interval``."""
        if interval.empty or not self._starts:
            return False
        index = bisect_right(self._starts, interval.start) - 1
        if index >= 0 and interval.start < self._ends[index]:
            return True
        nxt = index + 1
        return nxt < len(self._starts) and self._starts[nxt] < interval.end

    def intersection_with(self, interval: Interval) -> "IntervalSet":
        """The sub-set of points also inside ``interval``."""
        result = IntervalSet()
        if interval.empty or not self._starts:
            return result
        lo = bisect_right(self._ends, interval.start)
        hi = bisect_left(self._starts, interval.end)
        for i in range(lo, hi):
            start = max(self._starts[i], interval.start)
            end = min(self._ends[i], interval.end)
            if start < end:
                result._starts.append(start)
                result._ends.append(end)
        return result

    def overlap_measure(self, interval: Interval) -> int:
        """Number of points of ``interval`` covered by the set (no alloc of
        a result set; this is the hot query of cache-aware policies)."""
        if interval.empty or not self._starts:
            return 0
        lo = bisect_right(self._ends, interval.start)
        hi = bisect_left(self._starts, interval.end)
        total = 0
        for i in range(lo, hi):
            start = self._starts[i] if self._starts[i] > interval.start else interval.start
            end = self._ends[i] if self._ends[i] < interval.end else interval.end
            if start < end:
                total += end - start
        return total

    def boundary_points(self, interval: Interval) -> List[int]:
        """Interior boundaries of the set clipped to ``interval``.

        These are the natural split points turning ``interval`` into pieces
        that are each fully-cached or fully-uncached.
        """
        points: List[int] = []
        if interval.empty or not self._starts:
            return points
        lo = bisect_right(self._ends, interval.start)
        hi = bisect_left(self._starts, interval.end)
        for i in range(lo, hi):
            for point in (self._starts[i], self._ends[i]):
                if interval.start < point < interval.end:
                    points.append(point)
        return points

    # -- mutation ----------------------------------------------------------------

    def add(self, interval: Interval) -> None:
        """Insert ``interval``, merging with any overlapping/adjacent runs."""
        if interval.empty:
            return
        starts, ends = self._starts, self._ends
        # All runs with end < interval.start stay untouched on the left.
        lo = bisect_left(ends, interval.start)
        # All runs with start > interval.end stay untouched on the right.
        hi = bisect_right(starts, interval.end)
        new_start = interval.start
        new_end = interval.end
        if lo < hi:
            new_start = min(new_start, starts[lo])
            new_end = max(new_end, ends[hi - 1])
        starts[lo:hi] = [new_start]
        ends[lo:hi] = [new_end]

    def remove(self, interval: Interval) -> None:
        """Delete every point of ``interval`` from the set."""
        if interval.empty or not self._starts:
            return
        starts, ends = self._starts, self._ends
        lo = bisect_right(ends, interval.start)
        hi = bisect_left(starts, interval.end)
        if lo >= hi:
            return
        replacement_starts: List[int] = []
        replacement_ends: List[int] = []
        if starts[lo] < interval.start:
            replacement_starts.append(starts[lo])
            replacement_ends.append(interval.start)
        if ends[hi - 1] > interval.end:
            replacement_starts.append(interval.end)
            replacement_ends.append(ends[hi - 1])
        starts[lo:hi] = replacement_starts
        ends[lo:hi] = replacement_ends

    def clear(self) -> None:
        self._starts.clear()
        self._ends.clear()

    # -- operators ----------------------------------------------------------------

    def _coerce(self, other: IntervalLike) -> "IntervalSet":
        if isinstance(other, Interval):
            out = IntervalSet()
            out.add(other)
            return out
        return other

    def union(self, other: IntervalLike) -> "IntervalSet":
        result = self.copy()
        for interval in self._coerce(other):
            result.add(interval)
        return result

    def difference(self, other: IntervalLike) -> "IntervalSet":
        result = self.copy()
        for interval in self._coerce(other):
            result.remove(interval)
        return result

    def intersection(self, other: IntervalLike) -> "IntervalSet":
        if isinstance(other, Interval):
            return self.intersection_with(other)
        result = IntervalSet()
        for interval in other:
            piece = self.intersection_with(interval)
            result._starts.extend(piece._starts)
            result._ends.extend(piece._ends)
        return result

    __or__ = union
    __sub__ = difference
    __and__ = intersection

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._starts == other._starts and self._ends == other._ends

    def __hash__(self) -> int:
        return hash((tuple(self._starts), tuple(self._ends)))

    def __repr__(self) -> str:
        inner = ", ".join(f"[{s},{e})" for s, e in zip(self._starts, self._ends))
        return f"IntervalSet({inner})"

    # -- validation ---------------------------------------------------------------

    def check_invariants(self) -> None:
        """Assert canonical form; used by tests and debug builds."""
        previous_end = None
        for start, end in zip(self._starts, self._ends):
            if end <= start:
                raise IntervalError(f"empty run [{start},{end}) stored")
            if previous_end is not None and start <= previous_end:
                raise IntervalError(
                    f"runs not disjoint/merged: ...,{previous_end}) then [{start},..."
                )
            previous_end = end


class PositionIndex:
    """Frozen offset→event-index lookup over an :class:`IntervalSet`.

    Snapshots the set's layout once and maps the ``k``-th covered point
    (0-based, in event order) to its event index by binary search over
    cumulative interval lengths — O(log intervals) per lookup instead of
    the O(intervals) linear scan, and vectorized for whole numpy batches
    via :meth:`positions_at`.  The workload generator draws millions of
    hotspot start positions from two fixed sets; this is that hot path.

    The index does **not** track later mutations of the source set —
    build it after the set is final (both users here are immutable after
    construction).

    >>> index = PositionIndex(IntervalSet.from_pairs([(0, 3), (10, 12)]))
    >>> [index.position_at(k) for k in range(index.measure)]
    [0, 1, 2, 10, 11]
    """

    __slots__ = ("_starts", "_cumulative", "_starts_arr", "_cumulative_arr", "measure")

    def __init__(self, source: IntervalSet) -> None:
        starts: List[int] = []
        cumulative: List[int] = [0]
        covered = 0
        for interval in source:
            starts.append(interval.start)
            covered += interval.length
            cumulative.append(covered)
        self._starts = starts
        self._cumulative = cumulative
        self._starts_arr = np.asarray(starts, dtype=np.int64)
        self._cumulative_arr = np.asarray(cumulative, dtype=np.int64)
        #: Total number of covered points (== ``source.measure()``).
        self.measure = covered

    def position_at(self, offset: int) -> int:
        """Event index of the ``offset``-th covered point."""
        if not 0 <= offset < self.measure:
            raise IntervalError(
                f"offset {offset} outside [0, {self.measure})"
            )
        index = bisect_right(self._cumulative, offset) - 1
        return self._starts[index] + (offset - self._cumulative[index])

    def positions_at(self, offsets: Sequence[int]) -> np.ndarray:
        """Vectorized :meth:`position_at` over a whole batch of offsets."""
        batch = np.asarray(offsets, dtype=np.int64)
        if batch.size == 0:
            return batch
        if int(batch.min()) < 0 or int(batch.max()) >= self.measure:
            raise IntervalError(
                f"offsets outside [0, {self.measure}): {offsets!r}"
            )
        index = np.searchsorted(self._cumulative_arr, batch, side="right") - 1
        return self._starts_arr[index] + (batch - self._cumulative_arr[index])


def complement(universe: Interval, covered: IntervalLike) -> IntervalSet:
    """Points of ``universe`` not covered by ``covered``.

    >>> complement(Interval(0, 10), IntervalSet([Interval(2, 4)])).pairs()
    [(0, 2), (4, 10)]
    """
    base = IntervalSet([universe])
    if isinstance(covered, Interval):
        other = IntervalSet([covered])
    else:
        other = covered
    return base.difference(other)


def partition_by(interval: Interval, cut_points: Sequence[int]) -> List[Interval]:
    """Split ``interval`` at each in-range cut point (sorted, deduplicated).

    >>> partition_by(Interval(0, 10), [4, 7, 7, 20])
    [Interval(0, 4), Interval(4, 7), Interval(7, 10)]
    """
    points = sorted({p for p in cut_points if interval.start < p < interval.end})
    pieces: List[Interval] = []
    cursor = interval.start
    for point in points:
        pieces.append(Interval(cursor, point))
        cursor = point
    pieces.append(Interval(cursor, interval.end))
    return [p for p in pieces if not p.empty]
