"""The shared tertiary mass-storage system (Castor stand-in).

The paper models Castor as a constant-rate source: tape latency is hidden
by Castor's own disk arrays, and each node sees a dedicated 1 MB/s stream
(§2.4).  There is therefore no contention to simulate — this class is an
accounting substrate: it meters how much data each policy pulled from
tertiary storage, which is exactly the quantity the delayed scheduler is
designed to minimise ("load the data from tertiary storage only once
during a given period").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..obs.hooks import NULL_BUS, HookBus, kinds
from .dataspace import DataSpace
from .intervals import Interval, IntervalSet


@dataclass
class TertiaryStats:
    """Aggregate counters of tertiary-storage traffic."""

    events_read: int = 0
    read_requests: int = 0
    #: Events read for the first time (never pulled from tape before).
    distinct_events_read: int = 0
    events_read_per_node: Dict[int, int] = field(default_factory=dict)

    @property
    def unique_fraction(self) -> float:
        """Fraction of tape traffic that was first-time reads (1.0 = no
        event re-fetched; the inverse of the redundancy factor)."""
        if self.events_read == 0:
            return 0.0
        return self.distinct_events_read / self.events_read


class TertiaryStorage:
    """Accounting model of the Castor tertiary storage system.

    Tracks total and per-node event reads plus the set of distinct events
    ever read, so experiments can report the redundancy factor
    ``events_read / distinct_events_read`` (1.0 = every event loaded at
    most once, the optimum of §5).
    """

    def __init__(self, dataspace: DataSpace, obs: HookBus = NULL_BUS) -> None:
        self.dataspace = dataspace
        self.stats = TertiaryStats()
        self.obs = obs
        self._distinct = IntervalSet()

    def read(
        self, node_id: int, interval: Interval, now: Optional[float] = None
    ) -> None:
        """Record that ``node_id`` streamed ``interval`` from tertiary
        storage (``now`` timestamps the trace event when tracing)."""
        if interval.empty:
            return
        self.dataspace.validate_segment(interval)
        self.stats.events_read += interval.length
        self.stats.read_requests += 1
        per_node = self.stats.events_read_per_node
        per_node[node_id] = per_node.get(node_id, 0) + interval.length
        fresh = interval.length - self._distinct.overlap_measure(interval)
        self.stats.distinct_events_read += fresh
        self._distinct.add(interval)
        if self.obs.enabled and now is not None:
            self.obs.emit(
                now,
                kinds.TAPE_READ,
                "tertiary",
                node=node_id,
                events=interval.length,
                start=interval.start,
                end=interval.end,
            )

    @property
    def distinct_events_read(self) -> int:
        """Number of distinct events ever pulled from tape.

        Maintained incrementally in :meth:`read` (mirrored on
        ``stats.distinct_events_read``); equals ``self._distinct.measure()``.
        """
        return self.stats.distinct_events_read

    @property
    def redundancy_factor(self) -> float:
        """Total reads / distinct reads (1.0 is the §5 optimum; large
        values mean the same data was re-fetched many times)."""
        distinct = self.distinct_events_read
        if distinct == 0:
            return 1.0
        return self.stats.events_read / distinct

    def __repr__(self) -> str:
        return (
            f"TertiaryStorage(read={self.stats.events_read} events, "
            f"distinct={self.distinct_events_read}, "
            f"redundancy={self.redundancy_factor:.2f})"
        )
