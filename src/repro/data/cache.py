"""Per-node LRU disk caches at data-segment (extent) granularity.

The paper's cache-aware policies all rest on one primitive: "which parts of
this job's data segment are currently on node *n*'s disk?".
:class:`LRUSegmentCache` answers that in O(log n) and maintains
least-recently-used eviction over variable-length extents, as prescribed in
Table 2 of the paper ("when needing new disk cache space, it deallocates
the least recently used cached segments").

Extents are half-open event ranges.  Touching or inserting a sub-range of
an existing extent splits it, so LRU timestamps stay exact at arbitrary
granularity.  Adjacent extents with identical timestamps are coalesced to
bound fragmentation (chunked streaming would otherwise grow the extent
count linearly with simulated time).
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, bisect_right, insort
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..core.errors import CacheError, InvariantViolation
from ..obs.hooks import NULL_BUS, HookBus, kinds
from .intervals import Interval, IntervalSet


@dataclass
class CacheStats:
    """Lifetime counters of one cache instance (events, not bytes)."""

    inserted_events: int = 0
    evicted_events: int = 0
    touched_events: int = 0
    dropped_events: int = 0  # explicitly invalidated

    def copy(self) -> "CacheStats":
        return CacheStats(
            self.inserted_events,
            self.evicted_events,
            self.touched_events,
            self.dropped_events,
        )


class _Extent:
    __slots__ = ("interval", "last_access", "alive")

    def __init__(self, interval: Interval, last_access: float) -> None:
        self.interval = interval
        self.last_access = last_access
        self.alive = True


class LRUSegmentCache:
    """An LRU cache over event extents with a fixed capacity in events.

    >>> cache = LRUSegmentCache(capacity_events=100)
    >>> cache.insert(Interval(0, 60), now=1.0)
    >>> cache.insert(Interval(200, 260), now=2.0)
    >>> cache.used_events
    100
    >>> cache.coverage.pairs()  # 20 LRU events of [0,60) were evicted
    [(20, 60), (200, 260)]
    """

    def __init__(
        self,
        capacity_events: int,
        obs: HookBus = NULL_BUS,
        owner_id: int = -1,
    ) -> None:
        if capacity_events < 0:
            raise CacheError(f"capacity must be >= 0, got {capacity_events}")
        self.capacity_events = int(capacity_events)
        self.obs = obs
        self.owner_id = owner_id
        self._starts: List[int] = []  # sorted extent start points
        self._by_start: Dict[int, _Extent] = {}  # start -> extent
        #: Lazy-deletion LRU heap of ``(last_access, tiebreak, extent)``;
        #: ``tiebreak`` is unique, so the extent itself is never compared.
        self._lru_heap: List[Tuple[float, int, _Extent]] = []
        self._used = 0
        self._tiebreak = 0
        self.stats = CacheStats()

    # -- queries ---------------------------------------------------------------

    @property
    def used_events(self) -> int:
        """Number of events currently cached."""
        return self._used

    @property
    def free_events(self) -> int:
        return self.capacity_events - self._used

    @property
    def coverage(self) -> IntervalSet:
        """The cached point set (merged extents, timestamps ignored)."""
        merged = IntervalSet()
        for start in self._starts:
            merged.add(self._by_start[start].interval)
        return merged

    def cached_parts(self, interval: Interval) -> IntervalSet:
        """Sub-ranges of ``interval`` present in the cache."""
        result = IntervalSet()
        query_start = interval.start
        query_end = interval.end
        starts = result._starts
        ends = result._ends
        # Overlapping extents arrive start-sorted and disjoint, so the
        # clipped pieces can be appended directly, merging abutting runs
        # (extents may touch when their LRU stamps differ) to keep the
        # set canonical.
        for extent in self._overlapping(interval):
            piece = extent.interval
            start = piece.start if piece.start > query_start else query_start
            end = piece.end if piece.end < query_end else query_end
            if start >= end:
                continue
            if ends and start <= ends[-1]:
                if end > ends[-1]:
                    ends[-1] = end
            else:
                starts.append(start)
                ends.append(end)
        return result

    def cached_events(self, interval: Interval) -> int:
        """Number of events of ``interval`` present in the cache."""
        total = 0
        for extent in self._overlapping(interval):
            total += extent.interval.intersection(interval).length
        return total

    def covers(self, interval: Interval) -> bool:
        """True if every event of ``interval`` is cached."""
        return self.cached_events(interval) == interval.length

    def contains_point(self, point: int) -> bool:
        index = bisect_right(self._starts, point) - 1
        if index < 0:
            return False
        return self._by_start[self._starts[index]].interval.contains(point)

    def cached_prefix(self, interval: Interval) -> Interval:
        """The longest cached run starting exactly at ``interval.start``.

        Returns an empty interval when the first event is not cached.  This
        is the hot query of chunked execution: a node processing left to
        right asks "how far can I read from disk before hitting a miss?".
        """
        if interval.empty:
            return Interval(interval.start, interval.start)
        starts = self._starts
        by_start = self._by_start
        n = len(starts)
        end = interval.start
        index = bisect_right(starts, end) - 1
        # Walk right over contiguous extents (they may abut without merging
        # when their timestamps differ).
        while True:
            found = None
            if 0 <= index < n:
                candidate = by_start[starts[index]].interval
                if candidate.start <= end < candidate.end:
                    found = candidate
            if found is None and index + 1 < n:
                candidate = by_start[starts[index + 1]].interval
                if candidate.start == end:
                    found = candidate
                    index += 1
            if found is None:
                break
            end = found.end
            if end >= interval.end:
                end = interval.end
                break
        return Interval(interval.start, min(end, interval.end))

    def uncached_prefix(self, interval: Interval) -> Interval:
        """The longest run starting at ``interval.start`` with no cached
        event."""
        start = interval.start
        if interval.empty:
            return Interval(start, start)
        starts = self._starts
        # Only the first overlapping extent bounds the prefix: either an
        # extent covering ``start`` (empty prefix) or the first extent
        # beginning inside the interval.
        index = bisect_right(starts, start) - 1
        if index >= 0 and self._by_start[starts[index]].interval.end > start:
            return Interval(start, start)
        index += 1
        if index < len(starts) and starts[index] < interval.end:
            return Interval(start, starts[index])
        return Interval(start, interval.end)

    def extent_count(self) -> int:
        return len(self._by_start)

    def __iter__(self) -> Iterator[Tuple[Interval, float]]:
        for start in self._starts:
            extent = self._by_start[start]
            yield extent.interval, extent.last_access

    # -- mutation ----------------------------------------------------------------

    def insert(self, interval: Interval, now: float) -> None:
        """Cache ``interval`` with access time ``now``, evicting LRU data.

        Intervals longer than the capacity keep only their rightmost
        ``capacity`` events — exactly what sequential streaming through a
        full cache leaves behind.
        """
        if interval.empty or self.capacity_events == 0:
            return
        if interval.end - interval.start > self.capacity_events:
            interval = Interval(interval.end - self.capacity_events, interval.end)
        self.stats.inserted_events += interval.end - interval.start
        self._carve(interval)
        self._add_extent(interval, now)
        evicted_before = self.stats.evicted_events
        self._evict_to_fit(protect=interval)
        if self.obs.enabled:
            evicted = self.stats.evicted_events - evicted_before
            if evicted:
                self.obs.emit(
                    now,
                    kinds.CACHE_EVICT,
                    "cache",
                    node=self.owner_id,
                    events=evicted,
                )

    def touch(self, interval: Interval, now: float) -> None:
        """Refresh the LRU timestamp of the cached parts of ``interval``."""
        parts = self.cached_parts(interval)
        for part in parts:
            self.stats.touched_events += part.length
            self._carve(part)
            self._add_extent(part, now)

    def invalidate(self, interval: Interval) -> int:
        """Drop any cached events inside ``interval``; returns count."""
        before = self._used
        self._carve(interval)
        dropped = before - self._used
        self.stats.dropped_events += dropped
        return dropped

    def clear(self) -> None:
        self._starts.clear()
        self._by_start.clear()
        self._lru_heap.clear()
        self._used = 0

    # -- internals ---------------------------------------------------------------

    def _overlapping(self, interval: Interval) -> List[_Extent]:
        """Extents intersecting ``interval``, in start order."""
        if interval.empty or not self._starts:
            return []
        starts = self._starts
        by_start = self._by_start
        result: List[_Extent] = []
        query_start = interval.start
        index = bisect_right(starts, query_start) - 1
        if index < 0:
            index = 0
        end = interval.end
        n = len(starts)
        while index < n:
            start = starts[index]
            if start >= end:
                break
            extent = by_start[start]
            if extent.interval.end > query_start:
                result.append(extent)
            index += 1
        return result

    def _carve(self, interval: Interval) -> None:
        """Remove every cached event inside ``interval`` (splitting
        boundary extents, preserving their timestamps)."""
        for extent in self._overlapping(interval):
            self._drop_extent(extent)
            for piece in extent.interval.subtract(interval):
                self._add_extent(piece, extent.last_access, count_stats=False)

    def _add_extent(self, interval: Interval, last_access: float, count_stats: bool = True) -> None:
        if interval.empty:
            return
        # Coalesce with an identically-stamped neighbour on each side.
        interval = self._try_merge(interval, last_access)
        extent = _Extent(interval, last_access)
        insort(self._starts, interval.start)
        self._by_start[interval.start] = extent
        tiebreak = self._tiebreak + 1
        self._tiebreak = tiebreak
        heapq.heappush(self._lru_heap, (last_access, tiebreak, extent))
        self._used += interval.end - interval.start

    def _try_merge(self, interval: Interval, last_access: float) -> Interval:
        """Absorb abutting extents with the same timestamp into
        ``interval`` (removing them); returns the widened interval."""
        changed = True
        while changed:
            changed = False
            index = bisect_left(self._starts, interval.end)
            if index < len(self._starts) and self._starts[index] == interval.end:
                right = self._by_start[self._starts[index]]
                # Stamps are copied values (never arithmetic results), so
                # exact equality is the correct coalescing criterion here.
                if right.last_access == last_access:  # simlint: disable=SIM003
                    self._drop_extent(right)
                    interval = Interval(interval.start, right.interval.end)
                    changed = True
            index = bisect_left(self._starts, interval.start) - 1
            if index >= 0:
                left = self._by_start[self._starts[index]]
                # Same as above: copied stamps, exact equality intended.
                if left.interval.end == interval.start and left.last_access == last_access:  # simlint: disable=SIM003
                    self._drop_extent(left)
                    interval = Interval(left.interval.start, interval.end)
                    changed = True
        return interval

    def _drop_extent(self, extent: _Extent) -> None:
        start = extent.interval.start
        del self._by_start[start]
        index = bisect_left(self._starts, start)
        assert self._starts[index] == start
        del self._starts[index]
        extent.alive = False
        interval = extent.interval
        self._used -= interval.end - interval.start

    def _evict_to_fit(self, protect: Interval) -> None:
        """Evict LRU extents until within capacity, never touching the
        freshly inserted ``protect`` range."""
        stash: List[Tuple[float, int, _Extent]] = []
        while self._used > self.capacity_events:
            if not self._lru_heap:
                raise CacheError("cache accounting corrupt: over capacity with empty LRU")
            entry = heapq.heappop(self._lru_heap)
            extent = entry[2]
            if not extent.alive:
                continue  # stale heap entry (lazy deletion)
            if extent.interval.overlaps(protect):
                stash.append(entry)
                continue
            excess = self._used - self.capacity_events
            if extent.interval.length > excess:
                # Partial eviction: keep the rightmost part (the part a
                # sequential reader touched last).
                keep = Interval(extent.interval.start + excess, extent.interval.end)
                stamp = extent.last_access
                self._drop_extent(extent)
                self.stats.evicted_events += excess
                self._add_extent(keep, stamp, count_stats=False)
            else:
                self.stats.evicted_events += extent.interval.length
                self._drop_extent(extent)
        for entry in stash:
            heapq.heappush(self._lru_heap, entry)

    # -- validation ---------------------------------------------------------------

    def check_invariants(self) -> None:
        """Assert internal consistency (tests / debug builds)."""
        if self._used > self.capacity_events:
            raise CacheError(f"used {self._used} > capacity {self.capacity_events}")
        total = 0
        previous_end = None
        for start in self._starts:
            extent = self._by_start[start]
            if extent.interval.start != start:
                raise CacheError("start index out of sync")
            if previous_end is not None and extent.interval.start < previous_end:
                raise CacheError("extents overlap")
            previous_end = extent.interval.end
            total += extent.interval.length
        if total != self._used:
            raise CacheError(f"used counter {self._used} != measured {total}")

    def validate(self) -> None:
        """Deep sim-sanitizer check: event accounting conservation, extent
        index consistency and LRU structure validity.

        Raises :class:`InvariantViolation` with a descriptive message.
        O(extents + heap) — called from the simulator's periodic probe in
        ``--check-invariants`` mode, never from the hot path.
        """
        who = f"cache(node {self.owner_id})"
        if self._used > self.capacity_events:
            raise InvariantViolation(
                f"{who}: accounting over capacity "
                f"({self._used} > {self.capacity_events} events)"
            )
        if self._used < 0:
            raise InvariantViolation(f"{who}: negative used counter {self._used}")
        if len(self._starts) != len(self._by_start):
            raise InvariantViolation(
                f"{who}: extent indexes out of sync "
                f"(starts={len(self._starts)}, extents={len(self._by_start)})"
            )
        total = 0
        previous_end: Optional[int] = None
        for start in self._starts:
            extent = self._by_start.get(start)
            if extent is None:
                raise InvariantViolation(
                    f"{who}: start index {start} has no backing extent"
                )
            if extent.interval.start != start:
                raise InvariantViolation(
                    f"{who}: extent {extent.interval} filed under start {start}"
                )
            if not extent.alive:
                raise InvariantViolation(
                    f"{who}: dead extent {extent.interval} still indexed"
                )
            if previous_end is not None and extent.interval.start < previous_end:
                raise InvariantViolation(
                    f"{who}: extents overlap at {extent.interval.start} "
                    f"(previous extent ends at {previous_end})"
                )
            previous_end = extent.interval.end
            total += extent.interval.length
        if total != self._used:
            raise InvariantViolation(
                f"{who}: event accounting not conserved — used counter says "
                f"{self._used} but extents measure {total}"
            )
        # LRU validity: every live extent must be reachable by eviction,
        # with the heap stamp matching its access time, and the lazy heap
        # must still satisfy the binary-heap ordering property.
        stamped: Dict[int, float] = {}
        for entry_index, entry in enumerate(self._lru_heap):
            for child_index in (2 * entry_index + 1, 2 * entry_index + 2):
                if (
                    child_index < len(self._lru_heap)
                    and self._lru_heap[child_index][:2] < entry[:2]
                ):
                    raise InvariantViolation(
                        f"{who}: LRU heap order violated at index {entry_index}"
                    )
            stamped.setdefault(id(entry[2]), entry[0])
        for extent in self._by_start.values():
            stamp = stamped.get(id(extent))
            if stamp is None:
                raise InvariantViolation(
                    f"{who}: live extent {extent.interval} missing from the "
                    "LRU heap (unreachable by eviction)"
                )
            if not (stamp == extent.last_access):  # simlint: disable=SIM003
                # Exact match intended: the heap entry is a copy of the
                # extent's stamp, never the result of arithmetic.
                raise InvariantViolation(
                    f"{who}: LRU stamp {stamp} != extent access time "
                    f"{extent.last_access} for {extent.interval}"
                )

    def __repr__(self) -> str:
        return (
            f"LRUSegmentCache(used={self._used}/{self.capacity_events} events, "
            f"extents={len(self._by_start)})"
        )
