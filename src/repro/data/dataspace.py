"""The global event data space.

The paper models a 2 TB data space of 600 KB particle-collision events.
:class:`DataSpace` owns the event-index ↔ byte conversions and the bounds
every segment must respect.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import ConfigurationError
from ..core import units
from .intervals import Interval


@dataclass(frozen=True)
class DataSpace:
    """A linear space of equally-sized collision events.

    >>> space = DataSpace.from_bytes(units.TB * 2, 600 * units.KB)
    >>> space.total_events
    3333333
    >>> space.events_to_bytes(1)
    600000
    """

    total_events: int
    event_bytes: int

    def __post_init__(self) -> None:
        if self.total_events <= 0:
            raise ConfigurationError(f"total_events must be > 0, got {self.total_events}")
        if self.event_bytes <= 0:
            raise ConfigurationError(f"event_bytes must be > 0, got {self.event_bytes}")

    @classmethod
    def from_bytes(cls, total_bytes: int, event_bytes: int) -> "DataSpace":
        """Build a space holding as many whole events as fit in
        ``total_bytes``."""
        if event_bytes <= 0:
            raise ConfigurationError(f"event_bytes must be > 0, got {event_bytes}")
        return cls(total_events=int(total_bytes // event_bytes), event_bytes=int(event_bytes))

    # -- conversions ---------------------------------------------------------

    @property
    def total_bytes(self) -> int:
        return self.total_events * self.event_bytes

    def events_to_bytes(self, events: int) -> int:
        return int(events) * self.event_bytes

    def bytes_to_events(self, nbytes: float) -> int:
        """Whole events fitting in ``nbytes`` (floor)."""
        return int(nbytes // self.event_bytes)

    # -- bounds -----------------------------------------------------------------

    @property
    def universe(self) -> Interval:
        """The full space as an interval ``[0, total_events)``."""
        return Interval(0, self.total_events)

    def clamp(self, interval: Interval) -> Interval:
        """Clip an interval to the space bounds."""
        return interval.intersection(self.universe)

    def validate_segment(self, interval: Interval) -> Interval:
        """Raise if ``interval`` leaves the space; return it otherwise."""
        if interval.start < 0 or interval.end > self.total_events:
            raise ConfigurationError(
                f"segment {interval} outside data space [0, {self.total_events})"
            )
        return interval

    def __repr__(self) -> str:
        return (
            f"DataSpace({self.total_events} events x "
            f"{units.fmt_size(self.event_bytes)} = {units.fmt_size(self.total_bytes)})"
        )
