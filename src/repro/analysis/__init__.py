"""Analysis tools: closed-form bounds, queueing theory, histograms,
report rendering."""

from .batchmeans import BatchMeansEstimate, batch_means, speedup_ci, waiting_time_ci
from .capacity import CapacityResult, capacity_by_policy, find_max_sustained_load
from .complexity import CallbackProfile, ComplexityReport, profile_policy
from .fairness import (
    FairnessReport,
    fairness_report,
    gini,
    jain_index,
    overtake_fraction,
)
from .histogram import Histogram, HistogramBin, histogram, log_bin_edges, waiting_time_histogram
from .plots import ascii_plot
from .queueing import (
    QueueingPrediction,
    erlang_c,
    merlang_wait,
    mgc_wait_allen_cunneen,
    mmc_wait,
)
from .tables import format_histogram, format_series_table, format_table
from .theory import TheoreticalLimits, theoretical_limits

__all__ = [
    "BatchMeansEstimate",
    "batch_means",
    "waiting_time_ci",
    "speedup_ci",
    "ComplexityReport",
    "CallbackProfile",
    "profile_policy",
    "CapacityResult",
    "find_max_sustained_load",
    "capacity_by_policy",
    "FairnessReport",
    "fairness_report",
    "jain_index",
    "gini",
    "overtake_fraction",
    "TheoreticalLimits",
    "theoretical_limits",
    "erlang_c",
    "mmc_wait",
    "mgc_wait_allen_cunneen",
    "merlang_wait",
    "QueueingPrediction",
    "Histogram",
    "HistogramBin",
    "histogram",
    "log_bin_edges",
    "waiting_time_histogram",
    "format_table",
    "format_series_table",
    "format_histogram",
    "ascii_plot",
]
