"""Scheduler time/space complexity instrumentation.

The paper defers this analysis: "Due to space limitations, the time and
space complexity analysis of the proposed scheduling policies will be
developed in a subsequent paper" (footnote 1).  This module provides the
measurement side of that missing study:

* **time**: wall-clock cost of every policy callback (arrival, subjob
  end, job end), aggregated per notification kind;
* **space**: peak and mean sizes of the policy's queue structures, the
  number of live subjobs, and the cache extent counts —

as functions of cluster size and offered load, via the ``complexity``
experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.clock import wall_clock
from ..sched.base import SchedulerPolicy
from ..sim.config import SimulationConfig
from ..sim.simulator import Simulation, SimulationResult
from ..workload.jobs import JobRequest, SubjobState


@dataclass
class CallbackProfile:
    """Wall-clock samples of one policy callback kind."""

    calls: int = 0
    total_seconds: float = 0.0
    max_seconds: float = 0.0

    def add(self, seconds: float) -> None:
        self.calls += 1
        self.total_seconds += seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.calls if self.calls else float("nan")


@dataclass
class SpaceSample:
    """One probe of the scheduler's data-structure sizes."""

    time: float
    live_subjobs: int
    queued_subjobs: int
    cache_extents: int


@dataclass
class ComplexityReport:
    """Scheduler-cost measurements of one instrumented run."""

    policy: str
    n_nodes: int
    load_per_hour: float
    profiles: Dict[str, CallbackProfile]
    space: List[SpaceSample]
    result: Optional[SimulationResult] = None

    @property
    def scheduler_seconds_total(self) -> float:
        return sum(p.total_seconds for p in self.profiles.values())

    @property
    def scheduler_seconds_per_job(self) -> float:
        jobs = self.result.jobs_arrived if self.result else 0
        return self.scheduler_seconds_total / jobs if jobs else float("nan")

    def peak_queued_subjobs(self) -> int:
        return max((s.queued_subjobs for s in self.space), default=0)

    def mean_queued_subjobs(self) -> float:
        if not self.space:
            return float("nan")
        return float(np.mean([s.queued_subjobs for s in self.space]))

    def peak_cache_extents(self) -> int:
        return max((s.cache_extents for s in self.space), default=0)


class _InstrumentedPolicy:
    """Transparent wrapper timing every policy notification."""

    def __init__(self, policy: SchedulerPolicy, report: ComplexityReport) -> None:
        self._policy = policy
        self._report = report

    def __getattr__(self, name):
        return getattr(self._policy, name)

    def _timed(self, kind: str, method, *args) -> None:
        started = wall_clock()
        try:
            method(*args)
        finally:
            self._report.profiles[kind].add(wall_clock() - started)

    def on_job_arrival(self, job) -> None:
        self._timed("on_job_arrival", self._policy.on_job_arrival, job)

    def on_subjob_end(self, node, subjob) -> None:
        self._timed("on_subjob_end", self._policy.on_subjob_end, node, subjob)

    def on_job_end(self, node, job, subjob) -> None:
        self._timed("on_job_end", self._policy.on_job_end, node, job, subjob)


def profile_policy(
    config: SimulationConfig,
    policy: str,
    trace: Optional[Sequence[JobRequest]] = None,
    space_probe_interval: Optional[float] = None,
    **policy_params,
) -> ComplexityReport:
    """Run one simulation with an instrumented policy and collect its
    time/space complexity profile."""
    from ..sched.base import create_policy

    inner = create_policy(policy, **policy_params)
    report = ComplexityReport(
        policy=policy,
        n_nodes=config.n_nodes,
        load_per_hour=config.arrival_rate_per_hour,
        profiles={
            kind: CallbackProfile()
            for kind in ("on_job_arrival", "on_subjob_end", "on_job_end")
        },
        space=[],
    )
    instrumented = _InstrumentedPolicy(inner, report)
    simulation = Simulation(config, instrumented, trace=trace)  # type: ignore[arg-type]

    interval = space_probe_interval or config.probe_interval

    def probe_space() -> None:
        live = 0
        queued = 0
        for job in simulation.jobs.values():
            for subjob in job.subjobs:
                if subjob.state in (SubjobState.PENDING, SubjobState.SUSPENDED):
                    queued += 1
                    live += 1
                elif subjob.state is SubjobState.RUNNING:
                    live += 1
        extents = sum(n.cache.extent_count() for n in simulation.cluster)
        report.space.append(
            SpaceSample(
                time=simulation.engine.now,
                live_subjobs=live,
                queued_subjobs=queued,
                cache_extents=extents,
            )
        )
        if simulation.engine.now + interval <= config.duration:
            simulation.engine.call_after(interval, probe_space)

    simulation.engine.call_at(0.0, probe_space)
    report.result = simulation.run()
    return report
