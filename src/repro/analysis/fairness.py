"""Fairness metrics over per-job records.

The paper argues about fairness qualitatively ("Jobs are started in a
first come first served order in order to ensure a fair treatment", the
out-of-order §4.1 fairness valve, delayed scheduling's "no fairness").
This module quantifies it, so policies can be compared on a fairness axis
next to the throughput/latency axes:

* **Jain's fairness index** over job slowdowns (1.0 = perfectly even);
* **slowdown** (sojourn time / single-node no-cache reference) mean and
  tail percentiles — the classic stretch metric;
* **Gini coefficient** of waiting times (0 = equal waits);
* **overtake count** — how many later-arriving jobs finished first, the
  most direct measure of out-of-order-ness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..sim.metrics import JobRecord


@dataclass(frozen=True)
class FairnessReport:
    """Fairness statistics of one simulation's measured jobs."""

    n_jobs: int
    jain_index_slowdown: float
    mean_slowdown: float
    median_slowdown: float
    p95_slowdown: float
    max_slowdown: float
    gini_waiting: float
    overtake_fraction: float
    start_overtake_fraction: float

    def as_rows(self) -> List[List[object]]:
        return [
            ["jobs", self.n_jobs],
            ["Jain index (slowdown)", f"{self.jain_index_slowdown:.3f}"],
            ["mean slowdown", f"{self.mean_slowdown:.3f}"],
            ["median slowdown", f"{self.median_slowdown:.3f}"],
            ["p95 slowdown", f"{self.p95_slowdown:.3f}"],
            ["max slowdown", f"{self.max_slowdown:.3f}"],
            ["Gini (waiting)", f"{self.gini_waiting:.3f}"],
            ["overtaken arrivals (completion)", f"{self.overtake_fraction:.1%}"],
            ["overtaken arrivals (start)", f"{self.start_overtake_fraction:.1%}"],
        ]


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index: (Σx)² / (n · Σx²); 1.0 = all equal.

    >>> jain_index([1.0, 1.0, 1.0])
    1.0
    >>> round(jain_index([1.0, 0.0, 0.0]), 3)
    0.333
    """
    data = np.asarray(values, dtype=float)
    if data.size == 0:
        return math.nan
    square_sum = float(np.sum(data) ** 2)
    sum_square = float(data.size * np.sum(data**2))
    if sum_square == 0.0:
        return 1.0  # all zero: perfectly equal
    return square_sum / sum_square

def gini(values: Sequence[float]) -> float:
    """Gini coefficient (0 = perfect equality, →1 = one job takes all).

    >>> gini([1.0, 1.0, 1.0, 1.0])
    0.0
    """
    data = np.sort(np.asarray(values, dtype=float))
    if data.size == 0:
        return math.nan
    total = float(np.sum(data))
    if total == 0.0:
        return 0.0
    n = data.size
    ranks = np.arange(1, n + 1)
    return float((2.0 * np.sum(ranks * data)) / (n * total) - (n + 1) / n)


def overtake_fraction(records: Sequence[JobRecord]) -> float:
    """Fraction of job pairs (i earlier than j) *completed* out of order.

    Normalised Kendall-tau-style distance between the arrival order and
    the completion order: 0.0 for strictly FCFS completion, 0.5 for an
    uncorrelated order.  O(n log n) via merge-sort inversion counting.
    Note this mixes scheduling reordering with service-time variance (a
    short job legitimately finishing before an earlier long one); for the
    pure scheduling signal use :func:`start_overtake_fraction`.
    """
    return _order_distance(records, lambda r: r.completion)


def start_overtake_fraction(records: Sequence[JobRecord]) -> float:
    """Fraction of job pairs whose *processing start* order inverts the
    arrival order — exactly the reordering the paper's out-of-order and
    delayed policies introduce (a strict FCFS starter scores 0.0)."""
    return _order_distance(records, lambda r: r.first_start)


def _order_distance(records: Sequence[JobRecord], key) -> float:
    ordered = sorted(records, key=lambda r: r.arrival_time)
    values = [key(r) for r in ordered]
    n = len(values)
    if n < 2:
        return 0.0
    inversions = _count_inversions(values)
    return inversions / (n * (n - 1) / 2)


def _count_inversions(values: List[float]) -> int:
    """Number of pairs (i < j) with values[i] > values[j]."""

    def sort(chunk: List[float]) -> tuple:
        if len(chunk) <= 1:
            return chunk, 0
        mid = len(chunk) // 2
        left, left_inv = sort(chunk[:mid])
        right, right_inv = sort(chunk[mid:])
        merged: List[float] = []
        inversions = left_inv + right_inv
        i = j = 0
        while i < len(left) and j < len(right):
            if left[i] <= right[j]:
                merged.append(left[i])
                i += 1
            else:
                merged.append(right[j])
                j += 1
                inversions += len(left) - i
        merged.extend(left[i:])
        merged.extend(right[j:])
        return merged, inversions

    return sort(list(values))[1]


def fairness_report(records: Sequence[JobRecord]) -> FairnessReport:
    """Compute all fairness statistics over the given records."""
    slowdowns = np.array(
        [r.sojourn_time / r.reference_time for r in records if r.reference_time > 0],
        dtype=float,
    )
    waits = np.array([r.waiting_time for r in records], dtype=float)
    if slowdowns.size == 0:
        nan = math.nan
        return FairnessReport(0, nan, nan, nan, nan, nan, nan, nan, nan)
    return FairnessReport(
        n_jobs=len(records),
        jain_index_slowdown=jain_index(slowdowns),
        mean_slowdown=float(np.mean(slowdowns)),
        median_slowdown=float(np.median(slowdowns)),
        p95_slowdown=float(np.percentile(slowdowns, 95)),
        max_slowdown=float(np.max(slowdowns)),
        gini_waiting=gini(waits),
        overtake_fraction=overtake_fraction(records),
        start_overtake_fraction=start_overtake_fraction(records),
    )
