"""Log-binned histograms for waiting-time distributions (Fig 4).

The paper's Fig 4 plots job counts over logarithmic time bins spanning
one hour to two days.  :func:`waiting_time_histogram` reproduces exactly
that view from a result's per-job records.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..core import units


@dataclass(frozen=True)
class HistogramBin:
    low: float
    high: float
    count: int

    @property
    def label(self) -> str:
        return f"{units.fmt_duration(self.low)}–{units.fmt_duration(self.high)}"


@dataclass(frozen=True)
class Histogram:
    bins: Tuple[HistogramBin, ...]
    below: int  # samples under the first edge
    above: int  # samples at/over the last edge

    @property
    def total(self) -> int:
        return self.below + self.above + sum(b.count for b in self.bins)

    def counts(self) -> List[int]:
        return [b.count for b in self.bins]

    def rows(self) -> List[Tuple[str, int]]:
        return [(b.label, b.count) for b in self.bins]


def log_bin_edges(low: float, high: float, bins_per_decade: int = 4) -> np.ndarray:
    """Logarithmically spaced bin edges covering [low, high]."""
    if low <= 0 or high <= low:
        raise ValueError(f"need 0 < low < high, got {low}, {high}")
    n_bins = max(1, int(round(math.log10(high / low) * bins_per_decade)))
    return np.logspace(math.log10(low), math.log10(high), n_bins + 1)


def histogram(values: Sequence[float], edges: Sequence[float]) -> Histogram:
    """Count values into the given edges, tracking under/overflow."""
    edges_arr = np.asarray(edges, dtype=float)
    data = np.asarray(values, dtype=float)
    below = int(np.sum(data < edges_arr[0]))
    above = int(np.sum(data >= edges_arr[-1]))
    counts, _ = np.histogram(data, bins=edges_arr)
    bins = tuple(
        HistogramBin(low=float(lo), high=float(hi), count=int(c))
        for lo, hi, c in zip(edges_arr[:-1], edges_arr[1:], counts)
    )
    return Histogram(bins=bins, below=below, above=above)


def waiting_time_histogram(
    waiting_times: Sequence[float],
    low: float = units.HOUR,
    high: float = 2 * units.DAY,
    bins_per_decade: int = 6,
) -> Histogram:
    """Fig 4's histogram: job counts per log-spaced waiting-time bin
    between one hour and two days (jobs waiting under an hour land in
    ``below`` — the cached fast path)."""
    return histogram(waiting_times, log_bin_edges(low, high, bins_per_decade))
