"""ASCII tables and figure-series rendering for the benchmark harness.

Every bench prints the rows/series of the paper figure it regenerates;
these helpers keep that output aligned and consistent.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from ..core import units


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned monospace table."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if math.isnan(value):
            return "n/a"
        if math.isinf(value):
            return "inf"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.3g}"
    return str(value)


def format_series_table(
    series: Dict[str, List[Tuple[float, float]]],
    metric_name: str,
    time_metric: bool = False,
    title: str = "",
) -> str:
    """Render figure series ({label: [(load, value), ...]}) as one table
    with a load column and one column per label — the paper-figure data
    in text form.  ``time_metric=True`` formats values as durations."""
    loads = sorted({load for points in series.values() for load, _ in points})
    labels = list(series)
    lookup = {
        label: {load: value for load, value in points}
        for label, points in series.items()
    }
    rows: List[List[object]] = []
    for load in loads:
        row: List[object] = [f"{load:.2f}"]
        for label in labels:
            value = lookup[label].get(load)
            if value is None or (isinstance(value, float) and math.isnan(value)):
                row.append("—")  # overloaded: curve cut, as in the paper
            elif time_metric:
                row.append(units.fmt_duration(value))
            else:
                row.append(value)
        rows.append(row)
    headers = [f"load (jobs/h) \\ {metric_name}"] + labels
    return format_table(headers, rows, title=title)


def format_histogram(rows: Sequence[Tuple[str, int]], title: str = "") -> str:
    """Render (label, count) rows with proportional bars."""
    peak = max((count for _, count in rows), default=1)
    lines: List[str] = []
    if title:
        lines.append(title)
    width = max((len(label) for label, _ in rows), default=0)
    for label, count in rows:
        bar = "#" * (0 if peak == 0 else round(40 * count / peak))
        lines.append(f"{label.rjust(width)}  {count:6d} {bar}")
    return "\n".join(lines)
