"""Batch-means confidence intervals for steady-state simulation output.

A single long run's job records are autocorrelated (a burst delays many
jobs together), so the naive sample variance understates the error of the
mean.  The classic remedy — the method of batch means — groups the
ordered observations into ``n_batches`` contiguous batches and treats the
batch averages as (approximately) independent samples.  This is the
within-run counterpart of :mod:`repro.sim.replications` (across-run CIs).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..sim.replications import t_critical_95


@dataclass(frozen=True)
class BatchMeansEstimate:
    """Steady-state mean with a batch-means 95 % confidence interval."""

    mean: float
    half_width: float
    n_batches: int
    batch_size: int
    lag1_autocorrelation: float  # of the batch means; ~0 when batches work

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def __str__(self) -> str:
        return (
            f"{self.mean:.4g} ± {self.half_width:.2g} "
            f"({self.n_batches} batches x {self.batch_size})"
        )


def lag1_autocorrelation(values: np.ndarray) -> float:
    """Lag-1 autocorrelation coefficient (0 for white noise)."""
    if values.size < 3:
        return math.nan
    centred = values - values.mean()
    denominator = float(np.sum(centred**2))
    if denominator == 0.0:
        return 0.0
    return float(np.sum(centred[:-1] * centred[1:]) / denominator)


def batch_means(
    observations: Sequence[float], n_batches: int = 20
) -> BatchMeansEstimate:
    """Batch-means estimate of the steady-state mean of ``observations``
    (in temporal order).

    Observations that do not fill a whole batch are dropped from the end,
    as is conventional.  Requires at least 2 observations per batch and
    at least 2 batches.
    """
    if n_batches < 2:
        raise ValueError(f"need at least 2 batches, got {n_batches}")
    data = np.asarray(list(observations), dtype=float)
    if data.size < 2 * n_batches:
        raise ValueError(
            f"need at least {2 * n_batches} observations for "
            f"{n_batches} batches, got {data.size}"
        )
    batch_size = data.size // n_batches
    used = data[: batch_size * n_batches]
    means = used.reshape(n_batches, batch_size).mean(axis=1)
    grand_mean = float(means.mean())
    std_error = float(means.std(ddof=1)) / math.sqrt(n_batches)
    return BatchMeansEstimate(
        mean=grand_mean,
        half_width=t_critical_95(n_batches - 1) * std_error,
        n_batches=n_batches,
        batch_size=batch_size,
        lag1_autocorrelation=lag1_autocorrelation(means),
    )


def waiting_time_ci(
    records, n_batches: int = 20
) -> BatchMeansEstimate:
    """Batch-means CI of the mean waiting time from job records (ordered
    by arrival, as the collector produces them)."""
    ordered = sorted(records, key=lambda r: r.arrival_time)
    return batch_means([r.waiting_time for r in ordered], n_batches)


def speedup_ci(records, n_batches: int = 20) -> BatchMeansEstimate:
    """Batch-means CI of the mean speedup from job records."""
    ordered = sorted(records, key=lambda r: r.arrival_time)
    return batch_means([r.speedup for r in ordered], n_batches)
