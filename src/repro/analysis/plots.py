"""Minimal ASCII line plots: figure-shaped terminal output.

The paper's figures are (load → speedup) and (load → waiting time)
curves; :func:`ascii_plot` renders the same series as a character grid so
a terminal run of the harness shows the curve *shapes* (who wins, where
curves cut off) without any plotting dependency.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

_MARKERS = "ox+*#@%&"


def _scale(
    value: float, low: float, high: float, size: int, log: bool
) -> Optional[int]:
    if math.isnan(value):
        return None
    if log:
        if value <= 0 or low <= 0:
            return None
        position = (math.log10(value) - math.log10(low)) / (
            math.log10(high) - math.log10(low)
        )
    else:
        position = (value - low) / (high - low)
    if position < 0 or position > 1:
        return None
    return int(round(position * (size - 1)))


def ascii_plot(
    series: Dict[str, List[Tuple[float, float]]],
    width: int = 64,
    height: int = 18,
    log_y: bool = False,
    title: str = "",
    x_label: str = "load (jobs/hour)",
    y_label: str = "",
) -> str:
    """Render ``{label: [(x, y), ...]}`` as an ASCII scatter/line chart."""
    points = [
        (x, y)
        for curve in series.values()
        for x, y in curve
        if not (math.isnan(x) or math.isnan(y))
    ]
    if not points:
        return f"{title}\n(no steady-state points)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    if x_high == x_low:
        x_high = x_low + 1.0
    if y_high == y_low:
        y_high = y_low + 1.0
    if log_y:
        y_low = max(y_low, 1e-9)

    grid = [[" "] * width for _ in range(height)]
    legend: List[str] = []
    for index, (label, curve) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        legend.append(f"{marker} = {label}")
        for x, y in curve:
            col = _scale(x, x_low, x_high, width, log=False)
            row = _scale(y, y_low, y_high, height, log=log_y)
            if col is not None and row is not None:
                grid[height - 1 - row][col] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    top = _fmt_axis(y_high)
    bottom = _fmt_axis(y_low)
    margin = max(len(top), len(bottom)) + 1
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top.rjust(margin)
        elif row_index == height - 1:
            prefix = bottom.rjust(margin)
        else:
            prefix = " " * margin
        lines.append(f"{prefix}|{''.join(row)}")
    lines.append(" " * margin + "+" + "-" * width)
    x_axis = f"{_fmt_axis(x_low)}{' ' * max(1, width - 12)}{_fmt_axis(x_high)}"
    lines.append(" " * (margin + 1) + x_axis)
    caption = x_label if not y_label else f"{x_label} vs {y_label}"
    lines.append(" " * (margin + 1) + caption)
    lines.extend("  " + item for item in legend)
    return "\n".join(lines)


def _fmt_axis(value: float) -> str:
    if value == 0:
        return "0"
    magnitude = abs(value)
    if magnitude >= 10000 or magnitude < 0.01:
        return f"{value:.1e}"
    return f"{value:.3g}"
