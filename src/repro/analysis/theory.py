"""Closed-form quantities the paper derives in §3.4 and §5.

These are the anchors the simulation is validated against:

* single-job single-node no-cache processing time ≈ 32 000 s (9 h);
* maximal caching speedup factor "slightly larger than 3" (3.08);
* maximal overall speedup ≈ 30 (10 nodes × caching factor);
* maximal theoretically sustainable load = 3.46 jobs/hour.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import units
from ..sim.config import SimulationConfig


@dataclass(frozen=True)
class TheoreticalLimits:
    """The paper's closed-form performance bounds for a configuration."""

    single_job_single_node_time: float
    caching_speedup: float
    max_parallel_speedup: float
    max_overall_speedup: float
    max_load_per_hour: float
    farm_max_load_per_hour: float

    def as_dict(self) -> dict:
        return {
            "single_job_single_node_time_s": self.single_job_single_node_time,
            "caching_speedup": self.caching_speedup,
            "max_parallel_speedup": self.max_parallel_speedup,
            "max_overall_speedup": self.max_overall_speedup,
            "max_load_per_hour": self.max_load_per_hour,
            "farm_max_load_per_hour": self.farm_max_load_per_hour,
        }


def theoretical_limits(config: SimulationConfig) -> TheoreticalLimits:
    """Compute the §3.4 bounds for ``config``.

    >>> from repro.sim.config import paper_config
    >>> limits = theoretical_limits(paper_config())
    >>> round(limits.single_job_single_node_time)
    32000
    >>> round(limits.max_load_per_hour, 2)
    3.46
    >>> round(limits.max_overall_speedup)
    31
    """
    model = config.cost_model()
    single = config.mean_job_events * model.uncached_event_time
    caching = model.caching_speedup
    parallel = float(config.n_nodes)
    # All CPUs at 100 %, data always from disk caches (§3.4): each node
    # completes one job's events every mean_job × cached_time seconds.
    max_load = (
        config.n_nodes
        * units.HOUR
        / (config.mean_job_events * model.cached_event_time)
    )
    # The farm ceiling: one whole job per node, all data from tertiary.
    farm_max = (
        config.n_nodes
        * units.HOUR
        / (config.mean_job_events * model.uncached_event_time)
    )
    return TheoreticalLimits(
        single_job_single_node_time=single,
        caching_speedup=caching,
        max_parallel_speedup=parallel,
        max_overall_speedup=parallel * caching,
        max_load_per_hour=max_load,
        farm_max_load_per_hour=farm_max,
    )
