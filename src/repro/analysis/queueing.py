"""Analytic queueing models for the processing-farm baseline.

§3.1 of the paper: "A mathematical model can be established which
describes the cluster behavior as a special case of a M/Er/m queuing
system."  We implement the standard tools —

* Erlang-C (M/M/m waiting probability and mean wait), and
* the Allen–Cunneen approximation for M/G/m (exact for the M/M/m case),
  which for Erlang-k service (squared CV = 1/k) gives
  ``Wq(M/Ek/m) ≈ Wq(M/M/m) × (1 + 1/k) / 2``

— so the simulated farm can be validated against theory (see
``tests/test_queueing.py`` and ``benchmarks/bench_queueing.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.errors import ConfigurationError


def erlang_c(servers: int, offered_load: float) -> float:
    """Erlang-C formula: probability an arriving job must wait.

    ``offered_load`` is λ·E[S] in erlangs; must be < servers for a
    steady-state answer.

    >>> round(erlang_c(1, 0.5), 3)
    0.5
    """
    if servers < 1:
        raise ConfigurationError(f"servers must be >= 1, got {servers}")
    if offered_load < 0:
        raise ConfigurationError(f"offered load must be >= 0, got {offered_load}")
    if offered_load >= servers:
        return 1.0
    # Stable recurrence for the Erlang-B blocking probability…
    blocking = 1.0
    for k in range(1, servers + 1):
        blocking = (offered_load * blocking) / (k + offered_load * blocking)
    # …converted to Erlang-C.
    rho = offered_load / servers
    return blocking / (1.0 - rho + rho * blocking)


@dataclass(frozen=True)
class QueueingPrediction:
    """Mean steady-state quantities predicted for a multi-server queue."""

    servers: int
    arrival_rate: float  # jobs/second
    mean_service: float  # seconds
    utilization: float
    wait_probability: float
    mean_wait: float  # seconds in queue
    mean_sojourn: float  # queue + service

    @property
    def stable(self) -> bool:
        return self.utilization < 1.0


def mmc_wait(servers: int, arrival_rate: float, mean_service: float) -> QueueingPrediction:
    """Mean waiting time of an M/M/m queue (exponential service)."""
    if arrival_rate <= 0 or mean_service <= 0:
        raise ConfigurationError("arrival rate and service time must be > 0")
    offered = arrival_rate * mean_service
    rho = offered / servers
    if rho >= 1.0:
        return QueueingPrediction(
            servers, arrival_rate, mean_service, rho, 1.0, math.inf, math.inf
        )
    wait_probability = erlang_c(servers, offered)
    mean_wait = wait_probability * mean_service / (servers * (1.0 - rho))
    return QueueingPrediction(
        servers=servers,
        arrival_rate=arrival_rate,
        mean_service=mean_service,
        utilization=rho,
        wait_probability=wait_probability,
        mean_wait=mean_wait,
        mean_sojourn=mean_wait + mean_service,
    )


def mgc_wait_allen_cunneen(
    servers: int,
    arrival_rate: float,
    mean_service: float,
    service_scv: float,
    arrival_scv: float = 1.0,
) -> QueueingPrediction:
    """Allen–Cunneen approximation for G/G/m mean waiting time.

    ``service_scv``/``arrival_scv`` are squared coefficients of variation
    (Poisson arrivals → 1; Erlang-k service → 1/k).  Exact for M/M/m.
    """
    if service_scv < 0 or arrival_scv < 0:
        raise ConfigurationError("squared CVs must be >= 0")
    base = mmc_wait(servers, arrival_rate, mean_service)
    if not base.stable:
        return base
    factor = (arrival_scv + service_scv) / 2.0
    mean_wait = base.mean_wait * factor
    return QueueingPrediction(
        servers=servers,
        arrival_rate=arrival_rate,
        mean_service=mean_service,
        utilization=base.utilization,
        wait_probability=base.wait_probability,
        mean_wait=mean_wait,
        mean_sojourn=mean_wait + mean_service,
    )


def merlang_wait(
    servers: int,
    arrival_rate: float,
    mean_service: float,
    erlang_shape: int = 4,
) -> QueueingPrediction:
    """M/Er/m mean waiting time (Allen–Cunneen with SCV = 1/k).

    This is the analytic model of the paper's processing-farm baseline:
    ``servers`` nodes, Poisson arrivals, Erlang-``k`` job service times.
    """
    if erlang_shape < 1:
        raise ConfigurationError(f"erlang shape must be >= 1, got {erlang_shape}")
    return mgc_wait_allen_cunneen(
        servers=servers,
        arrival_rate=arrival_rate,
        mean_service=mean_service,
        service_scv=1.0 / erlang_shape,
    )
