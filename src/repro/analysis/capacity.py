"""Capacity search: the maximal sustainable load of a policy.

The paper reads saturation points off fixed load grids ("the curves are
cut at high loads...").  :func:`find_max_sustained_load` finds the same
boundary by bisection — fewer simulations and finer resolution than a
grid — which is what the calibration of the adaptive policy's delay
table really needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..sim.config import SimulationConfig
from ..sim.simulator import run_simulation


@dataclass(frozen=True)
class CapacityResult:
    """Outcome of a capacity bisection."""

    max_sustained_load: float  # highest load observed steady
    min_overloaded_load: float  # lowest load observed overloaded
    evaluations: Tuple[Tuple[float, bool], ...]  # (load, steady) pairs

    @property
    def resolution(self) -> float:
        return self.min_overloaded_load - self.max_sustained_load

    @property
    def midpoint(self) -> float:
        return 0.5 * (self.max_sustained_load + self.min_overloaded_load)


def find_max_sustained_load(
    config: SimulationConfig,
    policy: str,
    low: float,
    high: float,
    tolerance: float = 0.1,
    max_evaluations: int = 12,
    **policy_params,
) -> CapacityResult:
    """Bisect the steady/overloaded boundary of ``policy`` in
    ``[low, high]`` jobs/hour.

    ``low`` should be comfortably sustainable and ``high`` comfortably
    not; if either probe disagrees the bracket is widened to the probe
    outcome (low overloaded → returns immediately with the evidence).
    Saturation is monotone in offered load for all the paper's policies,
    which is what bisection needs.
    """
    if low <= 0 or high <= low:
        raise ValueError(f"need 0 < low < high, got {low}, {high}")
    if tolerance <= 0:
        raise ValueError(f"tolerance must be > 0, got {tolerance}")

    evaluations: List[Tuple[float, bool]] = []

    def steady_at(load: float) -> bool:
        result = run_simulation(
            config.with_(arrival_rate_per_hour=load), policy, **policy_params
        )
        steady = not result.overload.overloaded
        evaluations.append((load, steady))
        return steady

    if not steady_at(low):
        return CapacityResult(0.0, low, tuple(evaluations))
    if steady_at(high):
        return CapacityResult(high, float("inf"), tuple(evaluations))

    best_steady, worst_over = low, high
    while (
        worst_over - best_steady > tolerance
        and len(evaluations) < max_evaluations
    ):
        midpoint = 0.5 * (best_steady + worst_over)
        if steady_at(midpoint):
            best_steady = midpoint
        else:
            worst_over = midpoint
    return CapacityResult(best_steady, worst_over, tuple(evaluations))


def capacity_by_policy(
    config: SimulationConfig,
    policies: Dict[str, dict],
    low: float,
    high: float,
    tolerance: float = 0.1,
) -> Dict[str, CapacityResult]:
    """Bisect several policies over the same bracket."""
    return {
        name: find_max_sustained_load(
            config, name, low, high, tolerance=tolerance, **params
        )
        for name, params in policies.items()
    }
