"""Command-line interface: ``python -m repro`` / ``repro``.

Subcommands::

    repro policies                      # list scheduling policies
    repro experiments                   # list registered experiments
    repro limits                        # print the paper's theoretical anchors
    repro run fig3 --scale quick        # regenerate a figure
    repro run-all --scale full -o report.md
    repro sweep fig3 -o fig3.json       # sweep -> summary-JSON v7

Sweep-shaped commands (run, run-all, sweep, export, replicate,
calibrate) share the execution-layer knobs: ``--jobs/-j`` (worker
processes; ``$REPRO_JOBS`` sets the default), and where results are
cacheable ``--no-cache``, ``--cache-dir`` and ``--resume``.
    repro simulate --policy out-of-order --load 1.5 --days 20
    repro trace --policy out-of-order --days 7 -o run   # traced run
    repro calibrate --stripe 5000       # measure the adaptive delay table
    repro lint                          # simlint static analysis
    repro bench --quick --baseline-dir .   # benchmark + regression check
"""

from __future__ import annotations

import argparse
import sys
from typing import TYPE_CHECKING, List, Optional

if TYPE_CHECKING:  # pragma: no cover
    from .exec.executor import Executor

from . import __version__
from .analysis.tables import format_table
from .analysis.theory import theoretical_limits
from .core import units
from .experiments import (
    Scale,
    available_experiments,
    calibrate_delay_table,
    get_experiment,
    render_markdown_report,
    run_experiment,
    summarize_table,
)
from .sched import available_policies, policy_parameters, unknown_policy_message
from .sim.config import FaultConfig, NetFaultConfig, paper_config
from .sim.simulator import run_simulation


def _add_scale(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        choices=[s.value for s in Scale],
        default=Scale.QUICK.value,
        help="sweep size: smoke (seconds), quick (minutes), full (paper-faithful)",
    )


def _add_exec_args(parser: argparse.ArgumentParser, cache: bool = True) -> None:
    """The uniform execution-layer knobs (``repro.exec``)."""
    group = parser.add_argument_group("execution layer (repro.exec)")
    group.add_argument(
        "--jobs",
        "-j",
        "--processes",
        dest="jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes (default: auto — serial for tiny sweeps, "
        "one per CPU otherwise; $REPRO_JOBS overrides the default; 1 = serial)",
    )
    if not cache:
        return
    group.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the content-addressed result cache (recompute every "
        "point even when .repro-cache/ already holds it)",
    )
    group.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="result cache location (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    group.add_argument(
        "--resume",
        action="store_true",
        help="resume an interrupted sweep from its checkpoint journal: "
        "run only the specs the journal does not mark complete",
    )
    group.add_argument(
        "--spec-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="kill a sweep point that produces no completion within this "
        "many wall seconds and record it as SpecError(kind='timeout') "
        "($REPRO_SPEC_TIMEOUT sets the default)",
    )


def _executor_from_args(
    args: argparse.Namespace, journal_name: Optional[str] = None
) -> "Executor":
    """Build the executor a sweep-shaped command asked for."""
    from .exec import Executor, RetryPolicy, make_cache

    resume = bool(getattr(args, "resume", False))
    no_cache = bool(getattr(args, "no_cache", True))
    if resume and no_cache:
        raise SystemExit("repro: --resume requires the result cache (drop --no-cache)")
    cache = None
    journal_path = None
    if not no_cache:
        cache = make_cache(getattr(args, "cache_dir", None))
        if journal_name is not None:
            journal_path = cache.journal_path(journal_name)
    return Executor(
        jobs=args.jobs,
        cache=cache,
        retry=RetryPolicy(max_attempts=2),
        journal_path=journal_path,
        resume=resume,
        spec_timeout=getattr(args, "spec_timeout", None),
    )


def _print_exec_stats(sweep) -> None:
    if sweep.stats is not None:
        print(sweep.stats.brief())


def _add_fault_args(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("fault injection (repro.faults)")
    group.add_argument(
        "--faults",
        action="store_true",
        help="inject node crashes from seeded exponential MTBF/MTTR processes",
    )
    group.add_argument(
        "--mtbf",
        default="1d",
        metavar="DUR",
        help="mean time between failures per node, e.g. 6h, 1d, 1w (default 1d)",
    )
    group.add_argument(
        "--mttr",
        default="2h",
        metavar="DUR",
        help="mean time to repair per node (default 2h)",
    )
    group.add_argument(
        "--stall-interval",
        default=None,
        metavar="DUR",
        help="also inject cluster-wide tertiary stalls with this mean gap "
        "(off unless given)",
    )
    group.add_argument(
        "--wipe-cache",
        action="store_true",
        help="a crash also loses the node's disk cache contents",
    )
    net = parser.add_argument_group("control-plane faults (repro.faults.net)")
    net.add_argument(
        "--net-loss",
        type=float,
        default=0.0,
        metavar="P",
        help="per-message control-plane loss probability in [0, 1) "
        "(default 0: perfect network, zero-overhead pass-through)",
    )
    net.add_argument(
        "--net-dup",
        type=float,
        default=0.0,
        metavar="P",
        help="per-message duplication probability in [0, 1)",
    )
    net.add_argument(
        "--net-delay",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="mean exponential one-way message delay in simulated seconds",
    )
    net.add_argument(
        "--net-reorder",
        type=float,
        default=0.0,
        metavar="P",
        help="probability a message copy is held back past later traffic",
    )


def _add_topology_arg(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("hierarchical topology (repro.topo)")
    group.add_argument(
        "--topology",
        default=None,
        metavar="FILE|PRESET",
        help="run on a hierarchical data grid: a preset name (flat, "
        "depth2, depth3 — optionally NAME:PLACEMENT, e.g. "
        "depth3:lru-rack) or a TopologySpec JSON file; default is the "
        "paper's flat cluster",
    )


def _resolve_topology(value: str, prog: str):
    """Parse a ``--topology`` value: preset[:placement] or a JSON file.

    Exits with status 2 (argparse convention) on unknown presets, bad
    placements, unreadable files and invalid specs — all carrying the
    spec validator's actionable message.
    """
    import json
    import os

    from .core.errors import ConfigurationError
    from .topo.spec import TOPOLOGY_PRESETS, TopologySpec, topology_preset

    def _die(message: str) -> "SystemExit":
        print(f"{prog}: --topology: {message}", file=sys.stderr)
        return SystemExit(2)

    looks_like_file = (
        os.sep in value or value.endswith(".json") or os.path.exists(value)
    )
    if not looks_like_file:
        name, _, placement = value.partition(":")
        if name in TOPOLOGY_PRESETS:
            try:
                return topology_preset(name, placement or "none")
            except ConfigurationError as error:
                raise _die(str(error)) from None
        raise _die(
            f"unknown preset {name!r} and no such file; presets: "
            f"{', '.join(sorted(TOPOLOGY_PRESETS))}"
        )
    try:
        with open(value, encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as error:
        raise _die(f"cannot read {value!r}: {error}") from None
    except json.JSONDecodeError as error:
        raise _die(f"{value!r} is not valid JSON: {error}") from None
    if not isinstance(payload, dict):
        raise _die(f"{value!r} must contain a JSON object")
    try:
        return TopologySpec.from_dict(payload)
    except (ConfigurationError, TypeError) as error:
        raise _die(f"{value!r}: {error}") from None


def _topology_from_args(args: argparse.Namespace, prog: str):
    if getattr(args, "topology", None) is None:
        return None
    return _resolve_topology(args.topology, prog)


def _net_config_from_args(args: argparse.Namespace) -> Optional[NetFaultConfig]:
    """The control-plane fault model the flags describe (None = perfect)."""
    net = NetFaultConfig(
        loss=args.net_loss,
        duplicate=args.net_dup,
        delay_mean=args.net_delay,
        reorder=args.net_reorder,
    )
    return net if net.enabled else None


def _fault_config_from_args(args: argparse.Namespace) -> Optional[FaultConfig]:
    if not args.faults:
        if args.wipe_cache or args.stall_interval is not None:
            raise SystemExit(
                "repro: --wipe-cache/--stall-interval require --faults"
            )
        return None
    return FaultConfig(
        node_mtbf=units.parse_duration(args.mtbf),
        node_mttr=units.parse_duration(args.mttr),
        wipe_cache_on_failure=args.wipe_cache,
        stall_interval=(
            units.parse_duration(args.stall_interval)
            if args.stall_interval is not None
            else 0.0
        ),
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of Ponce & Hersch (IPDPS 2004): data-"
        "intensive analysis-job scheduling on PC clusters.",
        epilog=(
            "fault injection: simulate/trace accept --faults --mtbf DUR "
            "--mttr DUR [--stall-interval DUR] [--wipe-cache], plus "
            "--net-loss/--net-dup/--net-delay/--net-reorder for "
            "control-plane message faults (repro.faults.net).  "
            "performance: `repro bench` times the kernel hot paths, "
            "every policy end-to-end and the 10/100/1000-node scale tier "
            "(peak RSS included), writes BENCH_kernel.json / "
            "BENCH_policies.json / BENCH_scale.json, and with "
            "--baseline-dir fails on throughput or memory regressions "
            "(see docs/PERFORMANCE.md and docs/SCALING.md)."
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("policies", help="list available scheduling policies")
    sub.add_parser("experiments", help="list registered experiments")
    sub.add_parser("limits", help="print the theoretical performance anchors")

    run_parser = sub.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", help="experiment id (e.g. fig3)")
    _add_scale(run_parser)
    _add_exec_args(run_parser)
    run_parser.add_argument("--output", "-o", default=None, help="write report here")

    all_parser = sub.add_parser("run-all", help="run every experiment")
    _add_scale(all_parser)
    _add_exec_args(all_parser)
    all_parser.add_argument("--only", nargs="*", default=None, help="subset of ids")
    all_parser.add_argument("--output", "-o", default=None)

    sweep_parser = sub.add_parser(
        "sweep",
        help="run an experiment's raw sweep and emit its summary JSON "
        "(schema v7; deterministic across --jobs, cache hits and --resume)",
    )
    sweep_parser.add_argument("experiment", help="experiment id (e.g. fig3)")
    _add_scale(sweep_parser)
    _add_exec_args(sweep_parser)
    sweep_parser.add_argument(
        "--output",
        "-o",
        default=None,
        help="write the sweep summary JSON here (default: stdout)",
    )

    sim_parser = sub.add_parser("simulate", help="run a single simulation")
    sim_parser.add_argument(
        "--policy",
        required=True,
        help="policy name (see `repro policies`; underscores are accepted)",
    )
    sim_parser.add_argument("--load", type=float, default=1.0, help="jobs/hour")
    sim_parser.add_argument("--days", type=float, default=20.0)
    sim_parser.add_argument("--cache-gb", type=float, default=100.0)
    sim_parser.add_argument("--nodes", type=int, default=10)
    sim_parser.add_argument("--seed", type=int, default=0)
    sim_parser.add_argument("--period", type=float, default=None, help="seconds")
    sim_parser.add_argument("--stripe", type=int, default=None, help="events")
    sim_parser.add_argument(
        "--grant-batch",
        type=int,
        default=None,
        help="decentral: max tasks per grant message",
    )
    sim_parser.add_argument(
        "--task-events",
        type=int,
        default=None,
        help="decentral: rule task size in events",
    )
    sim_parser.add_argument(
        "--check-invariants",
        action="store_true",
        help="run the sim-sanitizer: assert engine/cache/node/scheduler "
        "invariants during the run (identical metrics, slower)",
    )
    sim_parser.add_argument(
        "--dump-records", default=None, help="write per-job records CSV here"
    )
    sim_parser.add_argument(
        "--retain-records",
        action="store_true",
        help="keep every per-job record in memory instead of the default "
        "bounded retention (first 100k records, the rest summarised by "
        "the streaming metrics); implied by --dump-records",
    )
    sim_parser.add_argument(
        "--dump-json", default=None, help="write the result summary JSON here"
    )
    _add_topology_arg(sim_parser)
    _add_fault_args(sim_parser)

    trace_parser = sub.add_parser(
        "trace",
        help="run one traced simulation; export Chrome-trace JSON, counter "
        "CSV and an ASCII timeline",
    )
    trace_parser.add_argument(
        "--policy",
        required=True,
        help="policy name (see `repro policies`; underscores are accepted)",
    )
    trace_parser.add_argument("--load", type=float, default=1.0, help="jobs/hour")
    trace_parser.add_argument("--days", type=float, default=7.0)
    trace_parser.add_argument("--cache-gb", type=float, default=100.0)
    trace_parser.add_argument("--nodes", type=int, default=10)
    trace_parser.add_argument("--seed", type=int, default=0)
    trace_parser.add_argument("--period", type=float, default=None, help="seconds")
    trace_parser.add_argument("--stripe", type=int, default=None, help="events")
    trace_parser.add_argument(
        "--quick",
        action="store_true",
        help="use the reduced-scale test configuration instead of the "
        "paper's (runs in milliseconds)",
    )
    trace_parser.add_argument(
        "--out",
        "-o",
        default="trace",
        help="output prefix: writes PREFIX.trace.json and PREFIX.counters.csv",
    )
    trace_parser.add_argument(
        "--limit-events",
        type=int,
        default=1_000_000,
        metavar="N",
        help="safety cap on recorded trace events (keeps the first N)",
    )
    trace_parser.add_argument(
        "--sample-seconds",
        type=float,
        default=3600.0,
        help="counter time-series sampling interval (simulated seconds)",
    )
    trace_parser.add_argument(
        "--width", type=int, default=100, help="ASCII timeline width"
    )
    trace_parser.add_argument(
        "--no-ascii", action="store_true", help="skip the ASCII timeline"
    )
    _add_topology_arg(trace_parser)
    _add_fault_args(trace_parser)

    topo_parser = sub.add_parser(
        "topo",
        help="inspect hierarchical data-grid topologies (repro.topo)",
    )
    topo_sub = topo_parser.add_subparsers(dest="topo_command", required=True)
    topo_show = topo_sub.add_parser(
        "show",
        help="print a topology's tier tree, link rates and cache sizes",
    )
    topo_show.add_argument(
        "spec",
        help="preset name (flat, depth2, depth3 — optionally "
        "NAME:PLACEMENT, e.g. depth3:lru-rack) or a TopologySpec JSON file",
    )

    exp_parser = sub.add_parser(
        "export", help="run an experiment and write gnuplot .dat/.gp files"
    )
    exp_parser.add_argument("experiment", help="experiment id (e.g. fig3)")
    _add_scale(exp_parser)
    _add_exec_args(exp_parser)
    exp_parser.add_argument("--output", "-o", required=True, help="directory")

    rep_parser = sub.add_parser(
        "replicate", help="replicated runs with 95%% confidence intervals"
    )
    rep_parser.add_argument(
        "--policy",
        required=True,
        help="policy name (see `repro policies`; underscores are accepted)",
    )
    rep_parser.add_argument("--load", type=float, default=1.0, help="jobs/hour")
    rep_parser.add_argument("--days", type=float, default=16.0)
    rep_parser.add_argument("--cache-gb", type=float, default=100.0)
    rep_parser.add_argument("-n", "--replications", type=int, default=5)
    rep_parser.add_argument("--period", type=float, default=None, help="seconds")
    rep_parser.add_argument("--stripe", type=int, default=None, help="events")
    _add_exec_args(rep_parser, cache=False)

    cal_parser = sub.add_parser(
        "calibrate", help="measure the adaptive policy's delay table"
    )
    cal_parser.add_argument("--stripe", type=int, default=5000)
    cal_parser.add_argument("--days", type=float, default=30.0)
    _add_exec_args(cal_parser, cache=False)

    lint_parser = sub.add_parser(
        "lint",
        help="run simlint (determinism & invariant static analysis) over "
        "python sources; exit 1 on findings",
    )
    lint_parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files/directories to lint (default: src/repro)",
    )
    lint_parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="report format (json has a stable schema for CI)",
    )
    lint_parser.add_argument(
        "--select",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to check (default: all)",
    )
    lint_parser.add_argument(
        "--rules", action="store_true", help="print the rule catalogue and exit"
    )
    lint_parser.add_argument(
        "--flow",
        action="store_true",
        help="run the whole-program flow analysis (SIM101-SIM105) instead "
        "of the per-file rules",
    )
    lint_parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="flow-findings baseline JSON (default: .simlint-flow.json "
        "when it exists); new findings gate, grandfathered ones report",
    )
    lint_parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="with --flow: rewrite the baseline file from the current "
        "findings (justifications left as TODO) and exit 0",
    )

    bench_parser = sub.add_parser(
        "bench",
        help="benchmark the simulation kernel, policies and scale tier; "
        "write BENCH_*.json and optionally compare against a committed "
        "baseline",
    )
    bench_parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced sizes and repeats (seconds instead of minutes; "
        "skips the paper-scale figure-5 record)",
    )
    bench_parser.add_argument(
        "--profile",
        action="store_true",
        help="additionally run each benchmark under cProfile and attach "
        "the top hotspots to its JSON record",
    )
    bench_parser.add_argument(
        "--kind",
        choices=["kernel", "policies", "scale", "all"],
        default="all",
        help="which report(s) to produce: kernel micro-benchmarks, "
        "end-to-end policy runs, or the 10/100/1000-node scale tier "
        "with peak-RSS tracking (default: all)",
    )
    bench_parser.add_argument(
        "--out-dir",
        default=".",
        metavar="DIR",
        help="directory receiving the BENCH_<kind>.json report(s) "
        "(default: current directory)",
    )
    bench_parser.add_argument(
        "--baseline-dir",
        default=None,
        metavar="DIR",
        help="compare against the committed BENCH_*.json in DIR; exit 1 "
        "when any record's slowdown exceeds the threshold",
    )
    bench_parser.add_argument(
        "--threshold",
        type=float,
        default=None,
        metavar="FACTOR",
        help="tolerated slowdown factor for --baseline-dir (default 2.0)",
    )

    return parser


def _resolve_policy(name: str, prog: str) -> str:
    """Normalise a user-supplied policy name or die with a helpful error.

    Shared by simulate/replicate/trace so the unknown-policy message (and
    its did-you-mean suggestions) is identical everywhere.
    """
    resolved = name.replace("_", "-")
    if resolved not in available_policies():
        print(f"{prog}: {unknown_policy_message(name)}", file=sys.stderr)
        raise SystemExit(2)
    return resolved


def _cmd_policies() -> int:
    rows = []
    for name in available_policies():
        params = ", ".join(
            key if value == "required" else f"{key}={value!r}"
            for key, value in policy_parameters(name).items()
        )
        rows.append([name, params or "-"])
    print(
        format_table(
            ["policy", "tunable parameters (defaults)"],
            rows,
            title="Scheduling policies",
        )
    )
    return 0


def _cmd_experiments() -> int:
    rows = []
    for exp_id in available_experiments():
        experiment = get_experiment(exp_id)
        rows.append([exp_id, experiment.paper_ref, experiment.title])
    print(format_table(["id", "paper", "title"], rows))
    return 0


def _cmd_limits() -> int:
    limits = theoretical_limits(paper_config())
    rows = [[key, f"{value:.3f}"] for key, value in limits.as_dict().items()]
    print(format_table(["quantity", "value"], rows, title="Paper configuration anchors"))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    executor = _executor_from_args(
        args, journal_name=f"run-{args.experiment}-{args.scale}"
    )
    outcome = run_experiment(
        args.experiment,
        scale=Scale(args.scale),
        progress=True,
        executor=executor,
    )
    print(outcome.rendered)
    _print_exec_stats(outcome.sweep)
    if args.output:
        report = render_markdown_report([outcome], Scale(args.scale))
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report)
        print(f"\nreport written to {args.output}")
    return 1 if outcome.sweep.n_failed else 0


def _cmd_run_all(args: argparse.Namespace) -> int:
    # One executor (and checkpoint journal) per experiment, so --resume
    # restarts exactly the interrupted figure; the result cache is
    # shared across all of them by content fingerprint.
    ids = list(args.only) if args.only else available_experiments()
    outcomes = []
    for exp_id in ids:
        executor = _executor_from_args(
            args, journal_name=f"run-{exp_id}-{args.scale}"
        )
        outcomes.append(
            run_experiment(
                exp_id, scale=Scale(args.scale), progress=True, executor=executor
            )
        )
        _print_exec_stats(outcomes[-1].sweep)
    report = render_markdown_report(outcomes, Scale(args.scale))
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report)
        print(f"report written to {args.output}")
    else:
        print(report)
    return 1 if any(outcome.sweep.n_failed for outcome in outcomes) else 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .sim.runner import run_sweep

    experiment = get_experiment(args.experiment)
    executor = _executor_from_args(
        args, journal_name=f"sweep-{args.experiment}-{args.scale}"
    )
    sweep = run_sweep(
        experiment.specs(Scale(args.scale)),
        progress=True,
        executor=executor,
        on_error="capture",
    )
    payload = sweep.to_json()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
        print(f"sweep summary written to {args.output}")
    else:
        print(payload)
    _print_exec_stats(sweep)
    for _, error in sweep.errors():
        print(f"FAILED: {error.brief()}", file=sys.stderr)
    return 1 if sweep.n_failed else 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    policy = _resolve_policy(args.policy, "repro simulate")
    config = paper_config(
        arrival_rate_per_hour=args.load,
        duration=args.days * units.DAY,
        cache_bytes=int(args.cache_gb * units.GB),
        n_nodes=args.nodes,
        seed=args.seed,
        faults=_fault_config_from_args(args),
        net=_net_config_from_args(args),
        topology=_topology_from_args(args, "repro simulate"),
    )
    params = {}
    if args.period is not None:
        params["period"] = args.period
    if args.stripe is not None:
        params["stripe_events"] = args.stripe
    if args.grant_batch is not None:
        params["grant_batch"] = args.grant_batch
    if args.task_events is not None:
        params["task_events"] = args.task_events
    result = run_simulation(
        config,
        policy,
        check_invariants=args.check_invariants,
        # --dump-records needs every record; truncated CSV would silently
        # misrepresent the run.
        retain_records=args.retain_records or bool(args.dump_records),
        **params,
    )
    print(result.brief())
    summary = result.measured
    rows = [
        ["jobs measured", summary.n_jobs],
        ["mean speedup", f"{summary.mean_speedup:.2f}"],
        ["mean waiting", units.fmt_duration(summary.mean_waiting)],
        ["mean waiting (excl. delay)", units.fmt_duration(summary.mean_waiting_excl_delay)],
        ["mean processing", units.fmt_duration(summary.mean_processing)],
        ["p95 waiting", units.fmt_duration(summary.p95_waiting)],
        ["node utilization", f"{result.node_utilization:.2f}"],
        ["tertiary redundancy", f"{result.tertiary_redundancy:.2f}"],
        ["cache hit fraction", f"{result.cache_hit_fraction():.2f}"],
        ["overloaded", result.overload.overloaded],
    ]
    print(format_table(["metric", "value"], rows))
    if result.faults is not None:
        faults = result.faults
        total_node_seconds = config.duration * config.n_nodes
        fault_rows = [
            ["node failures", faults.failures],
            ["subjobs aborted", faults.subjobs_aborted],
            ["retries / giveups", f"{faults.retries} / {faults.giveups}"],
            ["lost events", faults.lost_events],
            ["lost work", units.fmt_duration(faults.lost_seconds)],
            ["downtime", units.fmt_duration(faults.downtime_seconds)],
            [
                "availability",
                f"{1.0 - faults.downtime_seconds / total_node_seconds:.4f}",
            ],
            ["tertiary stalls", faults.stalls],
            ["stall time", units.fmt_duration(faults.stall_seconds)],
            ["goodput", f"{faults.goodput:.4f}"],
        ]
        print(format_table(["fault metric", "value"], fault_rows))
    if result.sched is not None and result.sched.mode == "decentral":
        sched = result.sched
        sched_rows = [
            ["arbitration rounds", sched.rounds],
            ["rules published", sched.rules_published],
            ["bids scored / grants", f"{sched.bids} / {sched.grants}"],
            ["control messages", sched.messages],
            ["control bytes", sched.control_bytes],
            ["control time", units.fmt_duration(sched.control_seconds)],
            ["messages / subjob", f"{sched.messages_per_subjob():.2f}"],
        ]
        print(format_table(["scheduler metric", "value"], sched_rows))
    if config.net is not None and result.sched is not None:
        sched = result.sched
        net_rows = [
            ["retransmits", sched.retransmits],
            ["duplicates dropped", sched.duplicates_dropped],
            ["ack timeouts", sched.timeouts],
            ["dead letters", sched.dead_letters],
            ["arbiter failovers", sched.failovers],
        ]
        print(
            format_table(
                ["reliability metric", "value"],
                net_rows,
                title="Control-plane reliability",
            )
        )
    if args.dump_records:
        from .sim.export import write_records_csv

        count = write_records_csv(args.dump_records, result.records)
        print(f"wrote {count} job records to {args.dump_records}")
    if args.dump_json:
        from .sim.export import write_result_json

        write_result_json(args.dump_json, result)
        print(f"wrote result summary to {args.dump_json}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .obs import TraceRecorder, render_timeline, write_chrome_trace
    from .sim.config import quick_config

    policy = _resolve_policy(args.policy, "repro trace")
    if args.limit_events < 1:
        print(
            f"repro trace: --limit-events must be >= 1, got {args.limit_events}",
            file=sys.stderr,
        )
        return 2
    if args.width < 8:
        print(
            f"repro trace: --width must be >= 8, got {args.width}",
            file=sys.stderr,
        )
        return 2
    factory = quick_config if args.quick else paper_config
    config = factory(
        arrival_rate_per_hour=args.load,
        duration=args.days * units.DAY,
        cache_bytes=int(args.cache_gb * units.GB),
        n_nodes=args.nodes,
        seed=args.seed,
        faults=_fault_config_from_args(args),
        net=_net_config_from_args(args),
        topology=_topology_from_args(args, "repro trace"),
    )
    params = {}
    if args.period is not None:
        params["period"] = args.period
    if args.stripe is not None:
        params["stripe_events"] = args.stripe
    recorder = TraceRecorder(
        capacity=args.limit_events,
        sample_interval=args.sample_seconds,
        keep="first",
    )
    result = run_simulation(config, policy, sink=recorder, **params)
    recorder.close()

    trace_path = f"{args.out}.trace.json"
    counters_path = f"{args.out}.counters.csv"
    n_entries = write_chrome_trace(trace_path, recorder)
    n_samples = recorder.write_counters_csv(counters_path)

    if not args.no_ascii:
        print(render_timeline(recorder, width=args.width))
        print()
    print(result.brief())
    summary = recorder.summary()
    rows = [[name, f"{value}"] for name, value in summary.items()]
    print(format_table(["counter", "value"], rows, title="Trace counters"))
    if recorder.dropped_events:
        print(
            f"\nNOTE: event cap reached; {recorder.dropped_events} events "
            f"beyond the first {args.limit_events} were dropped "
            "(raise --limit-events to keep more)."
        )
    print(f"\nchrome trace ({n_entries} entries) written to {trace_path}")
    print("  open it at https://ui.perfetto.dev or chrome://tracing")
    print(f"counter time-series ({n_samples} samples) written to {counters_path}")
    return 0


def _cmd_topo_show(args: argparse.Namespace) -> int:
    spec = _resolve_topology(args.spec, "repro topo")
    if spec.is_trivial:
        note = "trivial (flat cluster; simulated on the stock data path)"
    else:
        note = "active (tiered data path engaged)"
    print(
        f"depth {spec.depth}, placement {spec.placement!r} "
        f"(promote_threshold={spec.promote_threshold}), {note}"
    )
    rows = []
    for tier in spec.tiers:
        level = len(spec.path_to_root(tier.name)) - 1
        indent = "  " * level
        if tier.parent is None:
            uplink = "- (hosts tertiary)"
        else:
            streams = (
                f"{tier.link_capacity_streams} streams"
                if tier.link_capacity_streams
                else "uncontended"
            )
            uplink = (
                f"{tier.link_bandwidth / units.MB:.0f} MB/s -> "
                f"{tier.parent} ({streams})"
            )
        cache = (
            f"{tier.cache_bytes / units.GB:.0f} GB" if tier.cache_bytes else "-"
        )
        attach = "nodes" if tier in spec.leaves else "-"
        rows.append([f"{indent}{tier.name}", cache, uplink, attach])
    print(
        format_table(
            ["tier", "cache", "uplink", "attaches"],
            rows,
            title="Tier tree",
        )
    )
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from .experiments.gnuplot import export_sweep
    from .sim.runner import run_sweep

    experiment = get_experiment(args.experiment)
    executor = _executor_from_args(
        args, journal_name=f"export-{args.experiment}-{args.scale}"
    )
    sweep = run_sweep(
        experiment.specs(Scale(args.scale)),
        progress=True,
        executor=executor,
    )
    wait_metric = (
        "waiting_excl_delay" if args.experiment in ("fig5", "fig6") else "waiting"
    )
    script = export_sweep(
        sweep, args.output, title=args.experiment, wait_metric=wait_metric
    )
    _print_exec_stats(sweep)
    print(f"gnuplot data and script written to {script.parent}")
    print(f"render with: cd {script.parent} && gnuplot {script.name}")
    return 0


def _cmd_replicate(args: argparse.Namespace) -> int:
    from .sim.replications import run_replications

    policy = _resolve_policy(args.policy, "repro replicate")
    config = paper_config(
        arrival_rate_per_hour=args.load,
        duration=args.days * units.DAY,
        cache_bytes=int(args.cache_gb * units.GB),
    )
    params = {}
    if args.period is not None:
        params["period"] = args.period
    if args.stripe is not None:
        params["stripe_events"] = args.stripe
    replicated = run_replications(
        config,
        policy,
        n_replications=args.replications,
        processes=args.jobs,
        **params,
    )
    rows = [
        [name, str(estimate)]
        for name, estimate in replicated.estimates.items()
    ]
    print(
        format_table(
            ["metric", "mean ± 95% CI"],
            rows,
            title=f"{args.policy} @ {args.load} jobs/h — "
            f"{replicated.n} replications",
        )
    )
    if replicated.any_overloaded:
        print(
            "\nNOTE: at least one replication left steady state; treat the "
            "averages with care."
        )
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    config = paper_config(duration=args.days * units.DAY)
    table = calibrate_delay_table(
        config, stripe_events=args.stripe, processes=args.jobs
    )
    print(summarize_table(table))
    print("\nPython literal for AdaptiveDelayPolicy(delay_table=...):")
    print(repr(table))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .lint import (
        ALL_RULES,
        LintUsageError,
        lint_paths,
        make_config,
        render_json,
        render_text,
    )

    if args.rules:
        rows = [
            [code, description] for code, description in sorted(ALL_RULES.items())
        ]
        print(format_table(["code", "rule"], rows, title="simlint rule catalogue"))
        return 0
    try:
        config = make_config(
            args.select.split(",") if args.select else None
        )
        if args.flow:
            return _lint_flow(args, config)
        if args.update_baseline:
            print(
                "repro lint: --update-baseline requires --flow",
                file=sys.stderr,
            )
            return 2
        findings, files_checked = lint_paths(args.paths, config)
    except LintUsageError as error:
        print(f"repro lint: {error}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(render_json(findings, files_checked))
    else:
        print(render_text(findings, files_checked))
    return 1 if findings else 0


def _lint_flow(args: argparse.Namespace, config) -> int:
    from pathlib import Path

    from .lint import render_flow_json, render_flow_text
    from .lint.flow import (
        DEFAULT_BASELINE_NAME,
        BaselineError,
        default_flow_config,
        flow_lint_paths,
        write_baseline,
    )

    if not args.select:
        config = default_flow_config()
    if args.baseline is not None:
        baseline_path = Path(args.baseline)
    else:
        default = Path(DEFAULT_BASELINE_NAME)
        baseline_path = default if default.exists() else None
    if args.update_baseline:
        report = flow_lint_paths(args.paths, config, baseline_path=None)
        target = baseline_path or Path(DEFAULT_BASELINE_NAME)
        write_baseline(target, report.all_findings)
        print(
            f"repro lint: wrote {len(report.all_findings)} entr"
            f"{'y' if len(report.all_findings) == 1 else 'ies'} to {target}"
        )
        return 0
    try:
        report = flow_lint_paths(args.paths, config, baseline_path=baseline_path)
    except BaselineError as error:
        print(f"repro lint: {error}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(render_flow_json(report))
    else:
        print(render_flow_text(report))
    return 0 if report.is_clean() else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    import os

    from .perf import (
        DEFAULT_THRESHOLD,
        compare_reports,
        load_baseline,
        render_report,
        report_filename,
        run_kernel_bench,
        run_policy_bench,
        run_scale_bench,
    )

    if args.threshold is not None and args.baseline_dir is None:
        print("repro bench: --threshold requires --baseline-dir", file=sys.stderr)
        return 2
    threshold = args.threshold if args.threshold is not None else DEFAULT_THRESHOLD
    if threshold <= 0:
        print(
            f"repro bench: --threshold must be > 0, got {threshold}",
            file=sys.stderr,
        )
        return 2
    kinds = (
        ["kernel", "policies", "scale"] if args.kind == "all" else [args.kind]
    )
    regressed = False
    for kind in kinds:
        if kind == "kernel":
            report = run_kernel_bench(quick=args.quick, profile=args.profile)
        elif kind == "scale":
            report = run_scale_bench(quick=args.quick, profile=args.profile)
        else:
            report = run_policy_bench(quick=args.quick, profile=args.profile)
        print(render_report(report))
        # Load the baseline BEFORE writing: with --out-dir and
        # --baseline-dir both pointing at the repo root, writing first
        # would overwrite the committed baseline and trivially pass.
        baseline = (
            load_baseline(args.baseline_dir, kind)
            if args.baseline_dir is not None
            else None
        )
        path = os.path.join(args.out_dir, report_filename(kind))
        report.write(path)
        print(f"report written to {path}")
        if args.baseline_dir is not None:
            if baseline is None:
                print(
                    f"no committed baseline {report_filename(kind)} in "
                    f"{args.baseline_dir}; skipping comparison"
                )
            else:
                comparison = compare_reports(report, baseline, threshold)
                print(comparison.describe())
                regressed = regressed or comparison.regressed
        print()
    if regressed:
        print("repro bench: throughput regression detected", file=sys.stderr)
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "policies":
        return _cmd_policies()
    if args.command == "experiments":
        return _cmd_experiments()
    if args.command == "limits":
        return _cmd_limits()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "run-all":
        return _cmd_run_all(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "topo":
        return _cmd_topo_show(args)
    if args.command == "export":
        return _cmd_export(args)
    if args.command == "replicate":
        return _cmd_replicate(args)
    if args.command == "calibrate":
        return _cmd_calibrate(args)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "bench":
        return _cmd_bench(args)
    raise AssertionError("unreachable")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
