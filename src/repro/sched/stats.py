"""Control-plane accounting shared by every scheduling policy.

The paper's policies assume a central master that pushes each subjob to a
node and hears back on completion — two control messages per dispatched
subjob, a cost that is invisible at 20 nodes and dominant at thousands.
:class:`SchedulerStats` makes that traffic a measured quantity for *every*
policy so centralized and decentralized schedulers can be compared on the
same axis:

* decentralized policies (``repro.sched.decentral``) count their real
  rule/bid/grant traffic as charged by their
  :class:`~repro.sched.decentral.costs.ControlCostModel`;
* centralized policies get a synthesized estimate from node dispatch
  counters (one push per subjob start, one completion report back).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Bytes charged per synthesized central-scheduler control message (a
#: subjob descriptor or a completion report; same order of magnitude as
#: the decentralized cost model's per-message sizes).
CENTRAL_MESSAGE_BYTES = 64


@dataclass(frozen=True)
class SchedulerStats:
    """Aggregate control-plane accounting of one run.

    ``mode`` is ``"central"`` (estimate synthesized from node counters)
    or ``"decentral"`` (real counters from the bidding protocol).
    ``subjobs_started`` counts node dispatches (starts + resumes) and is
    filled in by the simulator for both modes, so
    :meth:`messages_per_subjob` is comparable across policies.
    """

    mode: str = "central"
    #: Arbitration rounds resolved (0 for central policies).
    rounds: int = 0
    #: Rules published by the arbiter (0 for central policies).
    rules_published: int = 0
    #: (node, task) bid entries evaluated across all rounds — scoring
    #: work, not messages; standing offers re-enter later rounds free.
    bids: int = 0
    #: Tasks granted to nodes across all rounds (0 for central policies).
    grants: int = 0
    #: Control-plane messages (rules + bids + grants, or pushes + reports).
    messages: int = 0
    #: Total control-plane payload bytes.
    control_bytes: int = 0
    #: Simulated seconds spent moving control traffic.
    control_seconds: float = 0.0
    #: Node dispatches (subjob starts + resumes); filled by the simulator.
    subjobs_started: int = 0
    # -- control-plane reliability (repro.faults.net; all 0 on a perfect
    # -- network; filled from ChannelStats by the simulator) -----------------
    #: Messages re-sent by the ack+retransmit state machine.
    retransmits: int = 0
    #: Redundant copies discarded by receiver-side deduplication.
    duplicates_dropped: int = 0
    #: Ack timers that fired.
    timeouts: int = 0
    #: Messages that exhausted their retransmit budget (work re-pended).
    dead_letters: int = 0
    #: Arbiter failover re-elections (decentral mode).
    failovers: int = 0

    def messages_per_subjob(self) -> float:
        """Control messages per node dispatch (NaN when nothing ran)."""
        if self.subjobs_started <= 0:
            return math.nan
        return self.messages / self.subjobs_started

    def as_dict(self) -> dict:
        return {
            "mode": self.mode,
            "rounds": self.rounds,
            "rules_published": self.rules_published,
            "bids": self.bids,
            "grants": self.grants,
            "messages": self.messages,
            "control_bytes": self.control_bytes,
            "control_seconds": self.control_seconds,
            "subjobs_started": self.subjobs_started,
            "retransmits": self.retransmits,
            "duplicates_dropped": self.duplicates_dropped,
            "timeouts": self.timeouts,
            "dead_letters": self.dead_letters,
            "failovers": self.failovers,
            "messages_per_subjob": self.messages_per_subjob(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SchedulerStats":
        """Rebuild from :meth:`as_dict` output (summary-JSON round trip).

        The reliability counters default to 0 so schema-v4 summaries
        (written before the unreliable control plane existed) round-trip
        unchanged.
        """
        return cls(
            mode=str(payload["mode"]),
            rounds=int(payload["rounds"]),
            rules_published=int(payload["rules_published"]),
            bids=int(payload["bids"]),
            grants=int(payload["grants"]),
            messages=int(payload["messages"]),
            control_bytes=int(payload["control_bytes"]),
            control_seconds=float(payload["control_seconds"]),
            subjobs_started=int(payload["subjobs_started"]),
            retransmits=int(payload.get("retransmits", 0)),
            duplicates_dropped=int(payload.get("duplicates_dropped", 0)),
            timeouts=int(payload.get("timeouts", 0)),
            dead_letters=int(payload.get("dead_letters", 0)),
            failovers=int(payload.get("failovers", 0)),
        )

    @classmethod
    def central_estimate(cls, dispatches: int, completions: int) -> "SchedulerStats":
        """The implicit traffic of a central push scheduler: one push per
        dispatch, one completion report per finished subjob."""
        messages = dispatches + completions
        return cls(
            mode="central",
            messages=messages,
            control_bytes=messages * CENTRAL_MESSAGE_BYTES,
            subjobs_started=dispatches,
        )
