"""Cache-oriented job splitting (§3.3, Table 2) — FCFS job starts with
cache-aware splitting and LRU node disk caches.

Jobs are split along the current cache boundaries ("data processed by a
given subjob should always either be fully cached on a node or not cached
at all"), cached subjobs are steered to the nodes holding their data, and
preemption choices maximise cached access.  Job *starts* remain first in
first out — the fairness constraint the out-of-order policy later relaxes.

Deviation from the literal Table 2: jobs that arrive when every node is
taken by a distinct job are queued *unsplit* and split when they finally
start; the cache contents at their arrival instant would be stale by then,
so splitting at start strictly improves the placement hints.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ..cluster.node import Node
from ..workload.jobs import Job, Subjob, SubjobState
from .base import (
    SchedulerPolicy,
    best_subjob_for_node,
    register_policy,
    split_interval_by_caches,
)


@register_policy
class CacheOrientedSplittingPolicy(SchedulerPolicy):
    """Table 2 of the paper."""

    name = "cache-splitting"

    def __init__(self) -> None:
        super().__init__()
        self.queue: Deque[Job] = deque()
        self.running_jobs: List[Job] = []
        self._preemptions_for_cache = 0

    # -- arrival (Table 2, "Upon job arrival") ------------------------------------

    def on_job_arrival(self, job: Job) -> None:
        idle = self.cluster.idle_nodes()
        if idle:
            self._start_job(job, idle)
            return
        node = self._preempt_for(job)
        if node is not None:
            self._start_job(job, [node])
            return
        self.queue.append(job)

    # -- subjob end (Table 2, "Upon subjob end") ---------------------------------------

    def on_subjob_end(self, node: Node, subjob: Subjob) -> None:
        if not node.idle:
            return
        job = subjob.job
        # 1. Same job first: the waiting subjob with the most data cached
        #    on the freed node.
        own_waiting = job.suspended_subjobs() + job.pending_subjobs()
        if own_waiting:
            chosen = best_subjob_for_node(node, own_waiting)
            assert chosen is not None
            self.start_on(node, chosen)
            return
        self._feed_idle_node(node)

    # -- job end (Table 2, "Upon job end") ------------------------------------------------

    def on_job_end(self, node: Node, job: Job, subjob: Subjob) -> None:
        if job in self.running_jobs:
            self.running_jobs.remove(job)
        if not node.idle:
            return
        if self.queue:
            self._start_job(self.queue.popleft(), [node])
            return
        self._feed_idle_node(node)

    def on_node_recovered(self, node: Node) -> None:
        if node.idle:
            self._feed_idle_node(node)

    # -- internals -------------------------------------------------------------------------

    def _split_job(self, job: Job) -> List[Tuple[Subjob, Optional[Node]]]:
        """Split along cache boundaries; returns (subjob, caching node)."""
        pieces = split_interval_by_caches(
            job.segment, self.cluster, self.min_subjob_events
        )
        subjobs = job.make_subjobs([interval for interval, _ in pieces])
        return list(zip(subjobs, (owner for _, owner in pieces)))

    def _start_job(self, job: Job, idle: List[Node]) -> None:
        """Split ``job`` and dispatch onto the given idle nodes:
        cached subjobs to their nodes first, then any subjob, further
        subdividing if nodes would stay idle."""
        self.running_jobs.append(job)
        tagged = self._split_job(job)
        pending: List[Subjob] = [s for s, _ in tagged]
        owner_of: Dict[int, Optional[Node]] = {s.seq: owner for s, owner in tagged}
        free = list(idle)

        # Phase 1: fully/mostly cached subjobs onto their caching node.
        for node in list(free):
            best: Optional[Subjob] = None
            best_cached = 0
            for subjob in pending:
                if owner_of.get(subjob.seq) is node:
                    cached = node.cache.cached_events(subjob.remaining)
                    if cached > best_cached:
                        best_cached = cached
                        best = subjob
            if best is not None:
                pending.remove(best)
                free.remove(node)
                self.start_on(node, best)

        # Phase 2: remaining subjobs (largest first) onto remaining nodes.
        pending.sort(key=lambda s: -s.remaining_events)
        while free and pending:
            self.start_on(free.pop(0), pending.pop(0))

        # Phase 3: not enough subjobs — subdivide the largest running
        # piece of this job until every idle node works (Table 2: "If
        # there are not enough subjobs for all nodes, they are further
        # subdivided").
        while free:
            candidates = sorted(
                job.running_subjobs(), key=lambda s: -s.remaining_events
            )
            split_done = False
            for subjob in candidates:
                remaining = subjob.remaining
                if remaining.length < 2 * self.min_subjob_events:
                    break
                midpoint = remaining.start + remaining.length // 2
                right = self.split_running_subjob(subjob, midpoint)
                if right is not None:
                    self.start_on(free.pop(0), right)
                    split_done = True
                    break
            if not split_done:
                break
        # Subjobs that did not fit stay PENDING (Table 2's "suspended").

    def _preempt_for(self, job: Job) -> Optional[Node]:
        """Table 2: release one node from a multi-node job, choosing the
        (node, victim) pair that maximises cached data access — prefer
        evicting a subjob reading uncached data from a node on which the
        new job has cached data."""
        from ..cluster.costmodel import DataSource

        best_node: Optional[Node] = None
        best_key: Tuple[int, int, float] = (-1, -1, -1.0)
        for node in self.cluster.busy_nodes():
            victim = node.current
            assert victim is not None
            if victim.job.nodes_held() < 2:
                continue  # never release a job's last node
            gain = node.cache.cached_events(job.segment)
            victim_uncached = 1 if node.current_source() is not DataSource.CACHE else 0
            ratio = victim.job.nodes_held() / max(victim.job.remaining_events, 1)
            key = (victim_uncached, gain, ratio)
            if key > best_key:
                best_key = key
                best_node = node
        if best_node is None:
            return None
        suspended = best_node.preempt()
        if suspended is None and best_node.busy:
            return None  # completion raced us and the node was refilled
        self._preemptions_for_cache += 1
        return best_node if best_node.idle else None

    def _feed_idle_node(self, node: Node) -> None:
        """No work of its own job: serve the queue, then other jobs'
        waiting subjobs, then split the running subjob with the largest
        caching benefit on this node."""
        if self.queue:
            self._start_job(self.queue.popleft(), [node])
            return

        waiting = [
            s
            for other in self.running_jobs
            for s in other.subjobs
            if s.state in (SubjobState.PENDING, SubjobState.SUSPENDED)
        ]
        if waiting:
            chosen = best_subjob_for_node(node, waiting)
            assert chosen is not None
            self.start_on(node, chosen)
            return

        self._split_for_cache_benefit(node)

    def _split_for_cache_benefit(self, node: Node) -> None:
        """Split the running subjob whose remaining data is most cached on
        ``node``, cutting so the freed node receives the cached run;
        fall back to halving the largest running subjob."""
        running = [
            s
            for other in self.running_jobs
            for s in other.running_subjobs()
            if s.remaining_events >= 2 * self.min_subjob_events
        ]
        if not running:
            return
        best = best_subjob_for_node(node, running)
        assert best is not None
        remaining = best.remaining
        cached_parts = node.cache.cached_parts(remaining)
        point: Optional[int] = None
        if cached_parts:
            # Give this node the tail containing the largest cached run.
            largest = max(cached_parts, key=lambda i: i.length)
            point = largest.start
        if point is None:
            best = max(running, key=lambda s: s.remaining_events)
            remaining = best.remaining
            point = remaining.start + remaining.length // 2
        lower = remaining.start + self.min_subjob_events
        upper = remaining.end - self.min_subjob_events
        if lower > upper:
            return
        point = min(max(point, lower), upper)
        right = self.split_running_subjob(best, point)
        if right is not None:
            self.start_on(node, right)

    def describe(self) -> Dict[str, object]:
        return {
            "policy": self.name,
            "cache_bytes": self.config.cache_bytes if self.ctx else None,
        }

    def extra_stats(self) -> Dict[str, float]:
        return {
            "queued_jobs_at_end": float(len(self.queue)),
            "cache_preemptions": float(self._preemptions_for_cache),
        }
