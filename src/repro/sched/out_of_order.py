"""Out-of-order job scheduling (§4.1, Table 3).

Each node keeps a private queue of subjobs whose data it caches; an extra
global queue holds subjobs with no cached data anywhere.  Jobs whose data
sits in a disk cache overtake earlier jobs that would have to stream from
tape — trading strict FIFO fairness for an order-of-magnitude improvement
in waiting times and sustainable load.

Fairness valve: a job stuck in the no-cached-data queue longer than
``fairness_timeout`` (2 days in the paper) is promoted — the next
available node serves it before anything else.  The paper reports this
triggering for less than 0.5 ‰ of jobs below saturation.

Work stealing: an idle node with nothing queued anywhere takes work from
the most loaded node, splitting so both halves finish together given the
thief reads from tertiary storage while the donor reads from its disk
(Table 3: "the subjobs are split so as to ensure that the two subjobs
terminate around the same time").  Stolen subjobs carry a flag allowing a
later cached subjob to preempt them.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Set, Tuple

from ..core import units
from ..core.events import EventPriority
from ..cluster.node import Node
from ..obs.hooks import kinds
from ..workload.jobs import Job, Subjob
from .base import (
    SchedulerContext,
    SchedulerPolicy,
    register_policy,
    split_interval_by_caches,
)

_NOCACHE = ("nocache",)


@register_policy
class OutOfOrderPolicy(SchedulerPolicy):
    """Table 3 of the paper."""

    name = "out-of-order"

    def __init__(self, fairness_timeout: float = 2 * units.DAY) -> None:
        super().__init__()
        self.fairness_timeout = fairness_timeout
        self.node_queues: Dict[int, Deque[Subjob]] = {}
        self.nocache_queue: Deque[Subjob] = deque()
        #: Jobs promoted by the fairness valve, in promotion order.
        self.priority_jobs: Deque[Job] = deque()
        #: Jobs with a pending starvation-clock event.
        self._fairness_armed: Set[Job] = set()
        self.stats_fairness_promotions = 0
        self.stats_steals = 0
        self.stats_preempted_for_cached = 0

    def bind(self, ctx: SchedulerContext) -> None:
        super().bind(ctx)
        self.node_queues = {node.node_id: deque() for node in ctx.cluster}

    # -- arrival (Table 3, "Upon job arrival") -----------------------------------

    def on_job_arrival(self, job: Job) -> None:
        pieces = split_interval_by_caches(
            job.segment, self.cluster, self.min_subjob_events
        )
        subjobs = job.make_subjobs([interval for interval, _ in pieces])
        cached: List[Tuple[Subjob, Node]] = []
        uncached: List[Subjob] = []
        for subjob, (_, owner) in zip(subjobs, pieces):
            if owner is not None:
                cached.append((subjob, owner))
            else:
                uncached.append(subjob)

        # Cached subjobs: run immediately on their node if it is idle or
        # running preemptible (no-cached-data) work; otherwise queue there.
        for subjob, owner in cached:
            subjob.origin = ("node", owner.node_id)
            if owner.idle:
                self.start_on(owner, subjob)
            elif self._preemptible(owner):
                displaced = owner.preempt()
                self.stats_preempted_for_cached += 1
                if self.obs.enabled:
                    self.emit(
                        kinds.SUBJOB_PREEMPT,
                        node=owner.node_id,
                        job=subjob.job.job_id,
                        sid=subjob.sid,
                        displaced=displaced.sid if displaced is not None else "",
                    )
                if displaced is not None:
                    self._put_back_front(displaced)
                if owner.idle:
                    self.start_on(owner, subjob)
                else:  # the displaced subjob finished; deferred event pending
                    self.node_queues[owner.node_id].appendleft(subjob)
            else:
                self.node_queues[owner.node_id].append(subjob)

        # Uncached subjobs: feed idle nodes (splitting to cover them all),
        # queue the rest globally.
        idle = self.cluster.idle_nodes()
        if uncached and idle:
            uncached = self._split_to_feed(uncached, len(idle))
            for node in idle:
                if not uncached:
                    break
                subjob = uncached.pop(0)
                subjob.origin = _NOCACHE
                self.start_on(node, subjob)
        for subjob in uncached:
            subjob.origin = _NOCACHE
            self.nocache_queue.append(subjob)
            self._arm_fairness(subjob.job)

        # Any still-idle node steals from the most loaded one.
        for node in self.cluster.idle_nodes():
            self._feed_node(node)

    # -- completions -----------------------------------------------------------------

    def on_subjob_end(self, node: Node, subjob: Subjob) -> None:
        if node.idle:
            self._feed_node(node)

    def on_job_end(self, node: Node, job: Job, subjob: Subjob) -> None:
        if node.idle:
            self._feed_node(node)

    # -- faults ------------------------------------------------------------------------

    def on_node_failed(self, node: Node, aborted: Optional[Subjob]) -> None:
        """Re-home the dead node's private queue: its cache is unreachable,
        so the queued subjobs are effectively no-cached-data work now."""
        own = self.node_queues[node.node_id]
        while own:
            subjob = own.popleft()
            subjob.origin = _NOCACHE
            self.nocache_queue.append(subjob)
            self._arm_fairness(subjob.job)
        for idle_node in self.cluster.idle_nodes():
            self._feed_node(idle_node)

    def on_node_recovered(self, node: Node) -> None:
        if node.idle:
            self._feed_node(node)

    # -- node feeding (Table 3, "Whenever nodes become available") ---------------------

    def _feed_node(self, node: Node) -> None:
        if not node.idle:
            return
        # 1. Fairness-promoted jobs first.
        while self.priority_jobs:
            job = self.priority_jobs[0]
            subjob = self._pop_nocache_subjob_of(job)
            if subjob is None:
                self.priority_jobs.popleft()  # nothing left waiting
                continue
            self.start_on(node, subjob)
            return
        # 2. The node's own queue.
        own = self.node_queues[node.node_id]
        if own:
            self.start_on(node, own.popleft())
            return
        # 3. The global no-cached-data queue.
        if self.nocache_queue:
            self.start_on(node, self.nocache_queue.popleft())
            return
        # 4. Steal from the most loaded node.
        self._try_steal(node)

    # -- stealing ---------------------------------------------------------------------------

    def _thief_share(self, total_events: int) -> int:
        """Events the thief takes so both halves finish together: the
        donor reads from its disk, the thief from tertiary storage."""
        model = self.cluster.cost_model
        donor_rate = model.cached_event_time
        thief_rate = model.uncached_event_time
        return int(total_events * donor_rate / (donor_rate + thief_rate))

    def _try_steal(self, thief: Node) -> None:
        donor = self._most_loaded_node(exclude=thief)
        if donor is None:
            return
        queue = self.node_queues[donor.node_id]
        # Prefer splitting the last queued subjob; if the queue is empty,
        # split the running one.
        if queue:
            victim = queue[-1]
            share = self._thief_share(victim.remaining_events)
            if share < self.min_subjob_events:
                if len(queue) > 1 and victim.remaining_events >= self.min_subjob_events:
                    queue.pop()  # take the whole tail subjob
                    self._mark_stolen(victim, donor)
                    self.start_on(thief, victim)
                    self.stats_steals += 1
                return
            if victim.remaining_events - share < self.min_subjob_events:
                return
            point = victim.remaining.end - share
            right = victim.split_remaining_at(point)
            self._mark_stolen(right, donor)
            self.start_on(thief, right)
            self.stats_steals += 1
            return
        victim = donor.current
        assert victim is not None
        share = self._thief_share(victim.remaining_events)
        if (
            share < self.min_subjob_events
            or victim.remaining_events - share < self.min_subjob_events
        ):
            return
        point = victim.remaining.end - share
        right = self.split_running_subjob(victim, point)
        if right is not None:
            self._mark_stolen(right, donor)
            self.start_on(thief, right)
            self.stats_steals += 1

    def _most_loaded_node(self, exclude: Node) -> Optional[Node]:
        """The busy node with the most outstanding work (running subjob
        remainder plus its queue).

        On hierarchical topologies equal loads go to the donor closest to
        the thief in the tier tree — stolen work streams its data from
        the donor's cache, so proximity keeps the transfer off the WAN.
        Flat clusters have all-zero distances, preserving the historical
        first-node-wins rule byte for byte.
        """
        ctx = self.ctx
        topo = ctx.topo if ctx is not None else None
        best: Optional[Node] = None
        best_load = 0
        best_distance = 0
        for node in self.cluster:
            if node is exclude or node.idle:
                continue
            load = node.current.remaining_events if node.current else 0
            load += sum(s.remaining_events for s in self.node_queues[node.node_id])
            if load > best_load:
                best_load = load
                best = node
                if topo is not None:
                    best_distance = topo.distance(
                        exclude.node_id, node.node_id
                    )
            elif (
                topo is not None
                and best is not None
                and load == best_load
                and topo.distance(exclude.node_id, node.node_id) < best_distance
            ):
                best = node
                best_distance = topo.distance(exclude.node_id, node.node_id)
        if best_load < 2 * self.min_subjob_events:
            return None
        return best

    def _mark_stolen(self, subjob: Subjob, donor: Node) -> None:
        subjob.steal_preemptible = True
        # The data is cached on the donor, so that is where the subjob
        # belongs if it ever gets displaced.
        subjob.origin = ("node", donor.node_id)
        if self.obs.enabled:
            self.emit(
                kinds.SUBJOB_STEAL,
                node=donor.node_id,
                job=subjob.job.job_id,
                sid=subjob.sid,
                events=subjob.remaining_events,
            )

    # -- preemption plumbing -----------------------------------------------------------------

    def _preemptible(self, node: Node) -> bool:
        """True if the node runs a subjob a cached subjob may displace:
        one taken from the no-cached-data queue or a stolen one."""
        current = node.current
        if current is None:
            return False
        return current.steal_preemptible or current.origin == _NOCACHE

    def _put_back_front(self, subjob: Subjob) -> None:
        """Return a displaced subjob to the head of its origin queue."""
        if subjob.origin is not None and subjob.origin[0] == "node":
            self.node_queues[subjob.origin[1]].appendleft(subjob)
        else:
            self.nocache_queue.appendleft(subjob)
            self._arm_fairness(subjob.job)

    # -- fairness --------------------------------------------------------------------------------

    def _arm_fairness(self, job: Job) -> None:
        """Start (once per queue residency) the 2-day starvation clock for
        a job whose work sits in the no-cached-data queue.  The clock is
        measured from the job's arrival, so a job displaced back into the
        queue after the timeout is promoted immediately."""
        if self.fairness_timeout <= 0 or job in self._fairness_armed:
            return
        self._fairness_armed.add(job)
        due = max(0.0, job.arrival_time + self.fairness_timeout - self.engine.now)
        self.engine.call_after(
            due,
            self._fairness_check,
            job,
            priority=EventPriority.TIMER,
            label=f"fairness:{job.job_id}",
        )

    def _fairness_check(self, job: Job) -> None:
        """Promote ``job`` if some of its subjobs still wait in the
        no-cached-data queue ``fairness_timeout`` after arrival."""
        self._fairness_armed.discard(job)
        if job.done or job in self.priority_jobs:
            return
        if any(s.job is job for s in self.nocache_queue):
            self.priority_jobs.append(job)
            self.stats_fairness_promotions += 1
            if self.obs.enabled:
                self.emit(
                    kinds.JOB_PROMOTE,
                    job=job.job_id,
                    waited=self.engine.now - job.arrival_time,
                )
            for node in self.cluster.idle_nodes():
                self._feed_node(node)

    def _pop_nocache_subjob_of(self, job: Job) -> Optional[Subjob]:
        for index, subjob in enumerate(self.nocache_queue):
            if subjob.job is job:
                del self.nocache_queue[index]
                return subjob
        return None

    # -- helpers ------------------------------------------------------------------------------------

    def _split_to_feed(self, subjobs: List[Subjob], node_count: int) -> List[Subjob]:
        """Split (largest first, halving) until there is one subjob per
        node or nothing is splittable; preserves total coverage."""
        pieces = list(subjobs)
        while len(pieces) < node_count:
            pieces.sort(key=lambda s: -s.remaining_events)
            largest = pieces[0]
            if largest.remaining_events < 2 * self.min_subjob_events:
                break
            remaining = largest.remaining
            midpoint = remaining.start + remaining.length // 2
            pieces.append(largest.split_remaining_at(midpoint))
        pieces.sort(key=lambda s: s.segment.start)
        return pieces

    def describe(self) -> Dict[str, object]:
        return {
            "policy": self.name,
            "fairness_timeout": self.fairness_timeout,
        }

    def extra_stats(self) -> Dict[str, float]:
        return {
            "fairness_promotions": float(self.stats_fairness_promotions),
            "steals": float(self.stats_steals),
            "preempted_for_cached": float(self.stats_preempted_for_cached),
            "nocache_queue_at_end": float(len(self.nocache_queue)),
            "node_queued_at_end": float(
                sum(len(q) for q in self.node_queues.values())
            ),
        }
