"""Delayed scheduling (§5, Table 4).

Time is divided into fixed periods.  Jobs accumulate during a period and
are all scheduled at its boundary: split along cache boundaries, the
uncached remainder re-split into *stripes* of at most ``stripe_events``,
and uncached subjobs of different jobs that share a stripe are gathered
into **meta-subjobs** — when a node pops a meta-subjob it streams the
stripe from tertiary storage once and every member then reads it from the
disk cache.  The goal (§5): "load the data from tertiary storage only once
during a given period".

The stripe point algebra follows Table 4 exactly: the boundary points of
all uncached segments are collected; points creating stripes below half
the stripe size are removed; points are added so no stripe exceeds the
stripe size; subjobs are cut at the surviving points.

``period=0`` degenerates to immediate scheduling with the same splitting
machinery — the mode the adaptive policy (§6) uses at low loads.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from ..core.events import EventPriority
from ..cluster.node import Node
from ..data.intervals import Interval, partition_by
from ..obs.hooks import kinds
from ..workload.jobs import Job, MetaSubjob, Subjob
from .base import (
    SchedulerContext,
    SchedulerPolicy,
    register_policy,
    split_interval_by_caches,
)


def compute_stripe_points(
    segments: List[Interval], stripe_events: int
) -> List[int]:
    """Table 4's stripe point list for a set of uncached segments.

    Returns sorted cut points such that consecutive points are at least
    ``stripe_events / 2`` apart (except where widened by the tail merge)
    and at most ``stripe_events`` apart within the covered span.
    """
    if not segments or stripe_events < 1:
        return []
    raw = sorted({p for seg in segments for p in (seg.start, seg.end)})
    if len(raw) < 2:
        return raw
    half = max(1, stripe_events // 2)

    # 1. Remove points creating stripes below half the stripe size.
    kept = [raw[0]]
    for point in raw[1:]:
        if point - kept[-1] >= half:
            kept.append(point)
    # Always close the span: shift the last kept point onto the true end
    # if the tail stripe collapsed below half size.
    if kept[-1] != raw[-1]:
        if raw[-1] - kept[-1] >= half or len(kept) == 1:
            kept.append(raw[-1])
        else:
            kept[-1] = raw[-1]

    # 2. Add points so that no stripe exceeds the stripe size.
    final: List[int] = [kept[0]]
    for point in kept[1:]:
        gap = point - final[-1]
        if gap > stripe_events:
            pieces = math.ceil(gap / stripe_events)
            base = final[-1]
            for j in range(1, pieces):
                final.append(base + (gap * j) // pieces)
        final.append(point)
    return final


@register_policy
class DelayedPolicy(SchedulerPolicy):
    """Table 4 of the paper."""

    name = "delayed"

    def __init__(
        self,
        period: float = 2 * 86_400.0,
        stripe_events: int = 5_000,
        job_window: Optional[int] = None,
    ) -> None:
        super().__init__()
        if period < 0:
            raise ValueError(f"period must be >= 0, got {period}")
        if stripe_events < 1:
            raise ValueError(f"stripe_events must be >= 1, got {stripe_events}")
        if job_window is not None and job_window < 1:
            raise ValueError(f"job_window must be >= 1, got {job_window}")
        self.period = float(period)
        self.stripe_events = int(stripe_events)
        #: Optional burst-drain discipline: nodes may only start subjobs of
        #: the first ``job_window`` unfinished jobs (by arrival) of the
        #: batch.  Table 4 does not specify the drain order; a small
        #: window concentrates the cluster on one job at a time, trading
        #: some utilization for much shorter per-job processing spans —
        #: the discipline implied by the paper's §5.2 "speedup of more
        #: than 10" at 3 jobs/hour.  ``None`` (default) = no gating.
        self.job_window = job_window
        self.pending_jobs: List[Job] = []
        self.node_queues: Dict[int, List[Subjob]] = {}
        self.meta_queue: List[MetaSubjob] = []
        self._batch_order: List[Job] = []
        self.stats_periods = 0
        self.stats_meta_subjobs = 0
        self.stats_batched_jobs = 0
        self._boundary_event = None

    def bind(self, ctx: SchedulerContext) -> None:
        super().bind(ctx)
        self.node_queues = {node.node_id: [] for node in ctx.cluster}
        if self.period > 0:
            self._boundary_event = self.engine.call_after(
                self.period,
                self._on_period_boundary,
                priority=EventPriority.PERIOD,
                label="period",
            )

    # -- notifications ------------------------------------------------------------

    def on_job_arrival(self, job: Job) -> None:
        if self.period > 0:
            self.pending_jobs.append(job)
        else:
            job.schedule_time = self.engine.now
            self._schedule_batch([job])

    def on_subjob_end(self, node: Node, subjob: Subjob) -> None:
        if node.idle:
            self._feed_node(node)

    def on_job_end(self, node: Node, job: Job, subjob: Subjob) -> None:
        if node.idle:
            self._feed_node(node)
        if self.job_window is not None:
            # A finished job may unlock the next one for every idle node.
            for other in self.cluster.idle_nodes():
                self._feed_node(other)

    # -- faults -----------------------------------------------------------------------

    def on_node_failed(self, node: Node, aborted: Optional[Subjob]) -> None:
        """Reassign the dead node's queue to the surviving node caching
        the most of it (its cache is gone from the placement's point of
        view); fall back to the lowest-id up node."""
        own = self.node_queues[node.node_id]
        if not own:
            return
        displaced, own[:] = list(own), []
        for subjob in displaced:
            target: Optional[Node] = None
            best_cached = 0
            for other in self.cluster:
                if other.failed or other is node:
                    continue
                if target is None:
                    target = other  # lowest-id fallback
                cached = other.cache.cached_events(subjob.remaining)
                if cached > best_cached:
                    best_cached = cached
                    target = other
            if target is None:
                own.append(subjob)  # whole cluster down; keep it here
                continue
            subjob.origin = ("node", target.node_id)
            self.node_queues[target.node_id].append(subjob)
        for idle_node in self.cluster.idle_nodes():
            self._feed_node(idle_node)

    def on_node_recovered(self, node: Node) -> None:
        if node.idle:
            self._feed_node(node)

    # -- period machinery ------------------------------------------------------------

    def _on_period_boundary(self) -> None:
        self.stats_periods += 1
        batch, self.pending_jobs = self.pending_jobs, []
        now = self.engine.now
        for job in batch:
            job.schedule_time = now
        if self.obs.enabled:
            self.emit(kinds.SCHED_PERIOD, batch=len(batch), period=self.period)
        if batch:
            self._schedule_batch(batch)
        self.period = self._next_period_delay()
        if self.period > 0:
            self._boundary_event = self.engine.call_after(
                self.period,
                self._on_period_boundary,
                priority=EventPriority.PERIOD,
                label="period",
            )
        else:
            self._boundary_event = None

    def _next_period_delay(self) -> float:
        """Length of the next period (hook for the adaptive policy)."""
        return self.period

    # -- batch scheduling (Table 4, "at the end of a period") ----------------------------

    def _schedule_batch(self, jobs: List[Job]) -> None:
        self.stats_batched_jobs += len(jobs)
        jobs = sorted(jobs, key=lambda j: j.arrival_time)
        self._batch_order.extend(jobs)

        # Pass 1: cache-boundary split of every job.
        per_job_pieces: List[Tuple[Job, List[Tuple[Interval, Optional[Node]]]]] = []
        uncached_segments: List[Interval] = []
        for job in jobs:
            pieces = split_interval_by_caches(
                job.segment, self.cluster, self.min_subjob_events
            )
            per_job_pieces.append((job, pieces))
            uncached_segments.extend(
                interval for interval, owner in pieces if owner is None
            )

        # Pass 2: global stripe points over the uncached segments.
        points = compute_stripe_points(uncached_segments, self.stripe_events)

        # Pass 3: final per-job segmentation and subjob creation.
        new_metas: Dict[Tuple[int, int], MetaSubjob] = {}
        for job, pieces in per_job_pieces:
            segments: List[Interval] = []
            tags: List[Optional[Node]] = []
            for interval, owner in pieces:
                if owner is not None:
                    segments.append(interval)
                    tags.append(owner)
                else:
                    parts = self._cut_with_min_size(interval, points)
                    segments.extend(parts)
                    tags.extend([None] * len(parts))
            subjobs = job.make_subjobs(segments)
            if self.obs.enabled:
                self.emit(
                    kinds.JOB_SCHEDULE,
                    job=job.job_id,
                    subjobs=len(subjobs),
                    delayed=self.engine.now - job.arrival_time,
                )
            # make_subjobs sorts segments; rebuild the tag mapping by
            # segment identity.
            tag_by_segment = {seg: tag for seg, tag in zip(segments, tags)}
            for subjob in subjobs:
                owner = tag_by_segment[subjob.segment]
                if owner is not None:
                    subjob.origin = ("node", owner.node_id)
                    self.node_queues[owner.node_id].append(subjob)
                else:
                    cell = self._cell_of(subjob.segment, points)
                    meta = new_metas.get(cell)
                    if meta is None:
                        meta = MetaSubjob(stripe=Interval(cell[0], cell[1]))
                        new_metas[cell] = meta
                    meta.add(subjob)

        self.stats_meta_subjobs += len(new_metas)
        if self.obs.enabled:
            for meta in new_metas.values():
                self.emit(
                    kinds.SCHED_META,
                    stripe_start=meta.stripe.start,
                    stripe_end=meta.stripe.end,
                    members=len(meta.members),
                )
        self.meta_queue.extend(new_metas.values())
        # Fairness among meta-subjobs: earliest member arrival first
        # (stable, so leftovers from previous periods keep their rank).
        self.meta_queue.sort(key=lambda m: m.arrival_time)

        for node in self.cluster.idle_nodes():
            self._feed_node(node)

    def _cut_with_min_size(
        self, interval: Interval, points: List[int]
    ) -> List[Interval]:
        """Cut ``interval`` at the stripe points, merging sub-minimal
        slivers into their left neighbour."""
        parts = partition_by(interval, points)
        merged: List[Interval] = []
        for part in parts:
            if merged and (
                part.length < self.min_subjob_events
                or merged[-1].length < self.min_subjob_events
            ):
                merged[-1] = Interval(merged[-1].start, part.end)
            else:
                merged.append(part)
        return merged

    def _cell_of(self, segment: Interval, points: List[int]) -> Tuple[int, int]:
        """The stripe cell a segment (mostly) falls in."""
        from bisect import bisect_right

        if not points:
            return (segment.start, segment.end)
        index = bisect_right(points, segment.start) - 1
        if index < 0:
            return (segment.start, points[0])
        if index >= len(points) - 1:
            return (points[-1], max(points[-1] + self.stripe_events, segment.end))
        return (points[index], points[index + 1])

    # -- node feeding (Table 4, "during the period") ----------------------------------------

    def _front_jobs(self) -> Optional[set]:
        """The first ``job_window`` unfinished batch jobs (None = no
        gating)."""
        if self.job_window is None:
            return None
        while self._batch_order and self._batch_order[0].done:
            self._batch_order.pop(0)
        front = set()
        for job in self._batch_order:
            if job.done:
                continue  # finished out of order; skip without unlinking
            front.add(job)
            if len(front) == self.job_window:
                break
        return front

    def _feed_node(self, node: Node) -> None:
        if not node.idle:
            return
        front = self._front_jobs()
        own = self.node_queues[node.node_id]
        for index, subjob in enumerate(own):
            if front is None or subjob.job in front:
                self.start_on(node, own.pop(index))
                return
        for index, meta in enumerate(self.meta_queue):
            members = [s for s in meta.members if not s.done]
            if not members:
                self.meta_queue.pop(index)
                self._feed_node(node)
                return
            if front is not None and not any(s.job in front for s in members):
                continue
            # All members go to this node's queue: the first streams the
            # stripe from tertiary storage, the rest hit the disk cache.
            self.meta_queue.pop(index)
            first, rest = members[0], members[1:]
            own.extend(rest)
            self.start_on(node, first)
            return

    def describe(self) -> Dict[str, object]:
        return {
            "policy": self.name,
            "period": self.period,
            "stripe_events": self.stripe_events,
        }

    def extra_stats(self) -> Dict[str, float]:
        return {
            "periods": float(self.stats_periods),
            "meta_subjobs": float(self.stats_meta_subjobs),
            "batched_jobs": float(self.stats_batched_jobs),
            "pending_jobs_at_end": float(len(self.pending_jobs)),
            "meta_queue_at_end": float(len(self.meta_queue)),
            "node_queued_at_end": float(
                sum(len(q) for q in self.node_queues.values())
            ),
        }
