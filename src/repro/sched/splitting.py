"""Job-splitting scheduling (§3.2, Table 1) — FCFS with intra-job
parallelism, no caching.

Jobs are split into equal subjobs over the idle nodes; when no node is
idle, the most over-parallelised running job (largest nodes-per-remaining-
event ratio) releases one node to the newcomer.  Freed nodes resume
suspended subjobs of the same job or split the largest running subjob.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from ..cluster.access import DataAccessPlanner, NoCachePlanner
from ..cluster.node import Node
from ..data.tertiary import TertiaryStorage
from ..workload.jobs import Job, Subjob
from .base import SchedulerPolicy, register_policy


@register_policy
class JobSplittingPolicy(SchedulerPolicy):
    """Table 1 of the paper."""

    name = "splitting"

    def __init__(self) -> None:
        super().__init__()
        self.queue: Deque[Job] = deque()
        self.running_jobs: List[Job] = []

    def make_planner(self, tertiary: TertiaryStorage) -> DataAccessPlanner:
        return NoCachePlanner(tertiary)

    # -- arrival (Table 1, "Upon job arrival") -----------------------------------

    def on_job_arrival(self, job: Job) -> None:
        idle = self.cluster.idle_nodes()
        if idle:
            # Split into equal subjobs, one per idle node (>= minimal size).
            root = job.make_root_subjob()
            pieces = root.split_remaining_even(len(idle), self.min_subjob_events)
            self.running_jobs.append(job)
            for node, piece in zip(idle, pieces):
                self.start_on(node, piece)
            return

        victim = self._most_parallelised_job()
        if victim is not None:
            released = self._release_one_node(victim)
            if released is not None:
                self.running_jobs.append(job)
                self.start_on(released, job.make_root_subjob())
                return
        self.queue.append(job)

    # -- subjob end, job continues (Table 1, "Upon subjob end") ---------------------

    def on_subjob_end(self, node: Node, subjob: Subjob) -> None:
        if not node.idle:
            return  # deferred completion (re-assigned) or node crashed
        job = subjob.job
        suspended = job.suspended_subjobs()
        if suspended:
            # Resume the largest suspended piece of the same job.
            suspended.sort(key=lambda s: -s.remaining_events)
            self.start_on(node, suspended[0])
            return
        self._feed_idle_node(node)

    # -- job end (Table 1, "Upon job end") ----------------------------------------------

    def on_job_end(self, node: Node, job: Job, subjob: Subjob) -> None:
        if job in self.running_jobs:
            self.running_jobs.remove(job)
        if not node.idle:
            return
        if self.queue:
            next_job = self.queue.popleft()
            self.running_jobs.append(next_job)
            self.start_on(node, next_job.make_root_subjob())
            return
        self._feed_idle_node(node)

    def on_node_recovered(self, node: Node) -> None:
        if node.idle:
            self._feed_idle_node(node)

    # -- internals ----------------------------------------------------------------------

    def _most_parallelised_job(self) -> Optional[Job]:
        """The running job with the largest nodes-per-remaining-event
        ratio among jobs holding more than one node."""
        best: Optional[Job] = None
        best_ratio = -1.0
        for job in self.running_jobs:
            nodes_held = job.nodes_held()
            if nodes_held < 2:
                continue  # a job never loses its last node (§3 principles)
            remaining = max(job.remaining_events, 1)
            ratio = nodes_held / remaining
            if ratio > best_ratio:
                best_ratio = ratio
                best = job
        return best

    def _release_one_node(self, job: Job) -> Optional[Node]:
        """Suspend one of ``job``'s running subjobs; return the freed node.

        Picks the subjob with the least remaining work (the smallest
        suspended quantum; Table 1 does not prescribe the choice)."""
        running = job.running_subjobs()
        if len(running) < 2:
            return None
        running.sort(key=lambda s: s.remaining_events)
        for candidate in running:
            node = candidate.node
            assert node is not None
            if node.preempt() is not None:
                return node
            # The candidate completed during preemption; try the next one
            # (the deferred completion will also free this node shortly,
            # but it is busy-free right now, so use it).
            if node.idle:
                return node
        return None

    def _feed_idle_node(self, node: Node) -> None:
        """Table 1: split the largest running subjob onto the free node."""
        if self.queue:
            # Defensive liveness guard: by Table 1's own induction the
            # queue is empty whenever a job holds several nodes, but a
            # queued job must never starve while a node idles.
            next_job = self.queue.popleft()
            self.running_jobs.append(next_job)
            self.start_on(node, next_job.make_root_subjob())
            return
        candidates = sorted(
            (
                s
                for job in self.running_jobs
                for s in job.running_subjobs()
            ),
            key=lambda s: -s.remaining_events,
        )
        for subjob in candidates:
            remaining = subjob.remaining
            if remaining.length < 2 * self.min_subjob_events:
                break  # sorted descending: nothing splittable remains
            midpoint = remaining.start + remaining.length // 2
            right = self.split_running_subjob(subjob, midpoint)
            if right is not None:
                self.start_on(node, right)
                return
        # Nothing splittable: the node idles until the next event.

    def describe(self) -> Dict[str, object]:
        return {"policy": self.name}

    def extra_stats(self) -> Dict[str, float]:
        return {"queued_jobs_at_end": float(len(self.queue))}
