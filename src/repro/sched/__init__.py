"""Scheduling policies (the paper's contribution) and their plugin
registry.

Importing this package registers all built-in policies:

========================  =============================================
name                      paper section
========================  =============================================
``farm``                  §3.1 processing-farm baseline
``splitting``             §3.2 / Table 1 job splitting
``cache-splitting``       §3.3 / Table 2 cache-oriented job splitting
``out-of-order``          §4.1 / Table 3 out-of-order scheduling
``replication``           §4.2 out-of-order + data replication
``delayed``               §5 / Table 4 delayed scheduling
``adaptive``              §6 adaptive delay scheduling
``mixed``                 §7 future work: delayed + immediate dispatch
``decentral``             beyond the paper: rule/bid/grant scheduling
``decentral-nolocal``     cache-blind decentral ablation
========================  =============================================
"""

from .base import (
    SchedulerContext,
    SchedulerPolicy,
    available_policies,
    best_subjob_for_node,
    create_policy,
    get_policy_class,
    policy_parameters,
    register_policy,
    split_interval_by_caches,
    suggest_policies,
    unknown_policy_message,
)
from .stats import SchedulerStats
from .adaptive import DEFAULT_DELAY_TABLE, AdaptiveDelayPolicy
from .cache_splitting import CacheOrientedSplittingPolicy
from .delayed import DelayedPolicy, compute_stripe_points
from .farm import ProcessingFarmPolicy
from .mixed import MixedDelayPolicy
from .out_of_order import OutOfOrderPolicy
from .replication import ReplicationPolicy
from .splitting import JobSplittingPolicy
from .decentral import DecentralNoLocalPolicy, DecentralPolicy

__all__ = [
    "SchedulerPolicy",
    "SchedulerContext",
    "SchedulerStats",
    "register_policy",
    "create_policy",
    "get_policy_class",
    "policy_parameters",
    "suggest_policies",
    "unknown_policy_message",
    "available_policies",
    "split_interval_by_caches",
    "best_subjob_for_node",
    "compute_stripe_points",
    "ProcessingFarmPolicy",
    "JobSplittingPolicy",
    "CacheOrientedSplittingPolicy",
    "OutOfOrderPolicy",
    "ReplicationPolicy",
    "DelayedPolicy",
    "AdaptiveDelayPolicy",
    "MixedDelayPolicy",
    "DecentralPolicy",
    "DecentralNoLocalPolicy",
    "DEFAULT_DELAY_TABLE",
]
