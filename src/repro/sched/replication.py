"""Out-of-order scheduling with inter-node data replication (§4.2).

Identical scheduling to :class:`OutOfOrderPolicy`; only the data path
changes: when a node processes data cached on *another* node, it reads the
segment from that node's disk over the network instead of re-fetching it
from tertiary storage, and replicates the segment into its own cache once
the cost of not having replicated exceeds the cost of replication — the
paper instantiates that online-replication rule as "replicate on the 3rd
remote access".

The paper's finding — reproduced by ``benchmarks/bench_replication.py`` —
is that this buys nothing: out-of-order splitting spreads every large
segment over many nodes, so the overloaded-node situation replication
targets occurs for well under 1 ‰ of job arrivals.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..cluster.access import (
    ContentionRemoteReadPlanner,
    DataAccessPlanner,
    RemoteReadPlanner,
)
from ..core import units
from ..data.tertiary import TertiaryStorage
from .base import SchedulerContext, register_policy
from .out_of_order import OutOfOrderPolicy


@register_policy
class ReplicationPolicy(OutOfOrderPolicy):
    """§4.2: out-of-order scheduling + remote reads + 3rd-access
    replication."""

    name = "replication"

    def __init__(
        self,
        fairness_timeout: float = 2 * units.DAY,
        replication_threshold: int = 3,
        replication_enabled: bool = True,
        network_contention: bool = False,
        link_capacity_streams: int = 4,
    ) -> None:
        super().__init__(fairness_timeout=fairness_timeout)
        self.replication_threshold = replication_threshold
        self.replication_enabled = replication_enabled
        self.network_contention = network_contention
        self.link_capacity_streams = link_capacity_streams
        self._planner: Optional[RemoteReadPlanner] = None

    def make_planner(self, tertiary: TertiaryStorage) -> DataAccessPlanner:
        if self.network_contention:
            # Stress variant: shared backbone + contended owner disks
            # (the ablate-network experiment; the paper assumes neither).
            self._planner = ContentionRemoteReadPlanner(
                tertiary,
                replication_threshold=self.replication_threshold,
                replication_enabled=self.replication_enabled,
                link_capacity_streams=self.link_capacity_streams,
            )
        else:
            self._planner = RemoteReadPlanner(
                tertiary,
                replication_threshold=self.replication_threshold,
                replication_enabled=self.replication_enabled,
            )
        return self._planner

    def bind(self, ctx: SchedulerContext) -> None:
        super().bind(ctx)
        assert self._planner is not None, "make_planner() must run before bind()"
        self._planner.set_peers(list(ctx.cluster))

    def describe(self) -> Dict[str, object]:
        info = super().describe()
        info.update(
            policy=self.name,
            replication_threshold=self.replication_threshold,
            replication_enabled=self.replication_enabled,
            network_contention=self.network_contention,
        )
        return info

    def extra_stats(self) -> Dict[str, float]:
        stats = super().extra_stats()
        if self._planner is not None:
            replication = self._planner.stats
            stats.update(
                remote_events=float(replication.remote_events),
                remote_chunks=float(replication.remote_chunks),
                replicated_events=float(replication.replicated_events),
                replication_events=float(replication.replication_events),
            )
        return stats
