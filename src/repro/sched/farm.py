"""Processing-farm scheduling (§3.1) — the baseline in use at CERN.

"Jobs are queued in front of the cluster and are transmitted to the first
available node.  This node remains dedicated to that job until its end.
No disk caching is performed."  The cluster behaves as an M/Er/m queue
(validated against the Allen–Cunneen approximation in
``repro.analysis.queueing``).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict

from ..cluster.access import DataAccessPlanner, NoCachePlanner
from ..cluster.node import Node
from ..data.tertiary import TertiaryStorage
from ..workload.jobs import Job, Subjob
from .base import SchedulerPolicy, register_policy


@register_policy
class ProcessingFarmPolicy(SchedulerPolicy):
    """FCFS, one whole job per node, no caching, no splitting."""

    name = "farm"

    def __init__(self) -> None:
        super().__init__()
        self.queue: Deque[Job] = deque()

    def make_planner(self, tertiary: TertiaryStorage) -> DataAccessPlanner:
        return NoCachePlanner(tertiary)

    # -- notifications -------------------------------------------------------

    def on_job_arrival(self, job: Job) -> None:
        idle = self.cluster.idle_nodes()
        if idle:
            self._run_whole_job(idle[0], job)
        else:
            self.queue.append(job)

    def on_subjob_end(self, node: Node, subjob: Subjob) -> None:
        # A farm job has exactly one subjob, so a subjob end is always a
        # job end; reaching here means an invariant broke.
        raise AssertionError("farm jobs have a single subjob")

    def on_job_end(self, node: Node, job: Job, subjob: Subjob) -> None:
        if self.queue and node.idle:
            self._run_whole_job(node, self.queue.popleft())

    def on_node_recovered(self, node: Node) -> None:
        # The farm only dispatches on arrivals and completions; a node
        # coming back up is a third dispatch opportunity.
        if self.queue and node.idle:
            self._run_whole_job(node, self.queue.popleft())

    # -- internals ----------------------------------------------------------------

    def _run_whole_job(self, node: Node, job: Job) -> None:
        subjob = job.make_root_subjob()
        self.start_on(node, subjob)

    def describe(self) -> Dict[str, object]:
        return {"policy": self.name}

    def extra_stats(self) -> Dict[str, float]:
        return {"queued_jobs_at_end": float(len(self.queue))}
