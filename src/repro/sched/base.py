"""Scheduler-policy framework: base class, plugin registry, shared helpers.

The paper's scheduler "implements a plugin model, enabling new scheduling
policies to be easily added"; this module is that plugin model.  A policy
receives three notifications from the simulator —

* :meth:`SchedulerPolicy.on_job_arrival`,
* :meth:`SchedulerPolicy.on_subjob_end` (a subjob finished but its job has
  more work), and
* :meth:`SchedulerPolicy.on_job_end` (a subjob finished and completed its
  job)

— and acts by starting/preempting subjobs on nodes.  The paper's two basic
principles (§3) are invariants every policy here maintains: a started job
always keeps at least one node or queued/suspended work that the policy
will resume, and the policy documents its job-start ordering.
"""

from __future__ import annotations

import difflib
import inspect
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Type

from ..cluster.access import CachingPlanner, DataAccessPlanner
from ..cluster.cluster import Cluster
from ..cluster.node import Node
from ..core.engine import Engine
from ..core.errors import ConfigurationError, SchedulingError
from ..core.rng import RandomStreams
from ..data.intervals import Interval
from ..data.tertiary import TertiaryStorage
from ..obs.hooks import NULL_BUS, HookBus, kinds
from ..workload.jobs import Job, Subjob

if TYPE_CHECKING:  # pragma: no cover
    # Imported lazily to avoid a package cycle: sim.simulator imports this
    # module, and sim.config is only needed here for type hints.
    from ..faults.net import ControlChannel
    from ..sim.config import SimulationConfig
    from ..topo.tree import TopologyView
    from .stats import SchedulerStats


class SchedulerContext:
    """Everything a policy may touch, bundled at bind time.

    ``streams`` is the simulation's :class:`~repro.core.rng.RandomStreams`
    factory; policies that need randomness must draw from a dedicated
    ``sched.*`` named stream (mirroring the ``faults.*`` discipline) so
    adding a stochastic policy never perturbs workload or fault draws.
    """

    def __init__(
        self,
        engine: Engine,
        cluster: Cluster,
        config: "SimulationConfig",
        tertiary: TertiaryStorage,
        obs: HookBus = NULL_BUS,
        streams: Optional[RandomStreams] = None,
        channel: Optional["ControlChannel"] = None,
        topo: Optional["TopologyView"] = None,
    ) -> None:
        self.engine = engine
        self.cluster = cluster
        self.config = config
        self.tertiary = tertiary
        self.obs = obs
        self.streams = streams
        #: Unreliable control LAN (repro.faults.net); ``None`` on a
        #: perfect network, in which case dispatches are synchronous.
        self.channel = channel
        #: Hierarchical topology (repro.topo); ``None`` on the paper's
        #: flat cluster, in which case all tier distances are zero.
        self.topo = topo

    @property
    def now(self) -> float:
        return self.engine.now


class SchedulerPolicy(ABC):
    """Base class of all scheduling policies."""

    #: Registry key; subclasses must override.
    name: str = ""

    #: Whether dispatches are master→node control messages that must ride
    #: the unreliable channel when one is enabled.  Decentral policies set
    #: this ``False``: a grant already moved the task to the node, so its
    #: local queue→CPU handoff is not LAN traffic (their control messages
    #: — bids, grants, leases — go through the channel explicitly).
    uses_central_dispatch: bool = True

    def __init__(self) -> None:
        self.ctx: Optional[SchedulerContext] = None

    # -- lifecycle ----------------------------------------------------------

    def make_planner(self, tertiary: TertiaryStorage) -> DataAccessPlanner:
        """The data-access planner this policy installs on the nodes.

        Default: local LRU caching with write-through (cache-aware
        policies).  Cache-less policies override this.
        """
        return CachingPlanner(tertiary)

    def bind(self, ctx: SchedulerContext) -> None:
        """Attach to a simulation; called once before the first arrival."""
        self.ctx = ctx

    # -- notifications ---------------------------------------------------------

    @abstractmethod
    def on_job_arrival(self, job: Job) -> None:
        """A new job entered the system."""

    @abstractmethod
    def on_subjob_end(self, node: Node, subjob: Subjob) -> None:
        """``subjob`` finished on ``node``; its job still has open work.

        ``node`` may already be busy again if the completion was delivered
        through a deferred event after a preemption — handlers must check
        ``node.idle``.
        """

    @abstractmethod
    def on_job_end(self, node: Node, job: Job, subjob: Subjob) -> None:
        """``subjob`` finished on ``node`` and completed ``job``."""

    # -- fault notifications (repro.faults) ---------------------------------

    def on_node_failed(self, node: Node, aborted: Optional[Subjob]) -> None:
        """``node`` crashed; ``aborted`` is its interrupted subjob, if any.

        Called *after* the node entered the failed state (the aborted
        subjob is SUSPENDED and owned by the recovery manager — policies
        must not restart it here; it comes back via the retry path).
        The default drops any policy-internal queue state targeting the
        dead node; policies with per-node queues override.
        """

    def on_node_recovered(self, node: Node) -> None:
        """``node`` came back up, idle and (unless wiped) with its cache.

        Default: no action — work reaches the node through the normal
        completion/arrival flow.  Policies that only feed nodes on their
        own events should override and feed the node here.
        """

    def pick_retry_node(self, subjob: Subjob) -> Optional[Node]:
        """Choose an idle node to re-dispatch an aborted subjob onto.

        Default: the idle node with the most of the subjob's *remaining*
        data cached, ties broken by lowest node id — cache-preserving for
        cache-aware policies and naturally first-idle for cache-less ones
        (their node caches never hold anything).  ``None`` = no idle node;
        the recovery manager re-offers the subjob on the next drain point.
        """
        best: Optional[Node] = None
        best_key: Tuple[int, int] = (-1, 1)
        for node in self.cluster.idle_nodes():
            key = (node.cache.cached_events(subjob.remaining), -node.node_id)
            if key > best_key:
                best_key = key
                best = node
        return best

    # -- reporting ----------------------------------------------------------------

    def describe(self) -> Dict[str, object]:
        """Policy parameters for reports."""
        return {"policy": self.name}

    def extra_stats(self) -> Dict[str, float]:
        """Policy-specific counters for reports (fairness promotions,
        replications, ...)."""
        return {}

    def scheduler_stats(self) -> Optional["SchedulerStats"]:
        """Real control-plane accounting, for policies that measure it.

        ``None`` (the default) means the policy is a classic central
        push scheduler; the simulator then synthesizes a
        :meth:`~repro.sched.stats.SchedulerStats.central_estimate` from
        node dispatch counters so every result carries comparable
        scheduler-traffic numbers.
        """
        return None

    # -- shared helpers ---------------------------------------------------------------

    @property
    def cluster(self) -> Cluster:
        assert self.ctx is not None, "policy used before bind()"
        return self.ctx.cluster

    @property
    def engine(self) -> Engine:
        assert self.ctx is not None, "policy used before bind()"
        return self.ctx.engine

    @property
    def config(self) -> "SimulationConfig":
        assert self.ctx is not None, "policy used before bind()"
        return self.ctx.config

    @property
    def min_subjob_events(self) -> int:
        return self.config.min_subjob_events

    @property
    def obs(self) -> HookBus:
        """The simulation's hook bus (disabled singleton before bind)."""
        return self.ctx.obs if self.ctx is not None else NULL_BUS

    def tier_distance(self, node_a: Node, node_b: Node) -> int:
        """Tier-tree hops between two nodes (0 on flat topologies).

        The locality score cache-aware policies use as a tie-break;
        distance-blind policies simply never call it.
        """
        ctx = self.ctx
        if ctx is None or ctx.topo is None:
            return 0
        return ctx.topo.distance(node_a.node_id, node_b.node_id)

    def emit(self, kind: str, **fields: object) -> None:
        """Emit one trace event stamped with the current simulation time.

        Callers on hot paths should guard with ``if self.obs.enabled:``
        to skip field construction when tracing is off.
        """
        ctx = self.ctx
        if ctx is None or not ctx.obs.enabled:
            return
        ctx.obs.emit(ctx.engine.now, kind, "sched", **fields)

    def start_on(self, node: Node, subjob: Subjob) -> None:
        """Start ``subjob`` on ``node`` (thin, assert-friendly wrapper).

        On an unreliable control plane this is where central dispatch
        becomes a reliable message: the node is reserved and the start
        happens when (and if) the dispatch is delivered — see
        :meth:`~repro.faults.net.ControlChannel.dispatch`.
        """
        if not node.idle:
            raise SchedulingError(
                f"{self.name}: node {node.node_id} not idle "
                f"(busy={node.busy}, failed={node.failed})"
            )
        ctx = self.ctx
        if (
            ctx is not None
            and ctx.channel is not None
            and ctx.channel.enabled
            and self.uses_central_dispatch
        ):
            ctx.channel.dispatch(node, subjob)
            return
        node.start(subjob)

    def split_running_subjob(self, subjob: Subjob, point: int) -> Optional[Subjob]:
        """Split a *running* subjob's remaining work at ``point``.

        Preempts its node, splits, resumes the left half there, and
        returns the right half (PENDING).  Returns ``None`` if the subjob
        completed during preemption or the point fell outside the
        remaining range after the preemption progress update.
        """
        node = subjob.node
        if node is None:
            raise SchedulingError(f"subjob {subjob.sid} is not running")
        suspended = node.preempt()
        if suspended is None:
            return None  # finished exactly now
        remaining = suspended.remaining
        if not (remaining.start < point < remaining.end):
            node.start(suspended)
            return None
        right = suspended.split_remaining_at(point)
        if self.obs.enabled:
            self.emit(
                kinds.SUBJOB_SPLIT,
                node=node.node_id,
                job=subjob.job.job_id,
                sid=subjob.sid,
                right_sid=right.sid,
                point=point,
            )
        node.start(suspended)
        return right


# ---------------------------------------------------------------------------
# Plugin registry
# ---------------------------------------------------------------------------

_REGISTRY: Dict[str, Type[SchedulerPolicy]] = {}


def register_policy(cls: Type[SchedulerPolicy]) -> Type[SchedulerPolicy]:
    """Class decorator adding a policy to the registry by its ``name``.

    Re-registering a taken name is always an error — even for the same
    class — so a double import or a copy-pasted plugin fails loudly
    instead of silently shadowing an existing policy.
    """
    if not cls.name:
        raise ConfigurationError(f"policy class {cls.__name__} has no name")
    if cls.name in _REGISTRY:
        taken_by = _REGISTRY[cls.name].__name__
        raise ConfigurationError(
            f"duplicate policy name {cls.name!r}: already registered by "
            f"{taken_by}; pick a unique SchedulerPolicy.name for "
            f"{cls.__name__}"
        )
    _REGISTRY[cls.name] = cls
    return cls


def available_policies() -> List[str]:
    """Registered policy names, stably sorted (lexicographic)."""
    return sorted(_REGISTRY)


def get_policy_class(name: str) -> Type[SchedulerPolicy]:
    """The registered class for ``name`` (with did-you-mean on misses)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(unknown_policy_message(name)) from None


def suggest_policies(name: str, limit: int = 3) -> List[str]:
    """Closest registered policy names to a misspelled ``name``."""
    return difflib.get_close_matches(
        name, available_policies(), n=limit, cutoff=0.4
    )


def unknown_policy_message(name: str) -> str:
    """The shared unknown-policy error text (CLI and library paths)."""
    message = (
        f"unknown policy {name!r}; available: {', '.join(available_policies())}"
    )
    suggestions = suggest_policies(name)
    if suggestions:
        message += f" (did you mean: {', '.join(suggestions)}?)"
    return message


def policy_parameters(name: str) -> Dict[str, object]:
    """The tunable constructor parameters of a policy and their defaults.

    Parameters without a default map to the string ``"required"``.
    """
    signature = inspect.signature(get_policy_class(name).__init__)
    params: Dict[str, object] = {}
    for parameter in list(signature.parameters.values())[1:]:  # skip self
        if parameter.kind in (
            inspect.Parameter.VAR_POSITIONAL,
            inspect.Parameter.VAR_KEYWORD,
        ):
            continue
        params[parameter.name] = (
            "required"
            if parameter.default is inspect.Parameter.empty
            else parameter.default
        )
    return params


def create_policy(name: str, **params: object) -> SchedulerPolicy:
    """Instantiate a registered policy by name."""
    return get_policy_class(name)(**params)


# ---------------------------------------------------------------------------
# Shared splitting helpers
# ---------------------------------------------------------------------------


def split_interval_by_caches(
    segment: Interval,
    cluster: Cluster,
    min_events: int,
) -> List[Tuple[Interval, Optional[Node]]]:
    """Partition ``segment`` into pieces that are each fully cached on one
    node or fully uncached (Tables 2–4: "data processed by a given subjob
    should always either be fully cached on a node or not cached at all").

    Pieces shorter than ``min_events`` are merged into a neighbour (the
    paper's minimal job size), which may make that neighbour's tag
    slightly inexact — the planner charges actual hit/miss costs per
    chunk, so only the *placement hint* blurs.

    Returns ``(piece, node)`` pairs in segment order; ``node`` is the node
    caching the piece (``None`` = uncached).  When two nodes cache the
    same events (possible after work stealing), the lower-id node wins —
    deterministic and unbiased since node ids carry no meaning.
    """
    # 1. Claim cached parts, lower node id first.
    claims: List[Tuple[Interval, Optional[Node]]] = []
    from ..data.intervals import IntervalSet  # local import to avoid cycle noise

    unclaimed = IntervalSet([segment])
    for node in cluster:
        if not unclaimed:
            break
        if node.failed:
            continue  # a dead node's cache must not attract placements
        parts = node.cache.cached_parts(segment).intersection(unclaimed)
        for part in parts:
            claims.append((part, node))
        unclaimed = unclaimed.difference(parts)
    for part in unclaimed:
        claims.append((part, None))
    claims.sort(key=lambda item: item[0].start)

    # 2. Merge undersized pieces into a neighbour.
    merged: List[Tuple[Interval, Optional[Node]]] = []
    for piece, owner in claims:
        if merged and (
            piece.length < min_events or merged[-1][0].length < min_events
        ):
            previous, previous_owner = merged[-1]
            keep_owner = (
                previous_owner
                if previous.length >= piece.length
                else owner
            )
            merged[-1] = (Interval(previous.start, piece.end), keep_owner)
        else:
            merged.append((piece, owner))
    return merged


def best_subjob_for_node(
    node: Node, candidates: List[Subjob]
) -> Optional[Subjob]:
    """The candidate with the most remaining data cached on ``node``
    (ties → largest remaining, then arrival order)."""
    best: Optional[Subjob] = None
    best_key: Tuple[int, int] = (-1, -1)
    for subjob in candidates:
        cached = node.cache.cached_events(subjob.remaining)
        key = (cached, subjob.remaining_events)
        if key > best_key:
            best_key = key
            best = subjob
    return best
