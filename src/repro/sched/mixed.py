"""Mixed immediate/delayed scheduling — the paper's §7 future work.

"We also intend to study mixed scheduling strategies combining period
delays and immediate processing of job requests."

This policy accumulates jobs into periods like the delayed scheduler, but
a job arriving while some node is idle is scheduled immediately (with the
same stripe-splitting machinery): the cluster never idles while work
waits for a boundary, removing delayed scheduling's worst low-load
pathology while keeping its batching benefit under saturation pressure.
"""

from __future__ import annotations

from typing import Dict

from ..core import units
from ..workload.jobs import Job
from .base import register_policy
from .delayed import DelayedPolicy


@register_policy
class MixedDelayPolicy(DelayedPolicy):
    """Delayed scheduling with immediate dispatch onto idle capacity."""

    name = "mixed"

    def __init__(
        self, period: float = 2 * units.DAY, stripe_events: int = 5_000
    ) -> None:
        super().__init__(period=period, stripe_events=stripe_events)
        self.stats_immediate_jobs = 0

    def on_job_arrival(self, job: Job) -> None:
        if self.period > 0 and not self.cluster.idle_nodes():
            self.pending_jobs.append(job)
            return
        self.stats_immediate_jobs += 1
        job.schedule_time = self.engine.now
        self._schedule_batch([job])

    def describe(self) -> Dict[str, object]:
        info = super().describe()
        info["policy"] = self.name
        return info

    def extra_stats(self) -> Dict[str, float]:
        stats = super().extra_stats()
        stats["immediate_jobs"] = float(self.stats_immediate_jobs)
        return stats
