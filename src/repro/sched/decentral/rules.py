"""Rules: declarative task-generation specs published by the arbiter.

A rule does not name nodes or subjobs — it fixes, once, a deterministic
tiling of a job's segment into integer-indexed *tasks*.  Every node
expands the same rule to the same task boundaries, so a bid can refer to
a task by index alone (the PYME trick: the server arbitrates integers,
not work descriptions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ...core.errors import SchedulingError
from ...data.intervals import Interval
from ...workload.jobs import Job, Subjob


def plan_tasks(segment: Interval, task_events: int, min_events: int) -> List[Interval]:
    """The fixed task tiling of ``segment``: ``task_events``-sized pieces
    in segment order, with a tail shorter than ``min_events`` merged into
    its left neighbour (the paper's minimal-subjob-size rule).

    Deterministic in its arguments — every node derives identical
    boundaries from the published rule.

    >>> plan_tasks(Interval(0, 500), 200, 10)
    [Interval(0, 200), Interval(200, 400), Interval(400, 500)]
    >>> plan_tasks(Interval(0, 405), 200, 10)
    [Interval(0, 200), Interval(200, 405)]
    """
    if segment.empty:
        raise SchedulingError(f"cannot plan tasks over empty segment {segment}")
    size = max(int(task_events), int(min_events), 1)
    pieces = [
        Interval(start, min(start + size, segment.end))
        for start in range(segment.start, segment.end, size)
    ]
    if len(pieces) > 1 and pieces[-1].length < min_events:
        tail = pieces.pop()
        pieces[-1] = Interval(pieces[-1].start, tail.end)
    return pieces


@dataclass
class Rule:
    """One published rule: a job plus its not-yet-granted tasks.

    ``pending`` holds the tasks no grant has claimed, in segment order;
    the arbiter removes tasks when granting and re-inserts them (sorted)
    when a grant bounces off a failed node.
    """

    job: Job
    pending: List[Subjob] = field(default_factory=list)

    @property
    def job_id(self) -> int:
        return self.job.job_id

    @property
    def arrival_time(self) -> float:
        """Aging key: older rules enter the bid window first."""
        return self.job.arrival_time

    def take(self, task: Subjob) -> None:
        """Remove a granted task from the pending set."""
        self.pending.remove(task)

    def put_back(self, tasks: List[Subjob]) -> None:
        """Return bounced tasks, restoring deterministic segment order."""
        self.pending.extend(tasks)
        self.pending.sort(key=lambda subjob: subjob.segment.start)


def expand_rule(job: Job, task_events: int, min_events: int) -> Rule:
    """Materialise a job's rule: tile the segment once (``make_subjobs``
    must see the full partition) and mark every task pending."""
    subjobs = job.make_subjobs(plan_tasks(job.segment, task_events, min_events))
    return Rule(job=job, pending=list(subjobs))
