"""The decentralized rule/bid scheduling policies.

Lifecycle of a unit of work (rule → bid → grant):

1. **Rule** — on job arrival the arbiter publishes a rule; every node
   derives the same fixed task tiling from it (:mod:`.rules`).
2. **Bid** — when a node goes hungry (idle, grant queue empty) an
   arbitration round is scheduled after a short coalescing latency.  At
   the round, each hungry node scores the candidate window of pending
   tasks against its *local* cache (:mod:`.bidding`).  A node pays for
   one **standing bid** message when it posts its offer (cache digest +
   availability) to the board; the offer stays valid — and exact,
   because an idle node's cache cannot change — until a grant consumes
   it, so later rounds re-match it for free.
3. **Grant** — the arbiter matches highest scores first with seeded
   tie-breaking (:mod:`.arbiter`) and answers each winning node with one
   batched grant of up to ``grant_batch`` tasks.  Grants land after the
   control-plane transfer time charged by :class:`.costs.ControlCostModel`;
   a node works through its grant queue without further arbiter traffic
   and only bids again when the queue drains.

Faults compose through the standard hooks: a grant that reaches a failed
node bounces back into the rule's pending set, a failed node's queued
grants are re-pended, and the aborted running subjob returns through the
recovery manager's retry path untouched.

Determinism: every decision runs inside engine events, and the only
randomness is the ``sched.arbiter`` stream (mirroring the ``faults.*``
pattern) — so runs are bit-identical for a given seed, unchanged by the
sanitizer, process pools, result-cache hits or resumed sweeps.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from ...faults.net import ControlChannel

from ...core import units
from ...core.events import EventPriority
from ...core.rng import RandomStreams
from ...cluster.node import Node
from ...obs.hooks import kinds
from ...workload.jobs import Job, Subjob
from ..base import SchedulerContext, SchedulerPolicy, register_policy
from ..stats import SchedulerStats
from .arbiter import Bid, arbitrate
from .bidding import score_candidate
from .costs import ControlCostModel
from .rules import Rule, expand_rule

#: Default anti-starvation horizon: a task this old outscores a fully
#: cached competitor even with zero locality of its own.
DEFAULT_AGING_TAU = 6 * units.HOUR

#: Default bid coalescing window (seconds) between the hunger trigger
#: and the arbitration round.
DEFAULT_ROUND_LATENCY = 0.05


@register_policy
class DecentralPolicy(SchedulerPolicy):
    """Locality-aware rule/bid scheduling (beyond the paper)."""

    name = "decentral"
    #: Weight of the locality/cost term; the cache-blind ablation zeroes it.
    locality_weight: float = 1.0
    #: A grant already moved the task to the node: the queue→CPU handoff
    #: is node-local, not LAN traffic.  The policy's real control
    #: messages (bids, grants, leases) ride the channel explicitly.
    uses_central_dispatch = False

    def __init__(
        self,
        task_events: Optional[int] = None,
        grant_batch: int = 4,
        bid_window: int = 128,
        round_latency: float = DEFAULT_ROUND_LATENCY,
        aging_tau: float = DEFAULT_AGING_TAU,
        costs: Optional[ControlCostModel] = None,
    ) -> None:
        super().__init__()
        #: Task size in events (default: the config's chunk size at bind).
        self.task_events = task_events
        self.grant_batch = int(grant_batch)
        self.bid_window = int(bid_window)
        self.round_latency = float(round_latency)
        self.aging_tau = float(aging_tau)
        self.costs = costs if costs is not None else ControlCostModel()
        #: Active rules by job id (insertion = arrival order).
        self.rules: Dict[int, Rule] = {}
        #: Granted-but-not-started tasks per node.
        self.node_queues: Dict[int, Deque[Subjob]] = {}
        #: Nodes whose standing bid (offer + cache digest) is on the
        #: board; they re-enter rounds without a new message until a
        #: grant consumes the offer.
        self._standing: set = set()
        self._round_pending = False
        self._rng: Optional[np.random.Generator] = None
        # -- control-plane counters (SchedulerStats) -----------------------
        self.stat_rounds = 0
        self.stat_rules = 0
        self.stat_bids = 0
        self.stat_grants = 0
        self.stat_messages = 0
        self.stat_control_bytes = 0
        self.stat_control_seconds = 0.0
        self.stat_grant_bounces = 0
        # -- control-plane reliability (repro.faults.net) -------------------
        self.stat_bid_losses = 0
        self.stat_grant_dead_letters = 0
        self.stat_failovers = 0
        self._lease_misses = 0

    def bind(self, ctx: SchedulerContext) -> None:
        super().bind(ctx)
        self.node_queues = {node.node_id: deque() for node in ctx.cluster}
        streams = ctx.streams
        if streams is None:  # manually built contexts (unit tests)
            streams = RandomStreams(ctx.config.seed)
        self._rng = streams.get("sched.arbiter")
        channel = ctx.channel
        if channel is not None and channel.enabled:
            # Arbiter liveness: a lease beat every lease_interval; enough
            # consecutive lost beats trigger a failover re-election.
            interval = channel.config.lease_interval
            if interval <= ctx.config.duration:
                ctx.engine.call_after(
                    interval,
                    self._lease_tick,
                    priority=EventPriority.TIMER,
                    label="sched.lease",
                )

    @property
    def _channel(self) -> Optional["ControlChannel"]:
        """The enabled control channel, or ``None`` on a perfect LAN."""
        ctx = self.ctx
        if ctx is None or ctx.channel is None or not ctx.channel.enabled:
            return None
        return ctx.channel

    # -- rule publication (job arrival) -------------------------------------

    def on_job_arrival(self, job: Job) -> None:
        size = self.task_events if self.task_events else self.config.chunk_events
        rule = expand_rule(job, size, self.min_subjob_events)
        self.rules[job.job_id] = rule
        self.stat_rules += 1
        self._charge(self.costs.rule_bytes, 1)
        if self.obs.enabled:
            self.emit(
                kinds.RULE_PUBLISH,
                job=job.job_id,
                tasks=len(rule.pending),
                events=job.n_events,
            )
        self._request_round()

    # -- completions ---------------------------------------------------------

    def on_subjob_end(self, node: Node, subjob: Subjob) -> None:
        self._after_completion(node)

    def on_job_end(self, node: Node, job: Job, subjob: Subjob) -> None:
        # A done job has every subjob DONE, so its rule's pending set is
        # empty and no queue holds its tasks — safe to retire.
        self.rules.pop(job.job_id, None)
        self._after_completion(node)

    def _after_completion(self, node: Node) -> None:
        if node.idle:
            self._feed(node)
        if node.idle and not self.node_queues[node.node_id]:
            self._request_round()

    # -- faults --------------------------------------------------------------

    def on_node_failed(self, node: Node, aborted: Optional[Subjob]) -> None:
        """Re-pend the dead node's grant queue; the aborted running
        subjob stays with the recovery manager's retry path."""
        queue = self.node_queues[node.node_id]
        if queue:
            self._repend(list(queue))
            queue.clear()
        self._standing.discard(node.node_id)
        self._request_round()

    def on_node_recovered(self, node: Node) -> None:
        self._request_round()

    # -- arbitration rounds --------------------------------------------------

    def _request_round(self) -> None:
        """Schedule one coalesced arbitration round after the bid latency."""
        if self._round_pending:
            return
        if not any(rule.pending for rule in self.rules.values()):
            return
        self._round_pending = True
        self.engine.call_after(
            self.round_latency,
            self._run_round,
            priority=EventPriority.TIMER,
            label="sched.round",
        )

    def _hungry_nodes(self) -> List[Node]:
        """Nodes that would bid: idle with a drained grant queue."""
        return [
            node
            for node in self.cluster.idle_nodes()
            if not self.node_queues[node.node_id]
        ]

    def _candidate_window(self) -> List[Subjob]:
        """Pending tasks offered this round, oldest rules first (aging
        order), bounded by ``bid_window`` to cap per-round work."""
        window: List[Subjob] = []
        rules = sorted(
            (rule for rule in self.rules.values() if rule.pending),
            key=lambda rule: (rule.arrival_time, rule.job_id),
        )
        for rule in rules:
            window.extend(rule.pending)
            if len(window) >= self.bid_window:
                break
        return window[: self.bid_window]

    def _run_round(self) -> None:
        self._round_pending = False
        bidders = self._hungry_nodes()
        candidates = self._candidate_window()
        if not bidders or not candidates:
            return
        now = self.engine.now
        bids: List[Bid] = []
        round_bytes = 0
        round_messages = 0
        channel = self._channel
        for node in bidders:
            depth = len(self.node_queues[node.node_id])
            node_bids = [
                Bid(
                    node_id=node.node_id,
                    task_index=index,
                    score=score_candidate(
                        node.cache,
                        self.cluster.cost_model,
                        task.remaining,
                        now - task.job.arrival_time,
                        locality_weight=self.locality_weight,
                        aging_tau=self.aging_tau,
                        queue_depth=depth,
                    ),
                )
                for index, task in enumerate(candidates)
            ]
            if node.node_id not in self._standing:
                # First round since this node went hungry: it posts its
                # standing offer.  While idle its cache is frozen, so
                # the posted digest stays exact and later rounds match
                # it without new traffic.  The post is charged whether or
                # not the LAN delivers it — the bytes went on the wire.
                round_bytes += self.costs.bid_bytes(len(candidates))
                round_messages += 1
                if channel is not None and not channel.attempt(
                    kind="bid", node=node.node_id
                ):
                    # Lost post: this round never saw the node's offer.
                    # The node re-advertises after its bid timeout — a
                    # fresh round where it is still hungry and unposted.
                    self.stat_bid_losses += 1
                    self.engine.call_after(
                        channel.config.ack_timeout,
                        self._request_round,
                        priority=EventPriority.TIMER,
                        label="sched.rebid",
                    )
                    continue
                self._standing.add(node.node_id)
            bids.extend(node_bids)
        assert self._rng is not None, "policy used before bind()"
        granted = arbitrate(bids, self.grant_batch, self._rng)
        grants: List[Tuple[int, List[Subjob]]] = []
        for node_id in sorted(granted):
            tasks = [candidates[index] for index in granted[node_id]]
            for task in tasks:
                self.rules[task.job.job_id].take(task)
            grants.append((node_id, tasks))
            round_bytes += self.costs.grant_bytes(len(tasks))
            round_messages += 1
        self.stat_rounds += 1
        self.stat_bids += len(bids)
        self.stat_grants += sum(len(tasks) for _, tasks in grants)
        delay = self._charge(round_bytes, round_messages)
        if self.obs.enabled:
            self.emit(
                kinds.BID_ROUND,
                bidders=len(bidders),
                candidates=len(candidates),
                bids=len(bids),
                granted=sum(len(tasks) for _, tasks in grants),
            )
        if grants:
            # Grants land after the control traffic has moved.  On an
            # unreliable LAN each grant becomes a reliable message with
            # idempotent (channel-deduplicated) delivery and a dead-letter
            # path that re-pends the granted tasks.
            apply = self._apply_grants if channel is None else self._send_grants
            self.engine.call_after(
                delay,
                apply,
                grants,
                priority=EventPriority.TIMER,
                label="sched.grant",
            )

    def _apply_grants(self, grants: List[Tuple[int, List[Subjob]]]) -> None:
        """Perfect-LAN path: every grant lands at once."""
        bounced = False
        for node_id, tasks in grants:
            bounced |= not self._land_grant(node_id, tasks)
        if bounced:
            self._request_round()

    def _send_grants(self, grants: List[Tuple[int, List[Subjob]]]) -> None:
        """Lossy-LAN path: one reliable message per granted node."""
        channel = self._channel
        assert channel is not None
        for node_id, tasks in grants:
            channel.send_reliable(
                lambda node_id=node_id, tasks=tasks: self._deliver_grant(
                    node_id, tasks
                ),
                kind="grant",
                node=node_id,
                on_dead_letter=lambda node_id=node_id, tasks=tasks: (
                    self._grant_dead_letter(node_id, tasks)
                ),
            )

    def _deliver_grant(self, node_id: int, tasks: List[Subjob]) -> None:
        if not self._land_grant(node_id, tasks):
            self._request_round()

    def _grant_dead_letter(self, node_id: int, tasks: List[Subjob]) -> None:
        """The grant never made it: put the tasks back on the board."""
        self._standing.discard(node_id)
        self.stat_grant_dead_letters += 1
        self._repend(tasks)
        self._request_round()

    def _land_grant(self, node_id: int, tasks: List[Subjob]) -> bool:
        """Apply one grant on its node; ``False`` = bounced off a crash."""
        node = self.cluster[node_id]
        # Granted or dead, the node's standing offer leaves the board.
        self._standing.discard(node_id)
        if node.failed:
            # The node died mid-round; its grant bounces back.
            self.stat_grant_bounces += 1
            self._repend(tasks)
            return False
        if self.obs.enabled:
            self.emit(
                kinds.TASK_GRANT,
                node=node_id,
                tasks=len(tasks),
                sids=",".join(task.sid for task in tasks),
            )
        self.node_queues[node_id].extend(tasks)
        if node.idle:
            self._feed(node)
        return True

    def _repend(self, tasks: List[Subjob]) -> None:
        by_job: Dict[int, List[Subjob]] = {}
        for task in tasks:
            by_job.setdefault(task.job.job_id, []).append(task)
        for job_id, group in by_job.items():
            self.rules[job_id].put_back(group)

    def _feed(self, node: Node) -> None:
        queue = self.node_queues[node.node_id]
        if queue:
            self.start_on(node, queue.popleft())

    def _charge(self, payload_bytes: int, messages: int) -> float:
        """Account control traffic; returns its simulated transfer time."""
        seconds = self.costs.transfer_seconds(payload_bytes, messages)
        self.stat_messages += messages
        self.stat_control_bytes += payload_bytes
        self.stat_control_seconds += seconds
        return seconds

    # -- arbiter liveness (repro.faults.net) ---------------------------------

    def _lease_tick(self) -> None:
        """One arbiter lease beat on the lossy LAN.

        Enough consecutive lost beats and the nodes declare the arbiter
        dead: a failover re-election runs.  The channel being the only
        loss source, this deliberately conflates "arbiter crashed" with
        "arbiter unreachable" — indistinguishable from a node's chair.
        """
        channel = self._channel
        if channel is None:
            return
        config = channel.config
        self._charge(self.costs.bid_header_bytes, 1)
        if channel.attempt(kind="lease"):
            self._lease_misses = 0
        else:
            self._lease_misses += 1
            if self._lease_misses >= config.lease_misses:
                self._failover()
                self._lease_misses = 0
        if self.engine.now + config.lease_interval <= self.config.duration:
            self.engine.call_after(
                config.lease_interval,
                self._lease_tick,
                priority=EventPriority.TIMER,
                label="sched.lease",
            )

    def _failover(self) -> None:
        """Deterministic arbiter re-election after a lost lease.

        Every live node votes for the lowest-id live node (ids give a
        total order, so one round converges); the new arbiter's bulletin
        board starts empty, which forces every hungry node to re-post its
        standing offer — the grant/rule state lives in the (replicated)
        rules, so no work is lost.
        """
        channel = self._channel
        assert channel is not None
        self.stat_failovers += 1
        channel.stats.failovers += 1
        live = [node for node in self.cluster if not node.failed]
        self._charge(len(live) * self.costs.bid_header_bytes, len(live))
        self._standing.clear()
        if self.obs.enabled:
            self.emit(kinds.NET_FAILOVER, nodes=len(live))
        self._request_round()

    # -- reporting -----------------------------------------------------------

    def scheduler_stats(self) -> Optional[SchedulerStats]:
        return SchedulerStats(
            mode="decentral",
            rounds=self.stat_rounds,
            rules_published=self.stat_rules,
            bids=self.stat_bids,
            grants=self.stat_grants,
            messages=self.stat_messages,
            control_bytes=self.stat_control_bytes,
            control_seconds=self.stat_control_seconds,
        )

    def describe(self) -> Dict[str, object]:
        return {
            "policy": self.name,
            "task_events": self.task_events,
            "grant_batch": self.grant_batch,
            "bid_window": self.bid_window,
            "round_latency": self.round_latency,
            "aging_tau": self.aging_tau,
            "locality_weight": self.locality_weight,
        }

    def extra_stats(self) -> Dict[str, float]:
        return {
            "rounds": float(self.stat_rounds),
            "rules_published": float(self.stat_rules),
            "bids": float(self.stat_bids),
            "grants": float(self.stat_grants),
            "control_messages": float(self.stat_messages),
            "control_bytes": float(self.stat_control_bytes),
            "control_seconds": self.stat_control_seconds,
            "grant_bounces": float(self.stat_grant_bounces),
            "bid_losses": float(self.stat_bid_losses),
            "grant_dead_letters": float(self.stat_grant_dead_letters),
            "failovers": float(self.stat_failovers),
            "queued_at_end": float(
                sum(len(queue) for queue in self.node_queues.values())
            ),
        }


@register_policy
class DecentralNoLocalPolicy(DecentralPolicy):
    """Cache-blind ablation: identical protocol, zero locality weight.

    Nodes still cache data (same planner), but bids ignore it — grants
    go to arbitrary hungry nodes, so the cached fraction the cluster
    accumulates is largely wasted.  Isolates how much of ``decentral``'s
    performance comes from locality scoring rather than from batching.
    """

    name = "decentral-nolocal"
    locality_weight = 0.0
