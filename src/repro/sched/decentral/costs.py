"""Control-plane cost model: rules, bids and grants are not free.

Every message of the bidding protocol is charged payload bytes and
simulated transfer time, so the scheduler's own overhead shows up in the
measured results (``SchedulerStats``) and in the grant latency.  Sizes
are small-integer protocol estimates: a rule is one posted spec (nodes
read it from the arbiter's bulletin board — one publication, not one
copy per node), a bid is a header plus one entry per scored task, a
grant is a header plus one task id per granted task.  Completion reports
piggyback on the node's next bid and cost nothing extra — one of the two
asymmetries (with grant batching) that let the decentralized scheduler
undercut the central push model's two messages per subjob.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...core.errors import ConfigurationError


@dataclass(frozen=True)
class ControlCostModel:
    """Byte/latency charges for the rule → bid → grant protocol."""

    #: One published rule spec (job id, segment, chunking, priority).
    rule_bytes: int = 96
    #: Fixed bid-message overhead (node id, piggybacked completions).
    bid_header_bytes: int = 32
    #: One scored task entry inside a bid (task id + fixed-point score).
    bid_entry_bytes: int = 12
    #: Fixed grant-message overhead.
    grant_header_bytes: int = 32
    #: One granted task id.
    grant_entry_bytes: int = 8
    #: Control-network throughput in bytes/second (shared LAN order).
    throughput: float = 12_500_000.0
    #: Per-message fixed latency (request/response round trip).
    message_latency: float = 0.001

    def __post_init__(self) -> None:
        if self.throughput <= 0:
            raise ConfigurationError(
                f"control throughput must be > 0, got {self.throughput}"
            )
        if self.message_latency < 0:
            raise ConfigurationError(
                f"message latency must be >= 0, got {self.message_latency}"
            )

    def bid_bytes(self, entries: int) -> int:
        return self.bid_header_bytes + entries * self.bid_entry_bytes

    def grant_bytes(self, entries: int) -> int:
        return self.grant_header_bytes + entries * self.grant_entry_bytes

    def transfer_seconds(self, payload_bytes: int, messages: int) -> float:
        """Simulated time to move ``messages`` totalling ``payload_bytes``."""
        return payload_bytes / self.throughput + messages * self.message_latency

    def describe(self) -> dict:
        return {
            "rule_bytes": self.rule_bytes,
            "bid_header_bytes": self.bid_header_bytes,
            "bid_entry_bytes": self.bid_entry_bytes,
            "grant_header_bytes": self.grant_header_bytes,
            "grant_entry_bytes": self.grant_entry_bytes,
            "throughput": self.throughput,
            "message_latency": self.message_latency,
        }
