"""Per-node bid scoring: "how good is this task *for me*, right now?"

Each node answers against purely local state — its own
:class:`~repro.data.cache.LRUSegmentCache` contents, the shared cost
model, and its queue depth — which is the whole point of the
decentralized design: the expensive "where is this data cached?" scan
the central policies run on every arrival is replaced by N independent
constant-state lookups.

Scores combine three terms:

* **locality / cost estimate** — the speed gain of running the task here
  versus streaming it from tertiary storage, from the cached fraction
  and the cost model's per-event times (0 when nothing is cached, ~2.1
  when fully cached under the paper's 0.26/0.8 s anchors);
* **aging** — ``(now - arrival) / aging_tau``, the anti-starvation term:
  a cold-data job's tasks eventually outscore everyone's cached work;
* **load** — a penalty per already-queued task, so a node that still
  holds granted work does not hoard more.
"""

from __future__ import annotations

from ...cluster.costmodel import CostModel
from ...data.cache import LRUSegmentCache
from ...data.intervals import Interval

#: Score penalty per task already queued on the bidding node.
LOAD_PENALTY = 0.1


def score_candidate(
    cache: LRUSegmentCache,
    cost_model: CostModel,
    remaining: Interval,
    age_seconds: float,
    *,
    locality_weight: float,
    aging_tau: float,
    queue_depth: int = 0,
) -> float:
    """Bid score of one candidate task for one node (higher wins)."""
    cached = cache.cached_events(remaining)
    fraction = cached / remaining.length
    per_event = (
        fraction * cost_model.cached_event_time
        + (1.0 - fraction) * cost_model.uncached_event_time
    )
    # Speed gain over a fully uncached run: 0 (cold) .. ~2.1 (cached).
    gain = cost_model.uncached_event_time / per_event - 1.0
    aging = age_seconds / aging_tau if aging_tau > 0 else 0.0
    return locality_weight * gain + aging - LOAD_PENALTY * queue_depth
