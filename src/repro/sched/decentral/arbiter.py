"""Bid arbitration: highest score wins, seeded deterministic tie-breaks.

The arbiter's job is deliberately tiny — it never inspects caches or
cost models, it only resolves integer (node, task, score) triples.  Kept
as a pure function so the ``sched.bidding`` micro-benchmark and property
tests can drive it without a simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np


@dataclass(frozen=True)
class Bid:
    """One node's score for one task of the round's candidate window."""

    node_id: int
    task_index: int
    score: float


def arbitrate(
    bids: Sequence[Bid],
    grant_batch: int,
    rng: np.random.Generator,
) -> Dict[int, List[int]]:
    """Progressive highest-score-first matching of tasks to nodes.

    Matching runs in ``grant_batch`` passes with a per-node cap of one
    additional task per pass: every bidder gets its best available task
    before any bidder gets a second.  With few pending tasks this
    spreads work across the cluster (maximum parallelism); with a
    backlog every node still fills to ``grant_batch`` (maximum message
    amortisation) — the passes only change *which* tasks land where.

    Each task is granted at most once.  Equal scores are ordered by a
    draw from the dedicated ``sched.arbiter`` stream — deterministic for
    a given seed and bid sequence, unbiased across nodes (node ids carry
    no meaning).

    Returns ``{node_id: [task_index, ...]}``.
    """
    if not bids:
        return {}
    # One draw per bid, in the caller's deterministic bid order.
    ties = rng.random(len(bids))
    order = sorted(
        range(len(bids)), key=lambda i: (-bids[i].score, ties[i])
    )
    grants: Dict[int, List[int]] = {}
    taken: set = set()
    for cap in range(1, grant_batch + 1):
        for index in order:
            bid = bids[index]
            if bid.task_index in taken:
                continue
            node_grants = grants.setdefault(bid.node_id, [])
            if len(node_grants) >= cap:
                continue
            node_grants.append(bid.task_index)
            taken.add(bid.task_index)
    return {node_id: tasks for node_id, tasks in grants.items() if tasks}
