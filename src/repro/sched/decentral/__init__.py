"""Decentralized rule/bid scheduling (beyond the paper; PYME-style).

The paper's seven policies share one architecture: a central master
pushes every subjob.  This package inverts it — the arbiter publishes
declarative :class:`~repro.sched.decentral.rules.Rule` specs, each node
expands active rules into candidate tasks, scores them against its *own*
disk cache and bids; the arbiter only resolves integer task grants per
scheduling round.  Control traffic (rules, bids, grants) is charged by a
:class:`~repro.sched.decentral.costs.ControlCostModel` and surfaced as
:class:`~repro.sched.stats.SchedulerStats`.

Registered policies: ``decentral`` (locality-aware bidding) and the
cache-blind ablation ``decentral-nolocal``.
"""

from .arbiter import Bid, arbitrate
from .bidding import score_candidate
from .costs import ControlCostModel
from .policy import DecentralNoLocalPolicy, DecentralPolicy
from .rules import Rule, plan_tasks

__all__ = [
    "Bid",
    "ControlCostModel",
    "DecentralNoLocalPolicy",
    "DecentralPolicy",
    "Rule",
    "arbitrate",
    "plan_tasks",
    "score_candidate",
]
