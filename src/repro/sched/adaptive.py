"""Adaptive delay scheduling (§6).

"We define here a new adaptive delay policy that aims at minimizing the
waiting time, while sustaining the current load.  This policy makes use of
the performance parameters shown in Figures 5 and 6 in order to choose the
minimal 'period' delay that allows to sustain the current load."

The policy wraps :class:`~repro.sched.delayed.DelayedPolicy` with a
dynamic period: a sliding-window estimator tracks the recent arrival rate,
and a monotone *delay table* — (maximal sustainable load → minimal delay)
pairs measured by the Fig 5/6 sweeps — maps the estimate to the next
period.  At low loads the delay is zero and jobs are scheduled
immediately (still with the stripe-splitting machinery, which is why the
adaptive policy's speedup at small stripes slightly exceeds out-of-order's
— §6's closing discussion).

The default table is expressed as *fractions of the theoretical maximal
load* so it transfers across cluster sizes; it was calibrated with
``repro.experiments.calibration`` on the paper configuration and can be
recalibrated for any other.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Sequence, Tuple

from ..core import units
from ..core.errors import ConfigurationError
from ..core.events import EventPriority
from ..workload.jobs import Job
from .base import SchedulerContext, register_policy
from .delayed import DelayedPolicy

#: Default (sustainable load fraction, delay) steps.  A row means: loads
#: up to ``fraction`` × (theoretical max) are sustainable with ``delay``.
#: Calibrated on the paper configuration (100 GB caches, stripe 5000);
#: see EXPERIMENTS.md and `repro.experiments.calibration`.
DEFAULT_DELAY_TABLE: Tuple[Tuple[float, float], ...] = (
    (0.55, 0.0),
    (0.62, 11 * units.HOUR),
    (0.72, 2 * units.DAY),
    (0.85, 1 * units.WEEK),
)


@register_policy
class AdaptiveDelayPolicy(DelayedPolicy):
    """§6 of the paper: delayed scheduling with a load-adapted period."""

    name = "adaptive"

    def __init__(
        self,
        stripe_events: int = 5_000,
        delay_table: Optional[Sequence[Tuple[float, float]]] = None,
        estimation_window: float = 3 * units.DAY,
        safety_factor: float = 1.0,
    ) -> None:
        super().__init__(period=0.0, stripe_events=stripe_events)
        table = tuple(delay_table) if delay_table is not None else DEFAULT_DELAY_TABLE
        if not table:
            raise ConfigurationError("delay table must not be empty")
        if sorted(table) != list(table):
            raise ConfigurationError("delay table must be sorted by load fraction")
        self.delay_table = table
        if estimation_window <= 0:
            raise ConfigurationError(
                f"estimation_window must be > 0, got {estimation_window}"
            )
        self.estimation_window = float(estimation_window)
        self.safety_factor = float(safety_factor)
        self._arrival_times: Deque[float] = deque()
        #: Current position in the delay table; moves at most one step per
        #: decision (hysteresis: a noisy load estimate must persist across
        #: several boundaries to escalate the delay far, so one burst never
        #: triggers a week-long accumulation period).
        self._delay_index = 0
        self.stats_delay_changes = 0
        self.stats_time_at_zero_delay = 0.0
        self._last_mode_change = 0.0

    # -- load estimation --------------------------------------------------------

    def _note_arrival(self, now: float) -> None:
        self._arrival_times.append(now)
        cutoff = now - self.estimation_window
        while self._arrival_times and self._arrival_times[0] < cutoff:
            self._arrival_times.popleft()

    def estimated_load_per_hour(self) -> float:
        """Arrival rate over the sliding window (jobs/hour)."""
        now = self.engine.now
        window = min(self.estimation_window, max(now, units.HOUR))
        cutoff = now - window
        count = sum(1 for t in self._arrival_times if t >= cutoff)
        return count * units.HOUR / window

    def estimated_load_fraction(self) -> float:
        return (
            self.estimated_load_per_hour()
            / self.config.max_theoretical_load_per_hour
        )

    def target_delay_index(self) -> int:
        """Table row of the minimal delay sustaining the estimated load."""
        fraction = self.estimated_load_fraction() * self.safety_factor
        for index, (max_fraction, _) in enumerate(self.delay_table):
            if fraction <= max_fraction:
                return index
        return len(self.delay_table) - 1

    def choose_delay(self) -> float:
        """Next period delay: one table step toward the target row."""
        target = self.target_delay_index()
        if target > self._delay_index:
            self._delay_index += 1
        elif target < self._delay_index:
            self._delay_index -= 1
        return self.delay_table[self._delay_index][1]

    # -- scheduling -----------------------------------------------------------------

    def on_job_arrival(self, job: Job) -> None:
        now = self.engine.now
        self._note_arrival(now)
        if self.period == 0:
            job.schedule_time = now
            self._schedule_batch([job])
            self._maybe_enter_delayed_mode()
        else:
            self.pending_jobs.append(job)

    def _maybe_enter_delayed_mode(self) -> None:
        delay = self.choose_delay()
        if delay > 0:
            self.stats_time_at_zero_delay += self.engine.now - self._last_mode_change
            self._last_mode_change = self.engine.now
            self.stats_delay_changes += 1
            self.period = delay
            self._boundary_event = self.engine.call_after(
                delay,
                self._on_period_boundary,
                priority=EventPriority.PERIOD,
                label="period",
            )

    def _next_period_delay(self) -> float:
        """Re-chosen at every boundary from the current load estimate."""
        delay = self.choose_delay()
        if delay != self.period:
            self.stats_delay_changes += 1
            if delay == 0:
                self._last_mode_change = self.engine.now
        return delay

    def bind(self, ctx: SchedulerContext) -> None:
        super().bind(ctx)
        self._last_mode_change = ctx.engine.now

    def describe(self) -> Dict[str, object]:
        return {
            "policy": self.name,
            "stripe_events": self.stripe_events,
            "delay_table": list(self.delay_table),
            "estimation_window": self.estimation_window,
            "safety_factor": self.safety_factor,
        }

    def extra_stats(self) -> Dict[str, float]:
        stats = super().extra_stats()
        stats.update(
            delay_changes=float(self.stats_delay_changes),
            current_delay=float(self.period),
            estimated_load_per_hour=self.estimated_load_per_hour(),
        )
        return stats
