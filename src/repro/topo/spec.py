"""Declarative topology specification with validation and presets.

A :class:`TopologySpec` is a frozen value (like
:class:`~repro.sim.config.SimulationConfig`, whose optional ``topology``
field carries one): a tuple of :class:`TierSpec` tiers forming a rooted
tree, plus the replica-placement policy the run applies at interior
caches.  Validation happens in ``__post_init__`` and raises
:class:`~repro.core.errors.ConfigurationError` with actionable messages
(bad parent references, cycles, zero-bandwidth links) so a malformed
topology never reaches the simulator.

Tree shape conventions:

* exactly one tier has ``parent=None`` — the **root**, which hosts the
  tertiary storage system; it has no uplink (``link_bandwidth`` must be 0);
* every other tier's ``link_bandwidth`` is the bytes/second of its uplink
  to its parent and must be > 0 (a zero-bandwidth link would make the
  tier unreachable — that is a spec error, not an infinitely slow link);
* compute nodes attach to the **leaf** tiers (tiers with no children),
  distributed in declaration order as contiguous id blocks;
* ``depth`` counts tiers along the longest root-to-leaf path; depth 1
  (root only, no tier cache) is the paper's flat cluster and is
  guaranteed observationally identical to running without a topology.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, List, Mapping, Optional, Set, Tuple

from ..core import units
from ..core.errors import ConfigurationError

#: Replica-placement policies applied when a chunk misses every tier
#: cache and streams from the root tertiary store:
#:
#: * ``none`` — tier caches are never populated (the paper's implicit
#:   baseline: only node-local disk caches exist);
#: * ``root-only`` — the highest cache on the node's path (the site
#:   replica store) absorbs every tertiary read;
#: * ``lru-rack`` — pull-through: every cache on the path absorbs the
#:   read, so data migrates down to the rack on first access and ages
#:   out LRU;
#: * ``proactive-site`` — an extent is promoted into every cache on the
#:   path once it has been fetched ``promote_threshold`` times (the
#:   §4.2 "replicate on the 3rd access" rule, lifted to tiers).
PLACEMENTS: Tuple[str, ...] = ("none", "root-only", "lru-rack", "proactive-site")


@dataclass(frozen=True)
class TierSpec:
    """One tier of the grid: a named tree vertex with an uplink and an
    optional cache.

    ``cache_bytes`` is the tier cache capacity (0 = no cache at this
    tier).  ``link_bandwidth`` is the uplink to ``parent`` in
    bytes/second; ``link_capacity_streams`` is the number of full-rate
    concurrent streams the uplink carries before queueing sets in (0 =
    uncontended: the link never saturates).
    """

    name: str
    parent: Optional[str] = None
    cache_bytes: int = 0
    link_bandwidth: float = 0.0
    link_capacity_streams: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("tier name must be a non-empty string")
        if self.cache_bytes < 0:
            raise ConfigurationError(
                f"tier {self.name!r}: cache_bytes must be >= 0, "
                f"got {self.cache_bytes}"
            )
        if self.link_capacity_streams < 0:
            raise ConfigurationError(
                f"tier {self.name!r}: link_capacity_streams must be >= 0, "
                f"got {self.link_capacity_streams}"
            )
        if self.parent is None:
            if self.link_bandwidth != 0.0:
                raise ConfigurationError(
                    f"root tier {self.name!r} must not declare an uplink "
                    f"(link_bandwidth={self.link_bandwidth}); the root hosts "
                    "tertiary storage directly"
                )
        elif self.link_bandwidth <= 0.0:
            raise ConfigurationError(
                f"tier {self.name!r}: zero-bandwidth uplink to "
                f"{self.parent!r}; every non-root tier needs "
                "link_bandwidth > 0 (bytes/second)"
            )


@dataclass(frozen=True)
class TopologySpec:
    """A validated tier tree plus the run's replica-placement policy."""

    tiers: Tuple[TierSpec, ...]
    placement: str = "none"
    #: Fetch count after which ``proactive-site`` promotes an extent.
    promote_threshold: int = 3

    def __post_init__(self) -> None:
        if not self.tiers:
            raise ConfigurationError("topology needs at least one tier")
        if self.placement not in PLACEMENTS:
            raise ConfigurationError(
                f"unknown placement {self.placement!r}; "
                f"choose one of {', '.join(PLACEMENTS)}"
            )
        if self.promote_threshold < 1:
            raise ConfigurationError(
                f"promote_threshold must be >= 1, got {self.promote_threshold}"
            )
        names = [tier.name for tier in self.tiers]
        seen: Set[str] = set()
        for name in names:
            if name in seen:
                raise ConfigurationError(f"duplicate tier name {name!r}")
            seen.add(name)
        roots = [tier.name for tier in self.tiers if tier.parent is None]
        if len(roots) != 1:
            raise ConfigurationError(
                "topology needs exactly one root tier (parent=None), got "
                f"{len(roots)}: {roots or 'none'}"
            )
        by_name = {tier.name: tier for tier in self.tiers}
        for tier in self.tiers:
            if tier.parent is not None and tier.parent not in by_name:
                raise ConfigurationError(
                    f"unknown parent {tier.parent!r} of tier {tier.name!r}; "
                    f"known tiers: {', '.join(sorted(by_name))}"
                )
        # Cycle check: walking up from any tier must reach the root.
        for tier in self.tiers:
            trail: List[str] = [tier.name]
            visited = {tier.name}
            current = tier
            while current.parent is not None:
                current = by_name[current.parent]
                trail.append(current.name)
                if current.name in visited:
                    raise ConfigurationError(
                        "tier parent chain contains a cycle: "
                        + " -> ".join(trail)
                    )
                visited.add(current.name)

    # -- tree queries ------------------------------------------------------

    @property
    def root(self) -> TierSpec:
        for tier in self.tiers:
            if tier.parent is None:
                return tier
        raise ConfigurationError("topology has no root tier")  # unreachable

    def children_of(self, name: str) -> Tuple[TierSpec, ...]:
        return tuple(tier for tier in self.tiers if tier.parent == name)

    @property
    def leaves(self) -> Tuple[TierSpec, ...]:
        """Tiers with no children, in declaration order (the compute
        nodes attach here)."""
        parents = {tier.parent for tier in self.tiers if tier.parent}
        return tuple(tier for tier in self.tiers if tier.name not in parents)

    def path_to_root(self, name: str) -> Tuple[TierSpec, ...]:
        """The tier chain from ``name`` (inclusive) up to the root."""
        by_name = {tier.name: tier for tier in self.tiers}
        if name not in by_name:
            raise ConfigurationError(f"unknown tier {name!r}")
        path: List[TierSpec] = [by_name[name]]
        while path[-1].parent is not None:
            path.append(by_name[path[-1].parent])
        return tuple(path)

    @property
    def depth(self) -> int:
        """Tiers along the longest root-to-leaf path (1 = flat)."""
        return max(len(self.path_to_root(leaf.name)) for leaf in self.leaves)

    @property
    def is_trivial(self) -> bool:
        """True when the topology is the paper's flat cluster in
        disguise: one root tier, no uplinks, no tier cache.  The
        simulator skips the tiered data path entirely for trivial specs,
        which is what makes the depth-1 bit-identity guarantee exact.
        """
        return self.depth == 1 and self.root.cache_bytes == 0

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "TopologySpec":
        try:
            raw_tiers = payload["tiers"]
        except KeyError:
            raise ConfigurationError(
                "topology payload is missing the 'tiers' list"
            ) from None
        if not isinstance(raw_tiers, (list, tuple)):
            raise ConfigurationError(
                f"topology 'tiers' must be a list, got {type(raw_tiers).__name__}"
            )
        tiers: List[TierSpec] = []
        for entry in raw_tiers:
            if not isinstance(entry, Mapping):
                raise ConfigurationError(
                    f"each tier must be an object, got {type(entry).__name__}"
                )
            unknown = set(entry) - {
                "name", "parent", "cache_bytes",
                "link_bandwidth", "link_capacity_streams",
            }
            if unknown:
                raise ConfigurationError(
                    f"unknown tier keys {sorted(unknown)}"
                )
            tiers.append(TierSpec(**entry))  # type: ignore[arg-type]
        placement = payload.get("placement", "none")
        threshold = payload.get("promote_threshold", 3)
        if not isinstance(placement, str):
            raise ConfigurationError("placement must be a string")
        if not isinstance(threshold, int) or isinstance(threshold, bool):
            raise ConfigurationError("promote_threshold must be an integer")
        return cls(
            tiers=tuple(tiers),
            placement=placement,
            promote_threshold=threshold,
        )


# ---------------------------------------------------------------------------
# Presets
# ---------------------------------------------------------------------------

#: Default uplink rates: rack->site is a shared LAN trunk, site->grid a
#: WAN line — both far below the 10 MB/s node disks, so tier locality
#: actually matters (at 600 KB/event: 0.006 s and 0.03 s per event).
_RACK_UPLINK = 100 * units.MB
_SITE_UPLINK = 20 * units.MB


def _flat(placement: str = "none") -> TopologySpec:
    """Depth 1: the paper's cluster — observationally a no-op."""
    return TopologySpec(tiers=(TierSpec(name="root"),), placement=placement)


def _depth2(placement: str = "none") -> TopologySpec:
    """One site hosting two racks with disk-pool caches."""
    return TopologySpec(
        tiers=(
            TierSpec(name="site", cache_bytes=40 * units.GB),
            TierSpec(
                name="rack0", parent="site", cache_bytes=10 * units.GB,
                link_bandwidth=_RACK_UPLINK, link_capacity_streams=4,
            ),
            TierSpec(
                name="rack1", parent="site", cache_bytes=10 * units.GB,
                link_bandwidth=_RACK_UPLINK, link_capacity_streams=4,
            ),
        ),
        placement=placement,
    )


def _depth3(placement: str = "none") -> TopologySpec:
    """A grid root over two WAN-attached sites of two racks each."""
    tiers: List[TierSpec] = [TierSpec(name="grid")]
    for site in range(2):
        tiers.append(
            TierSpec(
                name=f"site{site}", parent="grid",
                cache_bytes=40 * units.GB,
                link_bandwidth=_SITE_UPLINK, link_capacity_streams=2,
            )
        )
        for rack in range(2):
            tiers.append(
                TierSpec(
                    name=f"site{site}.rack{rack}", parent=f"site{site}",
                    cache_bytes=10 * units.GB,
                    link_bandwidth=_RACK_UPLINK, link_capacity_streams=4,
                )
            )
    return TopologySpec(tiers=tuple(tiers), placement=placement)


#: Named preset factories (each takes the placement policy).
TOPOLOGY_PRESETS: Dict[str, object] = {
    "flat": _flat,
    "depth2": _depth2,
    "depth3": _depth3,
}


def topology_preset(name: str, placement: str = "none") -> TopologySpec:
    """Build a named preset topology (did-you-mean on misses)."""
    factory = TOPOLOGY_PRESETS.get(name)
    if factory is None:
        raise ConfigurationError(
            f"unknown topology preset {name!r}; "
            f"available: {', '.join(sorted(TOPOLOGY_PRESETS))}"
        )
    assert callable(factory)
    spec = factory(placement)
    assert isinstance(spec, TopologySpec)
    return spec
