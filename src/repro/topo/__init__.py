"""Hierarchical data-grid topology (``repro.topo``).

The paper models one flat LAN cluster: N identical nodes with local disk
caches in front of a single shared tertiary store.  This package
generalises that shape into a *tier tree* (site -> rack -> node) in which

* every edge is a finite-bandwidth, contended link (WAN / LAN / bus),
* every interior tier may host a cache (rack-level disk pools, site-level
  replica stores) in front of the root tertiary system, and
* replica-placement policies decide which tier caches are populated on a
  miss — with storage-cost accounting, so the replication *economics* are
  measurable rather than assumed.

The flat cluster is the degenerate depth-1 topology: a single root tier
with no uplinks and no tier cache.  Such a topology is observationally a
no-op — runs are bit-identical to a topology-less build (the simulator
does not even install the :class:`~repro.topo.planner.TieredPlanner`).

Everything here is deterministic: path resolution, contention accounting
and placement decisions derive purely from the declarative
:class:`~repro.topo.spec.TopologySpec` and the simulated event order —
no random draws, so topology never perturbs workload or fault streams.
"""

from .spec import (
    PLACEMENTS,
    TOPOLOGY_PRESETS,
    TierSpec,
    TopologySpec,
    topology_preset,
)
from .tree import TierSummary, Topology, TopologyView, TopoSummary
from .planner import TieredPlanner

__all__ = [
    "PLACEMENTS",
    "TOPOLOGY_PRESETS",
    "TierSpec",
    "TopologySpec",
    "topology_preset",
    "TierSummary",
    "Topology",
    "TopologyView",
    "TopoSummary",
    "TieredPlanner",
]
