"""Runtime tier tree: contended links, tier caches, per-tier accounting.

Built once per run from a validated
:class:`~repro.topo.spec.TopologySpec`.  Three runtime concerns live
here:

* **routing** — every node's precomputed leaf-to-root tier path, plus the
  LCA hop :meth:`Topology.distance` the tier-locality-aware schedulers
  score with (through the narrow :class:`TopologyView` protocol, so
  policies never see link or cache internals);
* **link contention** — each non-root tier's uplink counts its active
  streams; a plan that oversubscribes the link's stream capacity is
  priced with a queueing multiplier and counted as a saturation event
  (the same deterministic snapshot-at-plan-time model as
  :class:`~repro.cluster.access.ContentionRemoteReadPlanner`);
* **tier caches** — an LRU segment cache per caching tier, with hit /
  miss / eviction counts and a storage-cost integral (cached
  event-seconds), so replica-placement policies carry a measurable
  price, not just a benefit.

Nothing here draws random numbers; all state advances on planner hooks,
so topology accounting replays bit-identically with the run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol, Tuple

from ..core.errors import ConfigurationError
from ..data.cache import LRUSegmentCache
from ..data.intervals import Interval
from ..obs.hooks import NULL_BUS, HookBus, kinds
from .spec import TierSpec, TopologySpec


class TierCache:
    """A tier-level LRU cache with hit/miss and storage-cost accounting.

    Wraps :class:`~repro.data.cache.LRUSegmentCache` (built with a
    disabled bus — tier evictions are re-emitted as ``tier.evict``
    events here, not as node ``cache.evict``) and maintains the
    occupancy integral ``storage_event_seconds``: cached events
    integrated over simulated time, the run's storage bill for hosting
    replicas at this tier.
    """

    def __init__(self, tier_name: str, capacity_events: int, obs: HookBus) -> None:
        self.tier_name = tier_name
        self.cache = LRUSegmentCache(capacity_events, obs=NULL_BUS)
        self.obs = obs
        self.hit_events = 0
        self.miss_events = 0
        self.storage_event_seconds = 0.0
        self._last_advance = 0.0
        self._finalized = False

    # -- storage-cost integral --------------------------------------------

    def _advance(self, now: float) -> None:
        """Accrue occupancy cost up to ``now`` (piecewise-constant)."""
        if now > self._last_advance:
            self.storage_event_seconds += self.cache.used_events * (
                now - self._last_advance
            )
            self._last_advance = now

    def finalize(self, until: float) -> None:
        """Close the occupancy integral at the end of the run."""
        if not self._finalized:
            self._advance(until)
            self._finalized = True

    # -- cache operations --------------------------------------------------

    def cached_prefix(self, interval: Interval) -> Interval:
        return self.cache.cached_prefix(interval)

    def serve(self, interval: Interval, now: float) -> None:
        """Account a hit: ``interval`` was read from this tier cache."""
        self._advance(now)
        self.cache.touch(interval, now)
        self.hit_events += interval.length
        if self.obs.enabled:
            self.obs.emit(
                now,
                kinds.TIER_HIT,
                "topo",
                events=interval.length,
                tier=self.tier_name,
            )

    def record_miss(self, interval: Interval, now: float) -> None:
        """Account a lookup that walked past this tier empty-handed."""
        self.miss_events += interval.length
        if self.obs.enabled:
            self.obs.emit(
                now,
                kinds.TIER_MISS,
                "topo",
                events=interval.length,
                tier=self.tier_name,
            )

    def admit(self, interval: Interval, now: float) -> None:
        """Insert ``interval`` (replica placement), emitting evictions."""
        self._advance(now)
        evicted_before = self.cache.stats.evicted_events
        self.cache.insert(interval, now)
        if self.obs.enabled:
            evicted = self.cache.stats.evicted_events - evicted_before
            if evicted:
                self.obs.emit(
                    now,
                    kinds.TIER_EVICT,
                    "topo",
                    events=evicted,
                    tier=self.tier_name,
                )


class Tier:
    """One runtime tier: spec + uplink contention state + optional cache."""

    def __init__(
        self,
        spec: TierSpec,
        parent: Optional["Tier"],
        event_bytes: int,
        obs: HookBus,
    ) -> None:
        self.spec = spec
        self.parent = parent
        self.obs = obs
        #: Root depth 0, children 1, ... (hop metric for distance()).
        self.level: int = 0 if parent is None else parent.level + 1
        #: Uplink seconds per event (0.0 at the root — no uplink).
        self.link_time_per_event: float = (
            0.0 if spec.parent is None else event_bytes / spec.link_bandwidth
        )
        self.link_capacity_streams = spec.link_capacity_streams
        self.active_streams = 0
        self.peak_streams = 0
        self.saturated_plans = 0
        self.link_events = 0
        self.cache: Optional[TierCache] = None
        if spec.cache_bytes > 0:
            capacity = int(spec.cache_bytes // event_bytes)
            self.cache = TierCache(spec.name, capacity, obs)

    @property
    def name(self) -> str:
        return self.spec.name

    # -- uplink contention -------------------------------------------------

    def planned_link_time(self, now: float) -> float:
        """Uplink seconds/event for a stream planned *now*, pricing one
        more stream on top of the currently active ones; counts a
        saturation event when the link is oversubscribed."""
        base = self.link_time_per_event
        if base == 0.0:
            return 0.0
        capacity = self.link_capacity_streams
        if capacity <= 0:
            return base
        streams = self.active_streams + 1
        if streams <= capacity:
            return base
        self.saturated_plans += 1
        if self.obs.enabled:
            self.obs.emit(
                now,
                kinds.LINK_SATURATED,
                "topo",
                tier=self.name,
                streams=streams,
                capacity=capacity,
            )
        return base * (streams / capacity)

    def acquire(self) -> None:
        self.active_streams += 1
        if self.active_streams > self.peak_streams:
            self.peak_streams = self.active_streams

    def release(self) -> None:
        self.active_streams -= 1
        assert self.active_streams >= 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tier({self.name!r}, level={self.level})"


class TopologyView(Protocol):
    """The narrow, read-only face schedulers see.

    Distance-blind policies (farm, splitting) never touch it; the
    cache-aware ones use :meth:`distance` as a locality tie-break, so
    they stay byte-identical on flat topologies (all distances 0).
    """

    @property
    def depth(self) -> int:
        """Tiers along the longest root-to-leaf path."""
        ...

    def distance(self, node_a: int, node_b: int) -> int:
        """Tree hops between two nodes' tiers (0 = same tier)."""
        ...

    def tier_name_of(self, node_id: int) -> str:
        """Name of the leaf tier hosting ``node_id``."""
        ...


@dataclass(frozen=True)
class TierSummary:
    """Per-tier accounting of one run (part of summary-JSON schema v7)."""

    name: str
    parent: Optional[str]
    level: int
    nodes: int
    cache_capacity_events: int
    cache_hit_events: int
    cache_miss_events: int
    cache_evicted_events: int
    storage_event_seconds: float
    link_events: int
    link_saturated_plans: int
    link_peak_streams: int

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "parent": self.parent,
            "level": self.level,
            "nodes": self.nodes,
            "cache_capacity_events": self.cache_capacity_events,
            "cache_hit_events": self.cache_hit_events,
            "cache_miss_events": self.cache_miss_events,
            "cache_evicted_events": self.cache_evicted_events,
            "storage_event_seconds": self.storage_event_seconds,
            "link_events": self.link_events,
            "link_saturated_plans": self.link_saturated_plans,
            "link_peak_streams": self.link_peak_streams,
        }


@dataclass(frozen=True)
class TopoSummary:
    """Whole-topology accounting of one run."""

    depth: int
    placement: str
    tier_hit_events: int
    tier_miss_events: int
    replicated_events: int
    storage_event_seconds: float
    link_saturated_plans: int
    tiers: Tuple[TierSummary, ...]

    def as_dict(self) -> Dict[str, object]:
        return {
            "depth": self.depth,
            "placement": self.placement,
            "tier_hit_events": self.tier_hit_events,
            "tier_miss_events": self.tier_miss_events,
            "replicated_events": self.replicated_events,
            "storage_event_seconds": self.storage_event_seconds,
            "link_saturated_plans": self.link_saturated_plans,
            "tiers": [tier.as_dict() for tier in self.tiers],
        }


class Topology:
    """The runtime tier tree of one simulation run.

    Nodes are assigned to leaf tiers in declaration order as contiguous
    id blocks (the first ``n_nodes % leaves`` leaves take one extra node)
    — fully determined by the spec and ``n_nodes``.
    """

    def __init__(
        self,
        spec: TopologySpec,
        n_nodes: int,
        event_bytes: int,
        obs: HookBus = NULL_BUS,
    ) -> None:
        if n_nodes < 1:
            raise ConfigurationError(f"need at least one node, got {n_nodes}")
        if event_bytes < 1:
            raise ConfigurationError(
                f"event_bytes must be >= 1, got {event_bytes}"
            )
        self.spec = spec
        self.obs = obs
        #: Events proactively promoted into tier caches (placement cost).
        self.replicated_events = 0
        self.tiers: Dict[str, Tier] = {}
        for tier_spec in spec.tiers:
            parent = self.tiers.get(tier_spec.parent) if tier_spec.parent else None
            self.tiers[tier_spec.name] = Tier(
                tier_spec, parent, event_bytes, obs
            )
        # spec validation guarantees parents precede nowhere — tiers may
        # be declared in any order, so resolve missed parents in a second
        # pass if the first wired one early.
        for tier_spec in spec.tiers:
            tier = self.tiers[tier_spec.name]
            if tier_spec.parent is not None and tier.parent is None:
                tier.parent = self.tiers[tier_spec.parent]
                tier.level = tier.parent.level + 1
                # re-derive levels below (declaration order may interleave)
        self._fix_levels()
        leaves = [self.tiers[leaf.name] for leaf in spec.leaves]
        #: node_id -> leaf-to-root tier path (leaf first).
        self._paths: List[Tuple[Tier, ...]] = []
        per_leaf, extra = divmod(n_nodes, len(leaves))
        for index, leaf in enumerate(leaves):
            count = per_leaf + (1 if index < extra else 0)
            path = self._path_up(leaf)
            self._paths.extend([path] * count)
        assert len(self._paths) == n_nodes

    def _fix_levels(self) -> None:
        for tier in self.tiers.values():
            level = 0
            current = tier
            while current.parent is not None:
                level += 1
                current = current.parent
            tier.level = level

    @staticmethod
    def _path_up(leaf: Tier) -> Tuple[Tier, ...]:
        path: List[Tier] = [leaf]
        while path[-1].parent is not None:
            path.append(path[-1].parent)
        return tuple(path)

    # -- routing (TopologyView) --------------------------------------------

    @property
    def depth(self) -> int:
        return self.spec.depth

    @property
    def placement(self) -> str:
        return self.spec.placement

    def path_of(self, node_id: int) -> Tuple[Tier, ...]:
        """``node_id``'s tier chain, leaf first, root last."""
        return self._paths[node_id]

    def tier_of(self, node_id: int) -> Tier:
        return self._paths[node_id][0]

    def tier_name_of(self, node_id: int) -> str:
        return self._paths[node_id][0].name

    def distance(self, node_a: int, node_b: int) -> int:
        """Tree hops between the two nodes' leaf tiers (via the LCA)."""
        a = self.tier_of(node_a)
        b = self.tier_of(node_b)
        while a.level > b.level:
            assert a.parent is not None
            a = a.parent
        while b.level > a.level:
            assert b.parent is not None
            b = b.parent
        hops = abs(self.tier_of(node_a).level - self.tier_of(node_b).level)
        while a is not b:
            assert a.parent is not None and b.parent is not None
            a = a.parent
            b = b.parent
            hops += 2
        return hops

    def uplinks_between(self, node_a: int, node_b: int) -> Tuple[Tier, ...]:
        """Tiers whose uplinks a node_a <-> node_b transfer traverses
        (both sides of the LCA, excluding the LCA itself)."""
        a = self.tier_of(node_a)
        b = self.tier_of(node_b)
        left: List[Tier] = []
        right: List[Tier] = []
        while a.level > b.level:
            left.append(a)
            assert a.parent is not None
            a = a.parent
        while b.level > a.level:
            right.append(b)
            assert b.parent is not None
            b = b.parent
        while a is not b:
            left.append(a)
            right.append(b)
            assert a.parent is not None and b.parent is not None
            a = a.parent
            b = b.parent
        return tuple(left + right)

    # -- summary -----------------------------------------------------------

    def finalize(self, until: float) -> None:
        """Close every tier cache's storage-cost integral at ``until``."""
        for tier in self.tiers.values():
            if tier.cache is not None:
                tier.cache.finalize(until)

    def summary(self) -> TopoSummary:
        node_counts: Dict[str, int] = {}
        for path in self._paths:
            leaf = path[0].name
            node_counts[leaf] = node_counts.get(leaf, 0) + 1
        tiers: List[TierSummary] = []
        hits = misses = saturated = 0
        storage = 0.0
        for tier_spec in self.spec.tiers:
            tier = self.tiers[tier_spec.name]
            cache = tier.cache
            tiers.append(
                TierSummary(
                    name=tier.name,
                    parent=tier_spec.parent,
                    level=tier.level,
                    nodes=node_counts.get(tier.name, 0),
                    cache_capacity_events=(
                        cache.cache.capacity_events if cache else 0
                    ),
                    cache_hit_events=cache.hit_events if cache else 0,
                    cache_miss_events=cache.miss_events if cache else 0,
                    cache_evicted_events=(
                        cache.cache.stats.evicted_events if cache else 0
                    ),
                    storage_event_seconds=(
                        cache.storage_event_seconds if cache else 0.0
                    ),
                    link_events=tier.link_events,
                    link_saturated_plans=tier.saturated_plans,
                    link_peak_streams=tier.peak_streams,
                )
            )
            if cache is not None:
                hits += cache.hit_events
                misses += cache.miss_events
                storage += cache.storage_event_seconds
            saturated += tier.saturated_plans
        return TopoSummary(
            depth=self.depth,
            placement=self.placement,
            tier_hit_events=hits,
            tier_miss_events=misses,
            replicated_events=self.replicated_events,
            storage_event_seconds=storage,
            link_saturated_plans=saturated,
            tiers=tuple(tiers),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Topology(depth={self.depth}, tiers={len(self.tiers)}, "
            f"nodes={len(self._paths)}, placement={self.placement!r})"
        )
