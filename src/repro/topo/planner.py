"""Tier-aware data-access planning: the :class:`TieredPlanner` wrapper.

On a hierarchical topology every data stream occupies the uplinks
between its endpoints, and interior tier caches may short-circuit the
trip to the root tertiary store.  Rather than teaching every planner in
``repro.cluster.access`` about tiers, a single decorator wraps whichever
planner the policy installed:

* chunks the base planner resolves against the **local cache** are
  untouched (node-to-leaf-tier attachment is free);
* **tertiary** chunks first walk the node's tier path bottom-up looking
  for a tier-cache hit — a hit becomes a :attr:`DataSource.TIER` chunk
  served by that tier, traversing only the uplinks below it; a full miss
  streams from the root, traversing (and paying for) every uplink on the
  path;
* **remote** chunks pay for the uplinks on both sides of the two nodes'
  lowest common ancestor, on top of whatever contention factor the base
  planner already priced in.

Link costs use the same snapshot-at-plan-time queueing model as
:class:`~repro.cluster.access.ContentionRemoteReadPlanner`: the per-event
link time scales with the oversubscription ratio observed when the chunk
is planned, and the links' stream counters are held for exactly the
chunk's lifetime via the started/finished hooks.

Replica placement runs at accounting time: each tertiary read is offered
to the tier caches on the reading node's path according to the spec's
placement policy (``none`` / ``root-only`` / ``lru-rack`` /
``proactive-site`` — see :data:`repro.topo.spec.PLACEMENTS`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Tuple

from ..cluster.access import ChunkPlan, DataAccessPlanner, RemoteAccessCounter
from ..cluster.costmodel import DataSource
from ..data.intervals import Interval
from ..obs.hooks import kinds
from .tree import Tier, Topology

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.node import Node


class TieredPlanner(DataAccessPlanner):
    """Wraps a policy's planner with tier-path routing and placement.

    The wrapper is transparent to schedulers: ``use_cache`` /
    ``populate_cache`` / ``tertiary`` mirror the wrapped planner, and all
    accounting hooks delegate before adding tier bookkeeping.  Policies
    that hold a direct reference to their planner (e.g. replication's
    ``set_peers``) keep talking to the base instance.
    """

    def __init__(self, base: DataAccessPlanner, topology: Topology) -> None:
        super().__init__(base.tertiary)
        self.base = base
        self.topology = topology
        # Mirror the base planner's behaviour flags (class attrs there).
        self.use_cache = base.use_cache
        self.populate_cache = base.populate_cache
        #: Per-node routing tables, filled lazily: the node's tier path
        #: (leaf first), its cache-bearing tiers (bottom-up), and the
        #: uplinks a root-tertiary stream traverses.
        self._caches_of: Dict[int, Tuple[Tier, ...]] = {}
        self._root_via: Dict[int, Tuple[Tier, ...]] = {}
        #: proactive-site promotion counters, one per topmost path tier.
        self._promoters: Dict[str, RemoteAccessCounter] = {}

    # -- routing tables ------------------------------------------------------

    def _cache_tiers(self, node_id: int) -> Tuple[Tier, ...]:
        cached = self._caches_of.get(node_id)
        if cached is None:
            cached = tuple(
                tier
                for tier in self.topology.path_of(node_id)
                if tier.cache is not None
            )
            self._caches_of[node_id] = cached
        return cached

    def _tertiary_via(self, node_id: int) -> Tuple[Tier, ...]:
        via = self._root_via.get(node_id)
        if via is None:
            # Every tier on the path except the root has an uplink.
            via = self.topology.path_of(node_id)[:-1]
            self._root_via[node_id] = via
        return via

    # -- planning ------------------------------------------------------------

    def plan_chunk(
        self, node: "Node", remaining: Interval, max_events: int
    ) -> ChunkPlan:
        plan = self.base.plan_chunk(node, remaining, max_events)
        if plan.source is DataSource.TERTIARY:
            return self._route_tertiary(node, plan)
        if plan.source is DataSource.REMOTE:
            return self._route_remote(node, plan)
        return plan

    def _route_tertiary(self, node: "Node", plan: ChunkPlan) -> ChunkPlan:
        """Serve from the lowest tier cache holding a prefix, else stream
        from the root paying every uplink on the path."""
        now = node.engine.now
        model = node.cost_model
        path = self.topology.path_of(node.node_id)
        for index, tier in enumerate(path):
            cache = tier.cache
            if cache is None:
                continue
            prefix = cache.cached_prefix(plan.interval)
            if prefix.empty:
                continue
            # Reading tier ``index`` traverses the uplinks of every tier
            # below it on the path (leaf attachment itself is free).
            via = path[:index]
            base_time = model.event_time(DataSource.TIER)
            extra = 0.0
            for hop in via:
                extra += hop.planned_link_time(now)
            return ChunkPlan(
                interval=prefix,
                source=DataSource.TIER,
                rate_factor=1.0 + extra / base_time,
                via=via,
                tier=tier,
            )
        via = self._tertiary_via(node.node_id)
        extra = 0.0
        for hop in via:
            extra += hop.planned_link_time(now)
        if extra == 0.0:
            return plan
        base_time = model.event_time(DataSource.TERTIARY)
        return ChunkPlan(
            interval=plan.interval,
            source=plan.source,
            rate_factor=plan.rate_factor + extra / base_time,
            via=via,
        )

    def _route_remote(self, node: "Node", plan: ChunkPlan) -> ChunkPlan:
        assert plan.owner is not None
        via = self.topology.uplinks_between(node.node_id, plan.owner.node_id)
        if not via:
            return plan  # same leaf tier: intra-rack, no uplinks occupied
        now = node.engine.now
        extra = 0.0
        for hop in via:
            extra += hop.planned_link_time(now)
        base_time = node.cost_model.event_time(DataSource.REMOTE)
        return ChunkPlan(
            interval=plan.interval,
            source=plan.source,
            owner=plan.owner,
            rate_factor=plan.rate_factor + extra / base_time,
            via=via,
        )

    # -- lifetime hooks ------------------------------------------------------

    def on_chunk_started(self, node: "Node", plan: ChunkPlan) -> None:
        self.base.on_chunk_started(node, plan)
        for tier in plan.via:
            tier.acquire()

    def on_chunk_finished(self, node: "Node", plan: ChunkPlan) -> None:
        self.base.on_chunk_finished(node, plan)
        for tier in plan.via:
            tier.release()

    # -- accounting ----------------------------------------------------------

    def on_chunk_processed(
        self, node: "Node", plan: ChunkPlan, processed: Interval
    ) -> None:
        if plan.source is DataSource.TIER:
            self._account_tier_read(node, plan, processed)
            return
        self.base.on_chunk_processed(node, plan, processed)
        if processed.empty:
            return
        for tier in plan.via:
            tier.link_events += processed.length
        if plan.source is DataSource.TERTIARY:
            self._account_tertiary_read(node, processed)

    def _account_tier_read(
        self, node: "Node", plan: ChunkPlan, processed: Interval
    ) -> None:
        if processed.empty:
            return
        assert plan.tier is not None and plan.tier.cache is not None
        now = node.engine.now
        plan.tier.cache.serve(processed, now)
        for tier in plan.via:
            tier.link_events += processed.length
            # Caches below the serving tier were consulted and missed.
            if tier.cache is not None:
                tier.cache.record_miss(processed, now)
                if self.topology.placement == "lru-rack":
                    # Pull-through: data migrates down toward the node.
                    tier.cache.admit(processed, now)
        obs = node.obs
        if obs.enabled and self.use_cache:
            # A tier hit is still a *node-cache* miss — keep the local
            # cache hit/miss event stream consistent with flat runs.
            obs.emit(
                now,
                kinds.CACHE_MISS,
                "planner",
                node=node.node_id,
                events=processed.length,
            )
        if self.populate_cache:
            node.cache.insert(processed, now)

    def _account_tertiary_read(self, node: "Node", processed: Interval) -> None:
        """Offer a root-tertiary read to the path caches per placement."""
        caches = self._cache_tiers(node.node_id)
        if not caches:
            return
        now = node.engine.now
        for tier in caches:
            assert tier.cache is not None
            tier.cache.record_miss(processed, now)
        placement = self.topology.placement
        if placement == "none":
            return
        if placement == "root-only":
            top = caches[-1].cache
            assert top is not None
            top.admit(processed, now)
        elif placement == "lru-rack":
            for tier in caches:
                assert tier.cache is not None
                tier.cache.admit(processed, now)
        elif placement == "proactive-site":
            self._promote(node, caches, processed, now)

    def _promote(
        self,
        node: "Node",
        caches: Tuple[Tier, ...],
        processed: Interval,
        now: float,
    ) -> None:
        """proactive-site: promote an extent into every path cache once
        it has streamed from the root ``promote_threshold`` times."""
        top = caches[-1]
        promoter = self._promoters.get(top.name)
        if promoter is None:
            promoter = RemoteAccessCounter(self.topology.spec.promote_threshold)
            self._promoters[top.name] = promoter
        promoted = promoter.register(processed)
        if not promoted:
            return
        obs = node.obs
        for extent in promoted:
            self.topology.replicated_events += extent.length
            for tier in caches:
                assert tier.cache is not None
                tier.cache.admit(extent, now)
            if obs.enabled:
                obs.emit(
                    now,
                    kinds.TIER_REPLICATE,
                    "topo",
                    tier=top.name,
                    events=extent.length,
                )
