"""Fault injection for the simulated cluster (``repro.faults``).

The paper's model implicitly assumes a perfect cluster: nodes never
crash, tertiary storage never degrades.  This subsystem injects both
fault classes as deterministic, seeded processes so the scheduling
policies can be compared under *availability* as well as load:

* :mod:`~repro.faults.processes` derives crash/recovery and
  tertiary-stall schedules from the sanctioned RNG streams (or from a
  scripted trace for tests) — the schedule depends only on
  ``(seed, FaultConfig)``, never on the policy under test, so every
  policy in a sweep faces the *same* failures;
* :mod:`~repro.faults.injector` drives the schedule through the engine,
  crashing/recovering nodes and degrading tertiary reads;
* :mod:`~repro.faults.recovery` re-dispatches crash-aborted subjobs with
  exponential backoff, resuming from the last completed chunk boundary
  (completed-chunk progress survives a crash by construction).

Enable with ``SimulationConfig(faults=FaultConfig(...))`` or the CLI's
``--faults`` flag; results gain a
:class:`~repro.sim.metrics.FaultSummary`.
"""

from .injector import FaultInjector
from .net import ChannelStats, ControlChannel
from .processes import FaultEvent, build_fault_schedule
from .recovery import RecoveryManager, backoff_delay, exponential_backoff

__all__ = [
    "ChannelStats",
    "ControlChannel",
    "FaultEvent",
    "FaultInjector",
    "RecoveryManager",
    "backoff_delay",
    "build_fault_schedule",
    "exponential_backoff",
]
