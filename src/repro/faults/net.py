"""Message-level control-plane fault injection (``repro.faults.net``).

The paper's master pushes subjobs to nodes over a LAN and silently
assumes every control message arrives, in order, exactly once.  This
module drops that assumption: a :class:`ControlChannel` sits between the
schedulers and the cluster and subjects every control message — central
dispatches and completion reports, decentral grants and standing-bid
posts — to seeded per-message loss, duplication, reordering and delay
drawn from the dedicated ``faults.net.*`` RNG streams.

The reliability protocol layered on top is a classic ack+retransmit
state machine:

* every reliable message is (re)transmitted until the receiver's ack
  survives the reverse path, with exponential backoff between attempts
  (``ack_timeout * ack_backoff_factor**(attempt-1)``, capped);
* the receiver deduplicates: only the *first* copy of a message invokes
  its ``deliver`` callback, later copies are counted and re-acked;
* after ``retransmit_budget`` retransmits without an ack the message is
  **dead-lettered**: if it was genuinely never delivered its
  ``on_dead_letter`` callback runs (dispatches re-pend their subjob, so
  lost work is re-queued rather than stranded); if it *was* delivered
  and only the acks were lost, it is silently retired — running the
  dead-letter path would double-book the work;
* completion reports are sent ``unlimited`` — ground truth must
  eventually reach the master, so they retransmit without a budget.

Determinism: all randomness comes from the channel's four private
streams, so a run depends only on ``(seed, NetFaultConfig)`` and is
bit-identical across ``--jobs``, ``--resume`` and the sanitizer.  With
the channel disabled (``config is None`` or all probabilities zero)
``send_reliable`` degenerates to a synchronous call — no draws, no
calendar events — so disabled runs are bit-identical to a channel-less
build.

Accounting invariant (asserted by tests): for reliable messages,
``sent == delivered + dead_letters + in_flight`` at every instant — no
message is ever silently stranded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

import numpy as np

from ..core.engine import Engine, Timer
from ..core.events import EventPriority, ScheduledEvent
from ..core.rng import RandomStreams
from ..obs.hooks import NULL_BUS, HookBus, kinds
from ..sim.config import NetFaultConfig
from ..workload.jobs import Subjob, SubjobState
from .recovery import exponential_backoff

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.node import Node
    from ..sched.base import SchedulerPolicy


@dataclass
class ChannelStats:
    """Lifetime counters of one :class:`ControlChannel`."""

    #: Reliable messages admitted via :meth:`ControlChannel.send_reliable`.
    sent: int = 0
    #: Reliable messages whose first copy reached the receiver.
    delivered: int = 0
    #: Reliable messages that exhausted their retransmit budget undelivered.
    dead_letters: int = 0
    #: Individual transmissions (requests, acks, one-way posts) lost in transit.
    copies_lost: int = 0
    #: Spontaneous duplicate copies injected by the channel.
    duplicates: int = 0
    #: Redundant copies discarded by receiver-side deduplication.
    duplicates_dropped: int = 0
    #: Copies held back past later traffic (reordering events).
    reordered: int = 0
    #: Retransmissions performed by the ack state machine.
    retransmits: int = 0
    #: Ack timers that fired.
    timeouts: int = 0
    #: Arbiter failover re-elections (incremented by the decentral policy).
    failovers: int = 0
    #: Subjobs re-pended after a dispatch dead-letter or bounce.
    dispatch_repends: int = 0
    #: One-way (fire-and-forget) posts attempted.
    oneway_sent: int = 0
    #: One-way posts lost (the sender finds out via its own timeout logic).
    oneway_lost: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "sent": self.sent,
            "delivered": self.delivered,
            "dead_letters": self.dead_letters,
            "copies_lost": self.copies_lost,
            "duplicates": self.duplicates,
            "duplicates_dropped": self.duplicates_dropped,
            "reordered": self.reordered,
            "retransmits": self.retransmits,
            "timeouts": self.timeouts,
            "failovers": self.failovers,
            "dispatch_repends": self.dispatch_repends,
            "oneway_sent": self.oneway_sent,
            "oneway_lost": self.oneway_lost,
        }


class _Message:
    """Sender-side state of one reliable message."""

    __slots__ = (
        "msg_id",
        "kind",
        "node",
        "deliver",
        "on_dead_letter",
        "unlimited",
        "attempt",
        "delivered",
        "done",
        "retransmit_event",
    )

    def __init__(
        self,
        msg_id: int,
        kind: str,
        node: int,
        deliver: Callable[[], None],
        on_dead_letter: Optional[Callable[[], None]],
        unlimited: bool,
    ) -> None:
        self.msg_id = msg_id
        self.kind = kind
        self.node = node
        self.deliver = deliver
        self.on_dead_letter = on_dead_letter
        self.unlimited = unlimited
        self.attempt = 1
        self.delivered = False
        self.done = False
        self.retransmit_event: Optional[ScheduledEvent] = None


class ControlChannel:
    """The unreliable control LAN between schedulers and nodes.

    When disabled every call is a synchronous pass-through with zero
    random draws and zero calendar events.  When enabled, deliveries are
    dispatched at :attr:`EventPriority.MESSAGE` and the channel owns the
    ``faults.net.loss/dup/delay/reorder`` streams.
    """

    def __init__(
        self,
        engine: Engine,
        config: Optional[NetFaultConfig],
        streams: RandomStreams,
        obs: HookBus = NULL_BUS,
    ) -> None:
        self.engine = engine
        self.config: NetFaultConfig = (
            config if config is not None else NetFaultConfig()
        )
        self.enabled: bool = config is not None and config.enabled
        self.obs = obs
        self.stats = ChannelStats()
        self._seq = 0
        self._messages: Dict[int, _Message] = {}
        # -- central-dispatch coordination -----------------------------------
        self.policy: Optional["SchedulerPolicy"] = None
        self._repend_backlog: List[Subjob] = []
        self._repend_timer: Optional[Timer] = None
        if self.enabled:
            self._loss: np.random.Generator = streams.get("faults.net.loss")
            self._dup: np.random.Generator = streams.get("faults.net.dup")
            self._delay: np.random.Generator = streams.get("faults.net.delay")
            self._reorder: np.random.Generator = streams.get("faults.net.reorder")
            self._repend_timer = engine.timer(
                self._on_repend_timer,
                priority=EventPriority.TIMER,
                label="net.repend",
            )

    # -- queries ---------------------------------------------------------------

    @property
    def in_flight(self) -> int:
        """Reliable messages neither delivered+acked nor dead-lettered."""
        return len(self._messages)

    @property
    def repend_backlog(self) -> int:
        """Subjobs waiting for re-dispatch after a dead-letter/bounce."""
        return len(self._repend_backlog)

    # -- one-way posts ----------------------------------------------------------

    def attempt(self, kind: str = "post", node: int = -1) -> bool:
        """One loss draw for a fire-and-forget message (standing bids,
        lease beats).  Returns whether the post survived; the sender owns
        any recovery logic (re-advertisement timers, lease-miss counts).
        Disabled channel: always ``True``, no draw."""
        if not self.enabled:
            return True
        self.stats.oneway_sent += 1
        if float(self._loss.random()) < self.config.loss:
            self.stats.oneway_lost += 1
            self.stats.copies_lost += 1
            if self.obs.enabled:
                self.obs.emit(
                    self.engine.now, kinds.NET_DROP, "net", node=node, msg=kind
                )
            return False
        return True

    # -- reliable messaging -------------------------------------------------------

    def send_reliable(
        self,
        deliver: Callable[[], None],
        kind: str,
        node: int = -1,
        on_dead_letter: Optional[Callable[[], None]] = None,
        unlimited: bool = False,
    ) -> None:
        """Send a message that must eventually invoke ``deliver`` exactly
        once, or — after the retransmit budget — ``on_dead_letter``.

        ``unlimited`` removes the budget (completion reports).  Disabled
        channel: ``deliver()`` runs synchronously, nothing is recorded.
        """
        if not self.enabled:
            deliver()
            return
        msg = _Message(self._seq, kind, node, deliver, on_dead_letter, unlimited)
        self._seq += 1
        self._messages[msg.msg_id] = msg
        self.stats.sent += 1
        self._transmit(msg)
        self._arm(msg)

    # -- transmission internals ----------------------------------------------------

    def _transmit(self, msg: _Message) -> None:
        """Put one (possibly duplicated) copy of ``msg`` on the wire."""
        config = self.config
        if float(self._loss.random()) < config.loss:
            self.stats.copies_lost += 1
            if self.obs.enabled:
                self.obs.emit(
                    self.engine.now,
                    kinds.NET_DROP,
                    "net",
                    node=msg.node,
                    msg=msg.kind,
                )
        else:
            self._schedule_copy(msg)
        if config.duplicate > 0 and float(self._dup.random()) < config.duplicate:
            self.stats.duplicates += 1
            self._schedule_copy(msg)

    def _copy_delay(self) -> float:
        config = self.config
        delay = 0.0
        if config.delay_mean > 0:
            delay += float(self._delay.exponential(config.delay_mean))
        if config.reorder > 0 and float(self._reorder.random()) < config.reorder:
            self.stats.reordered += 1
            delay += config.reorder_window * (1.0 + float(self._reorder.random()))
        return delay

    def _schedule_copy(self, msg: _Message) -> None:
        self.engine.call_after(
            self._copy_delay(),
            self._deliver_copy,
            msg,
            priority=EventPriority.MESSAGE,
            label=f"net:{msg.kind}",
        )

    def _deliver_copy(self, msg: _Message) -> None:
        if msg.delivered:
            # Receiver-side dedup: count the redundant copy and re-ack it
            # (the retransmit implies the sender missed the earlier ack).
            self.stats.duplicates_dropped += 1
            if self.obs.enabled:
                self.obs.emit(
                    self.engine.now,
                    kinds.NET_DUP,
                    "net",
                    node=msg.node,
                    msg=msg.kind,
                )
            self._send_ack(msg)
            return
        msg.delivered = True
        self.stats.delivered += 1
        if self.obs.enabled:
            self.obs.emit(
                self.engine.now,
                kinds.NET_DELIVER,
                "net",
                node=msg.node,
                msg=msg.kind,
                attempt=msg.attempt,
            )
        # Draw the ack's fate before running the handler so the channel's
        # stream consumption per delivery is a fixed prefix, independent
        # of whatever scheduling cascade the handler triggers.
        self._send_ack(msg)
        msg.deliver()

    def _send_ack(self, msg: _Message) -> None:
        if msg.done:
            return
        config = self.config
        if float(self._loss.random()) < config.loss:
            self.stats.copies_lost += 1
            return  # lost ack: the sender's timer keeps retransmitting
        delay = 0.0
        if config.delay_mean > 0:
            delay = float(self._delay.exponential(config.delay_mean))
        self.engine.call_after(
            delay,
            self._on_ack,
            msg,
            priority=EventPriority.MESSAGE,
            label=f"net.ack:{msg.kind}",
        )

    def _on_ack(self, msg: _Message) -> None:
        if not msg.done:
            self._retire(msg)

    def _retire(self, msg: _Message) -> None:
        msg.done = True
        if msg.retransmit_event is not None:
            self.engine.cancel(msg.retransmit_event)
            msg.retransmit_event = None
        del self._messages[msg.msg_id]

    # -- retransmit state machine ---------------------------------------------------

    def _arm(self, msg: _Message) -> None:
        config = self.config
        timeout = exponential_backoff(
            msg.attempt,
            config.ack_timeout,
            config.ack_backoff_factor,
            config.ack_timeout_max,
        )
        msg.retransmit_event = self.engine.call_after(
            timeout,
            self._on_timeout,
            msg,
            priority=EventPriority.TIMER,
            label=f"net.rto:{msg.kind}",
        )

    def _on_timeout(self, msg: _Message) -> None:
        if msg.done:
            return
        msg.retransmit_event = None
        self.stats.timeouts += 1
        if self.obs.enabled:
            self.obs.emit(
                self.engine.now,
                kinds.NET_TIMEOUT,
                "net",
                node=msg.node,
                msg=msg.kind,
                attempt=msg.attempt,
            )
        if not msg.unlimited and msg.attempt > self.config.retransmit_budget:
            self._give_up(msg)
            return
        msg.attempt += 1
        self.stats.retransmits += 1
        if self.obs.enabled:
            self.obs.emit(
                self.engine.now,
                kinds.NET_RETRANSMIT,
                "net",
                node=msg.node,
                msg=msg.kind,
                attempt=msg.attempt,
            )
        self._transmit(msg)
        self._arm(msg)

    def _give_up(self, msg: _Message) -> None:
        if msg.delivered:
            # The payload arrived; only the acks were lost.  Retiring
            # without the dead-letter path is what keeps delivery
            # exactly-once — re-pending here would double-book the work.
            self._retire(msg)
            return
        self.stats.dead_letters += 1
        if self.obs.enabled:
            self.obs.emit(
                self.engine.now,
                kinds.NET_DEAD_LETTER,
                "net",
                node=msg.node,
                msg=msg.kind,
                attempts=msg.attempt,
            )
        callback = msg.on_dead_letter
        self._retire(msg)
        if callback is not None:
            callback()

    # -- central dispatch coordination ------------------------------------------------

    def attach_policy(self, policy: "SchedulerPolicy") -> None:
        """Install the bound policy used for re-dispatching dead-lettered
        work (called by the simulator after ``policy.bind``)."""
        self.policy = policy

    def dispatch(self, node: "Node", subjob: Subjob) -> None:
        """Reliable central push of ``subjob`` to ``node``.

        The node is *reserved* while the message is in flight so no other
        scheduling decision double-books it; delivery clears the
        reservation and starts the subjob (or bounces it back to the
        re-pend backlog if the node crashed in the meantime), and a
        dead-letter re-pends it.
        """
        node.reserved = True
        self.send_reliable(
            lambda: self._deliver_dispatch(node, subjob),
            kind="dispatch",
            node=node.node_id,
            on_dead_letter=lambda: self._dispatch_dead_letter(node, subjob),
        )

    def _deliver_dispatch(self, node: "Node", subjob: Subjob) -> None:
        node.reserved = False
        if (
            subjob.state not in (SubjobState.PENDING, SubjobState.SUSPENDED)
            or subjob.remaining_events == 0
        ):
            return  # finished or resumed through another path meanwhile
        if node.failed or node.busy:
            self._repend(subjob)
            return
        node.start(subjob)

    def _dispatch_dead_letter(self, node: "Node", subjob: Subjob) -> None:
        node.reserved = False
        if (
            subjob.state in (SubjobState.PENDING, SubjobState.SUSPENDED)
            and subjob.remaining_events > 0
        ):
            self._repend(subjob)

    def _repend(self, subjob: Subjob) -> None:
        self.stats.dispatch_repends += 1
        self._repend_backlog.append(subjob)
        self._arm_repend()

    def drain(self) -> int:
        """Re-dispatch re-pended subjobs onto idle nodes.

        Drain points (caller-driven, mirroring
        :class:`~repro.faults.recovery.RecoveryManager`): every subjob
        completion and the channel's own backstop timer.  Returns the
        number re-dispatched.
        """
        if not self._repend_backlog or self.policy is None:
            return 0
        dispatched = 0
        index = 0
        while index < len(self._repend_backlog):
            subjob = self._repend_backlog[index]
            if (
                subjob.state not in (SubjobState.PENDING, SubjobState.SUSPENDED)
                or subjob.remaining_events == 0
            ):
                del self._repend_backlog[index]  # resumed/finished elsewhere
                continue
            node = self.policy.pick_retry_node(subjob)
            if node is None:
                index += 1  # no idle node right now
                continue
            del self._repend_backlog[index]
            # Routed back through start_on, i.e. through this channel: the
            # re-dispatch rides the same unreliable LAN as the original.
            self.policy.start_on(node, subjob)
            dispatched += 1
        self._arm_repend()
        return dispatched

    def _on_repend_timer(self) -> None:
        self.drain()

    def _arm_repend(self) -> None:
        if self._repend_timer is None:
            return
        if self._repend_backlog:
            self._repend_timer.schedule_after(self.config.ack_timeout)
        else:
            self._repend_timer.cancel()

    def summary(self) -> Dict[str, Any]:
        """Counters plus live queue depths (debug dumps and tests)."""
        payload: Dict[str, Any] = self.stats.as_dict()
        payload["in_flight"] = self.in_flight
        payload["repend_backlog"] = self.repend_backlog
        return payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ControlChannel(enabled={self.enabled}, "
            f"in_flight={self.in_flight}, stats={self.stats.as_dict()})"
        )
