"""Failure processes: seeded schedules of crash/recovery and stall events.

Schedules are *precomputed* before the run starts, from RNG streams that
nothing else consumes (``faults.node<i>``, ``faults.tertiary``).  Two
consequences, both deliberate:

* the failure trace is a pure function of ``(seed, FaultConfig,
  n_nodes, horizon)`` — every policy in a comparison sweep experiences
  the identical failures, so availability differences between policies
  are attributable to the policies alone;
* adding fault injection to a run does not perturb any existing stream
  (arrivals, job sizes, ...), so a faulted run's *workload* is
  bit-identical to the fault-free run with the same seed.

Node crashes follow an alternating renewal process per node — up times
~ Exp(mtbf), down times ~ Exp(mttr) — the standard availability model
for independent machine failures.  Tertiary stalls are a single
cluster-wide renewal process (the storage system is shared).  A
non-empty ``FaultConfig.scripted`` trace replaces both stochastic
processes (deterministic tests and replay).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..core.rng import RandomStreams
from ..sim.config import FaultConfig

#: Actions carried by a :class:`FaultEvent`.
ACTION_FAIL = "fail"
ACTION_RECOVER = "recover"
ACTION_STALL_START = "stall_start"
ACTION_STALL_END = "stall_end"


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault transition.

    ``node_id`` is ``-1`` for the cluster-wide stall actions.
    """

    time: float
    action: str
    node_id: int = -1

    def sort_key(self) -> Tuple[float, int, int]:
        # Recover before fail at the same instant: a scripted back-to-back
        # crash (recover at t, next fail at t) must not fail a failed node.
        order = {
            ACTION_RECOVER: 0,
            ACTION_STALL_END: 1,
            ACTION_FAIL: 2,
            ACTION_STALL_START: 3,
        }
        return (self.time, order[self.action], self.node_id)


def _scripted_schedule(config: FaultConfig, n_nodes: int) -> List[FaultEvent]:
    events: List[FaultEvent] = []
    for fault in config.scripted:
        if fault.kind == "crash":
            if not (0 <= fault.node_id < n_nodes):
                raise ValueError(
                    f"scripted crash targets node {fault.node_id} but the "
                    f"cluster has {n_nodes} nodes"
                )
            events.append(FaultEvent(fault.time, ACTION_FAIL, fault.node_id))
            events.append(
                FaultEvent(fault.time + fault.duration, ACTION_RECOVER, fault.node_id)
            )
        else:  # "stall" (validated by ScriptedFault)
            events.append(FaultEvent(fault.time, ACTION_STALL_START))
            events.append(
                FaultEvent(fault.time + fault.duration, ACTION_STALL_END)
            )
    return events


def build_fault_schedule(
    config: FaultConfig,
    n_nodes: int,
    streams: RandomStreams,
    horizon: float,
) -> List[FaultEvent]:
    """The full fault-event schedule for one run, sorted for injection.

    Only events *starting* before ``horizon`` are generated; a recovery
    (or stall end) falling past the horizon is still included so open
    down/stall stretches are explicit in the schedule — the engine simply
    never dispatches it, and the injector's ``finalize`` accounts the
    open stretch.
    """
    if config.scripted:
        events = _scripted_schedule(config, n_nodes)
    else:
        events = []
        if config.node_mtbf > 0:
            for node_id in range(n_nodes):
                gen = streams.get(f"faults.node{node_id}")
                t = 0.0
                while True:
                    t += float(gen.exponential(config.node_mtbf))
                    if t >= horizon:
                        break
                    events.append(FaultEvent(t, ACTION_FAIL, node_id))
                    t += float(gen.exponential(config.node_mttr))
                    events.append(FaultEvent(t, ACTION_RECOVER, node_id))
                    if t >= horizon:
                        break
        if config.stall_interval > 0:
            gen = streams.get("faults.tertiary")
            t = 0.0
            while True:
                t += float(gen.exponential(config.stall_interval))
                if t >= horizon:
                    break
                events.append(FaultEvent(t, ACTION_STALL_START))
                t += float(gen.exponential(config.stall_duration))
                events.append(FaultEvent(t, ACTION_STALL_END))
                if t >= horizon:
                    break
    events.sort(key=FaultEvent.sort_key)
    return events
