"""The fault injector: drives a fault schedule through a live simulation.

Owns the precomputed :class:`~repro.faults.processes.FaultEvent`
schedule, applies each transition to the cluster (node crash/recovery,
cluster-wide tertiary stall) at :data:`~repro.core.events.EventPriority.FAULT`
priority — after completions at the same instant (a chunk finishing when
its node dies counts as finished) but before any scheduling activity
(arrivals and period boundaries already see the node down) — and feeds
aborted subjobs into the :class:`~repro.faults.recovery.RecoveryManager`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from ..cluster.cluster import Cluster
from ..cluster.node import Node
from ..core.engine import Engine
from ..core.events import EventPriority
from ..core.rng import RandomStreams
from ..obs.hooks import NULL_BUS, HookBus, kinds
from ..sim.config import FaultConfig
from ..sim.metrics import FaultSummary
from .processes import (
    ACTION_FAIL,
    ACTION_RECOVER,
    ACTION_STALL_START,
    FaultEvent,
    build_fault_schedule,
)
from .recovery import RecoveryManager

if TYPE_CHECKING:  # pragma: no cover
    from ..sched.base import SchedulerPolicy


class FaultInjector:
    """Applies a fault schedule to a cluster and manages recovery."""

    def __init__(
        self,
        engine: Engine,
        cluster: Cluster,
        policy: "SchedulerPolicy",
        config: FaultConfig,
        streams: RandomStreams,
        horizon: float,
        obs: HookBus = NULL_BUS,
    ) -> None:
        self.engine = engine
        self.cluster = cluster
        self.policy = policy
        self.config = config
        self.obs = obs
        self.schedule: List[FaultEvent] = build_fault_schedule(
            config, len(cluster), streams, horizon
        )
        self.recovery = RecoveryManager(engine, policy, config, obs=obs)
        self.stats_failures = 0
        self.stats_stalls = 0
        self.stats_stall_seconds = 0.0
        self._stall_depth = 0
        self._stall_since = 0.0

    # -- lifecycle ------------------------------------------------------------

    def prime(self) -> None:
        """Schedule every fault event on the engine calendar.

        Events are scheduled in sorted order so their engine sequence
        numbers — and therefore same-instant dispatch order — are
        deterministic.
        """
        for event in self.schedule:
            self.engine.call_at(
                event.time,
                self._apply,
                event,
                priority=EventPriority.FAULT,
                label=f"fault:{event.action}"
                + (f":{event.node_id}" if event.node_id >= 0 else ""),
            )

    def on_completion(self, node: Node) -> None:
        """Drain point: a subjob just completed on ``node``.

        Called by the simulator *before* the policy's completion routing,
        so a due retry gets first claim on the freed node (the policy's
        handler then sees the node busy and skips it — the documented
        deferred-completion pattern).
        """
        self.recovery.drain()

    def finalize(self) -> None:
        """Close open downtime/stall stretches at the end of the run."""
        for node in self.cluster:
            node.flush_downtime()
        if self._stall_depth > 0:
            self.stats_stall_seconds += self.engine.now - self._stall_since
            self._stall_since = self.engine.now

    def summary(self, degraded_makespan: float = 0.0) -> FaultSummary:
        """Aggregate fault accounting across the cluster."""
        busy = sum(node.stats.busy_seconds for node in self.cluster)
        lost_seconds = sum(node.stats.lost_seconds for node in self.cluster)
        wasted = busy + lost_seconds
        return FaultSummary(
            failures=self.stats_failures,
            stalls=self.stats_stalls,
            subjobs_aborted=sum(
                node.stats.subjobs_aborted for node in self.cluster
            ),
            retries=self.recovery.stats_retries,
            giveups=self.recovery.stats_giveups,
            lost_events=sum(node.stats.lost_events for node in self.cluster),
            lost_seconds=lost_seconds,
            downtime_seconds=sum(
                node.stats.downtime_seconds for node in self.cluster
            ),
            stall_seconds=self.stats_stall_seconds,
            goodput=1.0 if wasted <= 0 else busy / wasted,
            degraded_makespan=degraded_makespan,
        )

    # -- transitions -----------------------------------------------------------

    def _apply(self, event: FaultEvent) -> None:
        if event.action == ACTION_FAIL:
            self._fail(self.cluster[event.node_id])
        elif event.action == ACTION_RECOVER:
            self._recover(self.cluster[event.node_id])
        elif event.action == ACTION_STALL_START:
            self._stall_start()
        else:
            self._stall_end()

    def _fail(self, node: Node) -> None:
        self.stats_failures += 1
        aborted = node.fail(wipe_cache=self.config.wipe_cache_on_failure)
        self.policy.on_node_failed(node, aborted)
        if aborted is not None:
            self.recovery.add(aborted)

    def _recover(self, node: Node) -> None:
        node.recover()
        # Due retries get first claim on the fresh node, then the policy
        # may feed it from its own queues.
        self.recovery.drain()
        self.policy.on_node_recovered(node)

    def _stall_start(self) -> None:
        self.stats_stalls += 1
        self._stall_depth += 1
        if self._stall_depth == 1:
            self._stall_since = self.engine.now
        for node in self.cluster:
            node.tertiary_slowdown = self.config.stall_slowdown
        if self.obs.enabled:
            self.obs.emit(
                self.engine.now,
                kinds.STALL_START,
                "faults",
                slowdown=self.config.stall_slowdown,
            )

    def _stall_end(self) -> None:
        self._stall_depth -= 1
        if self._stall_depth > 0:
            return  # scripted stalls may overlap; end with the last one
        self.stats_stall_seconds += self.engine.now - self._stall_since
        for node in self.cluster:
            node.tertiary_slowdown = 1.0
        if self.obs.enabled:
            self.obs.emit(self.engine.now, kinds.STALL_END, "faults")
