"""Recovery policy: retry crash-aborted subjobs with exponential backoff.

An aborted subjob keeps all progress up to its last completed chunk (the
node credits whole chunks as they finish), so a retry *resumes from the
chunk boundary* rather than restarting — the subjob is simply SUSPENDED
and re-dispatched.

The :class:`RecoveryManager` holds the retry backlog.  A retry becomes
*due* after an exponential backoff; due retries are offered to the
scheduler at three drain points (all driven by the caller):

* the backoff timer fires (a retry just became due);
* a subjob completes — *before* the policy's completion handler runs,
  so a due retry gets first claim on the freed node (otherwise
  aggressively splitting policies would refill every node themselves
  and starve the backlog);
* a node recovers — before ``policy.on_node_recovered``, for the same
  reason.

Node choice is delegated to
:meth:`~repro.sched.base.SchedulerPolicy.pick_retry_node` (default: the
idle node with the most of the subjob's remaining data cached), so
cache-aware policies keep retries cache-preserving while cache-less
policies degrade gracefully to first-idle placement.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from ..core.engine import Engine, Timer
from ..core.events import EventPriority
from ..obs.hooks import NULL_BUS, HookBus, kinds
from ..sim.config import FaultConfig
from ..workload.jobs import Subjob, SubjobState

if TYPE_CHECKING:  # pragma: no cover
    from ..sched.base import SchedulerPolicy


def exponential_backoff(
    attempt: int, base: float, factor: float, cap: float
) -> float:
    """Capped exponential backoff before retry number ``attempt``
    (1-based): ``base * factor**(attempt-1)``, at most ``cap``.

    Shared by the in-simulation :class:`RecoveryManager` and the
    execution layer's (``repro.exec``) worker retries.
    """
    if attempt < 1:
        raise ValueError(f"attempt must be >= 1, got {attempt}")
    return min(base * factor ** (attempt - 1), cap)


def backoff_delay(attempt: int, config: FaultConfig) -> float:
    """The backoff before retry number ``attempt`` (1-based):
    ``base * factor**(attempt-1)``, capped at ``retry_backoff_max``."""
    return exponential_backoff(
        attempt,
        config.retry_backoff_base,
        config.retry_backoff_factor,
        config.retry_backoff_max,
    )


class _PendingRetry:
    __slots__ = ("subjob", "attempt", "due", "seq")

    def __init__(self, subjob: Subjob, attempt: int, due: float, seq: int) -> None:
        self.subjob = subjob
        self.attempt = attempt
        self.due = due
        self.seq = seq


class RecoveryManager:
    """The retry backlog of crash-aborted subjobs."""

    def __init__(
        self,
        engine: Engine,
        policy: "SchedulerPolicy",
        config: FaultConfig,
        obs: HookBus = NULL_BUS,
    ) -> None:
        self.engine = engine
        self.policy = policy
        self.config = config
        self.obs = obs
        #: Due-ordered backlog (ties broken by admission order).
        self._backlog: List[_PendingRetry] = []
        #: Lifetime abort count per subjob id (attempt numbering).
        self._attempts: Dict[str, int] = {}
        self._seq = 0
        self.stats_retries = 0
        self.stats_giveups = 0
        self._timer: Timer = engine.timer(
            self._on_timer, priority=EventPriority.TIMER, label="fault-retry"
        )

    # -- admission -----------------------------------------------------------

    def add(self, subjob: Subjob) -> None:
        """Admit a just-aborted subjob; it becomes due after its backoff."""
        attempt = self._attempts.get(subjob.sid, 0) + 1
        self._attempts[subjob.sid] = attempt
        if 0 < self.config.max_retries < attempt:
            self.stats_giveups += 1
            if self.obs.enabled:
                self.obs.emit(
                    self.engine.now,
                    kinds.FAULT_GIVEUP,
                    "faults",
                    job=subjob.job.job_id,
                    sid=subjob.sid,
                    attempts=attempt - 1,
                )
            return
        due = self.engine.now + backoff_delay(attempt, self.config)
        entry = _PendingRetry(subjob, attempt, due, self._seq)
        self._seq += 1
        self._backlog.append(entry)
        self._backlog.sort(key=lambda e: (e.due, e.seq))
        self._rearm()

    # -- draining --------------------------------------------------------------

    def drain(self) -> int:
        """Dispatch every due retry an idle node will take; returns the
        number dispatched.  Call at the drain points documented above."""
        dispatched = 0
        now = self.engine.now
        index = 0
        while index < len(self._backlog):
            entry = self._backlog[index]
            if entry.due > now:
                break  # sorted by due time: nothing further is due
            subjob = entry.subjob
            if subjob.state is not SubjobState.SUSPENDED:
                # The policy resumed (or finished) it through its normal
                # suspended-work path before the backoff fired; the retry
                # is stale.  A re-abort re-admits it with a fresh entry.
                del self._backlog[index]
                continue
            node = self.policy.pick_retry_node(subjob)
            if node is None:
                index += 1  # no idle node now; keep for the next drain
                continue
            del self._backlog[index]
            self.stats_retries += 1
            if self.obs.enabled:
                self.obs.emit(
                    now,
                    kinds.FAULT_RETRY,
                    "faults",
                    node=node.node_id,
                    job=subjob.job.job_id,
                    sid=subjob.sid,
                    attempt=entry.attempt,
                )
            self.policy.start_on(node, subjob)
            dispatched += 1
        self._rearm()
        return dispatched

    @property
    def pending(self) -> int:
        """Backlog size (due and not-yet-due entries)."""
        return len(self._backlog)

    # -- internals -------------------------------------------------------------

    def _on_timer(self) -> None:
        self.drain()

    def _rearm(self) -> None:
        """Point the timer at the earliest not-yet-due entry."""
        now = self.engine.now
        for entry in self._backlog:
            if entry.due > now:
                self._timer.schedule_at(entry.due)
                return
        self._timer.cancel()
