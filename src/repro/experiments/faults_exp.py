"""The ``faults`` experiment — policy degradation under node failures.

The paper evaluates its policies on an implicitly perfect cluster.  This
experiment injects node crashes (per-node exponential MTBF/MTTR renewal
processes from dedicated RNG streams — the failure trace is identical
for every policy at a given seed) and compares how the policies degrade
as availability drops.

The mechanism under test: a crash loses the node's in-flight chunk.  The
farm policy runs whole jobs from tertiary storage (~0.8 s/event), so its
in-flight chunks are long and every crash wastes a lot of compute; the
cache-aware policies process mostly cached chunks (~0.26 s/event) and
split work into smaller per-node pieces, so the same crash schedule
costs them strictly less lost work — cache locality doubles as crash
resilience.
"""

from __future__ import annotations

from typing import List, Optional

from ..analysis.tables import format_table
from ..core import units
from ..sim.config import FaultConfig
from ..sim.runner import RunSpec, SweepResult
from .figures import _base
from .registry import Experiment, Scale, register_experiment

_POLICIES = ("farm", "cache-splitting", "out-of-order", "delayed")

#: Mean time between failures per node: frequent → rare → none (baseline).
_MTBF_POINTS: List[Optional[float]] = [
    6 * units.HOUR,
    1 * units.DAY,
    1 * units.WEEK,
    None,
]

_MTTR = 1 * units.HOUR


def _fault_label(mtbf: Optional[float]) -> str:
    return "none" if mtbf is None else units.fmt_duration(mtbf)


def _faults_build(scale: Scale) -> List[RunSpec]:
    base = _base(scale, arrival_rate_per_hour=1.0)
    specs: List[RunSpec] = []
    for mtbf in _MTBF_POINTS:
        faults = (
            None
            if mtbf is None
            else FaultConfig(node_mtbf=mtbf, node_mttr=_MTTR)
        )
        config = base.with_(faults=faults)
        for policy in _POLICIES:
            specs.append(
                RunSpec.make(
                    config,
                    policy,
                    label=f"{policy}@mtbf={_fault_label(mtbf)}",
                )
            )
    return specs


def _faults_render(sweep: SweepResult) -> str:
    rows = []
    for spec, result in sweep.pairs():
        faults = result.faults
        duration = spec.config.duration * spec.config.n_nodes
        if faults is None:
            availability = 1.0
            lost_events = 0
            lost_pct = 0.0
            retries = 0
            goodput = 1.0
        else:
            availability = 1.0 - faults.downtime_seconds / duration
            lost_events = faults.lost_events
            lost_pct = 100.0 * (1.0 - faults.goodput)
            retries = faults.retries
            goodput = faults.goodput
        rows.append(
            [
                spec.label,
                f"{availability:.4f}",
                lost_events,
                f"{lost_pct:.2f}",
                retries,
                f"{goodput:.4f}",
                f"{result.measured.mean_speedup:.2f}",
                result.measured.n_jobs,
                "OVERLOADED" if result.overload.overloaded else "steady",
            ]
        )
    return format_table(
        [
            "policy@mtbf",
            "availability",
            "lost events",
            "lost work %",
            "retries",
            "goodput",
            "speedup",
            "jobs",
            "state",
        ],
        rows,
        title=(
            "Policy degradation under node crashes (identical per-seed "
            "failure schedule for every policy; MTTR "
            f"{units.fmt_duration(_MTTR)}) — the farm's long uncached "
            "chunks lose the most work per crash; cache-aware policies "
            "degrade less"
        ),
    )


register_experiment(
    Experiment(
        exp_id="faults",
        title="Fault injection: policy robustness vs node availability",
        paper_ref="beyond the paper (its cluster is implicitly perfect)",
        build=_faults_build,
        render=_faults_render,
        expectation=(
            "with the same crash schedule, the farm policy shows the most "
            "lost work (long uncached in-flight chunks) while at least one "
            "cache-aware policy loses strictly less; goodput and speedup "
            "degrade monotonically as MTBF shrinks"
        ),
    )
)
