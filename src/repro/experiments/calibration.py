"""Calibration of the adaptive policy's delay table (§6).

The paper: "This policy makes use of the performance parameters shown in
Figures 5 and 6 in order to choose the minimal 'period' delay that allows
to sustain the current load."  This module measures those performance
parameters — the maximal sustainable load of delayed scheduling for each
candidate period delay — and converts them into the (load fraction →
delay) step table :class:`~repro.sched.adaptive.AdaptiveDelayPolicy`
consumes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from ..core import units
from ..sim.config import SimulationConfig
from ..sim.runner import RunSpec, load_sweep, run_sweep

if TYPE_CHECKING:  # pragma: no cover
    from ..exec.executor import Executor

#: Candidate delays matching the paper's Fig 5 sweep, plus zero.
DEFAULT_CANDIDATE_DELAYS: Tuple[float, ...] = (
    0.0,
    11 * units.HOUR,
    2 * units.DAY,
    1 * units.WEEK,
)


def max_sustained_load_for_delay(
    config: SimulationConfig,
    delay: float,
    stripe_events: int,
    loads_per_hour: Sequence[float],
    processes: Optional[int] = None,
    executor: Optional["Executor"] = None,
) -> float:
    """Highest offered load (from the given grid) that stays in steady
    state under delayed scheduling with ``delay``."""
    specs: List[RunSpec] = load_sweep(
        config,
        "delayed",
        loads_per_hour,
        label=f"delay-{delay:.0f}",
        period=delay,
        stripe_events=stripe_events,
    )
    sweep = run_sweep(specs, processes=processes, executor=executor)
    sustained = [r.load_per_hour for _, r in sweep.pairs() if r.steady]
    return max(sustained) if sustained else 0.0


def calibrate_delay_table(
    config: SimulationConfig,
    stripe_events: int = 5000,
    delays: Sequence[float] = DEFAULT_CANDIDATE_DELAYS,
    loads_per_hour: Optional[Sequence[float]] = None,
    headroom: float = 0.95,
    processes: Optional[int] = None,
    executor: Optional["Executor"] = None,
) -> List[Tuple[float, float]]:
    """Measure a (sustainable load fraction → delay) table.

    ``headroom`` derates each measured ceiling so the adaptive policy
    escalates *before* the cliff rather than on it.  The returned table is
    monotone (a longer delay never reports a lower ceiling than a shorter
    one — enforced, since measurement noise can invert neighbours).
    """
    maximum = config.max_theoretical_load_per_hour
    if loads_per_hour is None:
        loads_per_hour = [maximum * f for f in (0.45, 0.55, 0.65, 0.75, 0.85, 0.95)]
    table: List[Tuple[float, float]] = []
    floor = 0.0
    for delay in sorted(delays):
        ceiling = max_sustained_load_for_delay(
            config, delay, stripe_events, loads_per_hour,
            processes=processes, executor=executor,
        )
        fraction = max(floor, headroom * ceiling / maximum)
        floor = fraction
        table.append((round(fraction, 3), delay))
    return table


def summarize_table(table: Sequence[Tuple[float, float]]) -> str:
    lines = ["load fraction ceiling -> delay"]
    for fraction, delay in table:
        lines.append(f"  <= {fraction:5.2f} of max  ->  {units.fmt_duration(delay)}")
    return "\n".join(lines)
