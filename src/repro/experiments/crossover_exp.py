"""The ``crossover`` experiment — centralized vs decentralized scheduling.

The paper's policies all assume a central master that knows every node's
cache contents and pushes each subjob explicitly — two control messages
per dispatched subjob, plus an O(nodes) cache scan per decision.  That
is invisible at the paper's 5-20 nodes and a real bottleneck at
hundreds.  The decentralized ``repro.sched.decentral`` subsystem inverts
the flow: the arbiter publishes one *rule* per job, nodes bid with
purely local knowledge when hungry, and grants come back in batches.

This experiment sweeps policy x cluster size in a small-subjob regime
(chunk-sized tasks, so control traffic per unit of work is maximal) and
reports, per point, the delivered performance (makespan over the run's
completed jobs, mean per-job stretch) next to the control-plane bill
(messages, messages per dispatched subjob, payload bytes) from the
schema-v4 ``sched`` accounting.  The expected crossover: at small node
counts decentral is within noise of the best central policy, and from
~100 nodes on its batched rule/bid/grant protocol moves strictly fewer
messages per subjob than the central push model's two.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from ..analysis.tables import format_table
from ..core import units
from ..sim.config import quick_config
from ..sim.runner import RunSpec, SweepResult
from .registry import Experiment, Scale, register_experiment

#: One seed for every point (the sweep compares policies, not seeds).
_SEED = 7

#: Offered load per node (jobs/hour) — held constant as the cluster
#: grows, so every node count sees the same per-node pressure.  2.5/h
#: sits past the uncached capacity (~2.3/h/node): policies survive only
#: by exploiting caches, so the sweep separates them instead of letting
#: everyone coast at low utilisation.
_RATE_PER_NODE = 2.5

#: Policies compared: the paper's span plus both decentral variants.
_POLICIES = (
    "farm",
    "splitting",
    "out-of-order",
    "delayed",
    "decentral",
    "decentral-nolocal",
)

#: Cluster sizes per scale (the paper stops at 20; the crossover is why
#: we keep going).
_NODE_COUNTS = {
    Scale.SMOKE: [5, 10],
    Scale.QUICK: [5, 20, 100],
    Scale.FULL: [5, 20, 100, 500],
}

_DURATIONS = {
    Scale.SMOKE: 2 * units.DAY,
    Scale.QUICK: 2 * units.DAY,
    Scale.FULL: 4 * units.DAY,
}

#: The delayed policy's default 2-day period would swallow these short
#: runs whole; give it a period proportionate to the sweep duration.
_DELAYED_PERIOD = 6 * units.HOUR


def _crossover_build(scale: Scale) -> List[RunSpec]:
    specs: List[RunSpec] = []
    for n_nodes in _NODE_COUNTS[scale]:
        # Small-subjob regime: chunk-sized tasks maximise the control
        # traffic per unit of useful work, which is the axis under test.
        config = quick_config(
            n_nodes=n_nodes,
            arrival_rate_per_hour=_RATE_PER_NODE * n_nodes,
            duration=_DURATIONS[scale],
            chunk_events=100,
            seed=_SEED,
        )
        for policy in _POLICIES:
            params = {"period": _DELAYED_PERIOD} if policy == "delayed" else {}
            specs.append(
                RunSpec.make(
                    config, policy, label=f"{policy}@n={n_nodes}", **params
                )
            )
    return specs


def _mean_stretch(result) -> float:
    """Mean sojourn/ideal ratio over completed jobs (lower is better)."""
    ratios = [
        record.sojourn_time / record.reference_time
        for record in result.records
        if record.reference_time > 0
    ]
    return sum(ratios) / len(ratios) if ratios else math.nan


def _crossover_render(sweep: SweepResult) -> str:
    rows = []
    # messages/subjob per (n_nodes -> policy) for the crossover verdict;
    # overloaded points are excluded (a collapsing scheduler's message
    # bill is not a meaningful operating point).
    per_point: Dict[int, Dict[str, float]] = {}
    for spec, result in sweep.pairs():
        sched = result.sched
        makespan = max((r.completion for r in result.records), default=0.0)
        mps = sched.messages_per_subjob() if sched is not None else math.nan
        if not result.overload.overloaded:
            per_point.setdefault(spec.config.n_nodes, {})[spec.policy] = mps
        rows.append(
            [
                spec.label,
                spec.config.n_nodes,
                units.fmt_duration(makespan),
                f"{_mean_stretch(result):.2f}",
                sched.messages if sched is not None else "-",
                f"{mps:.2f}",
                f"{sched.control_bytes / 1024.0:.1f}" if sched is not None else "-",
                sched.mode if sched is not None else "-",
                "OVERLOADED" if result.overload.overloaded else "steady",
            ]
        )
    table = format_table(
        [
            "policy@nodes",
            "nodes",
            "makespan",
            "stretch",
            "ctrl msgs",
            "msgs/subjob",
            "ctrl KB",
            "mode",
            "state",
        ],
        rows,
        title=(
            "Centralized vs decentralized scheduling across cluster sizes "
            "(constant per-node load, chunk-sized tasks; central policies "
            "carry the synthesized 2-messages-per-subjob push cost)"
        ),
    )
    verdict: List[Tuple[int, str]] = []
    for n_nodes in sorted(per_point):
        decentral = per_point[n_nodes].get("decentral", math.nan)
        central = [
            value
            for policy, value in per_point[n_nodes].items()
            if not policy.startswith("decentral") and not math.isnan(value)
        ]
        if central and not math.isnan(decentral):
            best = min(central)
            sign = "<" if decentral < best else ">="
            verdict.append(
                (
                    n_nodes,
                    f"n={n_nodes}: decentral {decentral:.2f} {sign} "
                    f"best-central {best:.2f} msgs/subjob",
                )
            )
    lines = [
        table,
        "",
        "crossover (control messages per dispatched subjob, steady points):",
    ]
    lines.extend(f"  {text}" for _, text in verdict)
    return "\n".join(lines)


register_experiment(
    Experiment(
        exp_id="crossover",
        title="Centralized vs decentralized scheduling crossover",
        paper_ref="beyond the paper (its master is implicitly free)",
        build=_crossover_build,
        render=_crossover_render,
        expectation=(
            "at <=20 nodes decentral's stretch is within noise of the best "
            "central policy; from 100 nodes on it moves strictly fewer "
            "control messages per dispatched subjob than the central "
            "push model's two (one rule per job, batched grants)"
        ),
    )
)
