"""The ``degradation`` experiment — schedulers on an unreliable LAN.

Every scheduler in the paper assumes a perfect control network: pushes
arrive, completion reports arrive, grants arrive, exactly once and in
order.  The ``repro.faults.net`` channel drops that assumption, and the
hardened protocols (ack+retransmit for central dispatch, idempotent
grants plus lease-based arbiter failover for decentral bidding) are
supposed to turn message loss into *bounded* extra latency instead of
lost work.

This experiment measures how well that holds: it sweeps policy x
control-message loss rate (0-20 %) x cluster size and reports, per
point, the delivered performance (makespan, goodput as the fraction of
arrived jobs completed, mean waiting) next to the reliability bill
(retransmits, dead letters, failovers, control messages per subjob)
from the schema-v5 ``sched`` accounting.  The loss-free point of each
curve runs with no channel at all, so the curves are anchored to the
exact bit-identical baseline of every other experiment.

The expected shape: graceful, monotone-ish degradation — goodput stays
near 1.0 and makespan grows by at most tens of percent up to 10 % loss,
with retransmits (not dead letters) absorbing the damage; whichever
policy collapses first should only do so past that point, and the
render names it.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from ..analysis.tables import format_table
from ..core import units
from ..sim.config import NetFaultConfig, quick_config
from ..sim.runner import RunSpec, SweepResult
from .registry import Experiment, Scale, register_experiment

#: One seed for every point (the sweep compares loss rates, not seeds).
_SEED = 11

#: Offered load per node (jobs/hour), held constant across cluster
#: sizes.  Below uncached capacity: the baseline must be comfortably
#: steady so that any collapse on the curve is the *network's* doing.
_RATE_PER_NODE = 1.5

#: The two protocol families under test: the best central push policy
#: and the decentralized rule/bid/grant scheduler.
_POLICIES = ("out-of-order", "decentral")

#: Control-message loss probabilities swept (0 = perfect network,
#: channel disabled entirely).
_LOSS_RATES = (0.0, 0.02, 0.05, 0.10, 0.20)

_NODE_COUNTS = {
    Scale.SMOKE: [6],
    Scale.QUICK: [10],
    Scale.FULL: [10, 50],
}

_DURATIONS = {
    Scale.SMOKE: 1 * units.DAY,
    Scale.QUICK: 2 * units.DAY,
    Scale.FULL: 4 * units.DAY,
}

#: A lossy channel with everything else ideal: pure loss isolates the
#: retransmit machinery from delay/reorder noise, and a short ack
#: timeout keeps recovery fast relative to subjob service times.
_ACK_TIMEOUT = 5.0

#: Goodput below this marks the collapse point of a curve.
_COLLAPSE_GOODPUT = 0.9


def _net_for(loss: float) -> NetFaultConfig:
    return NetFaultConfig(loss=loss, ack_timeout=_ACK_TIMEOUT)


def _degradation_build(scale: Scale) -> List[RunSpec]:
    specs: List[RunSpec] = []
    for n_nodes in _NODE_COUNTS[scale]:
        for loss in _LOSS_RATES:
            config = quick_config(
                n_nodes=n_nodes,
                arrival_rate_per_hour=_RATE_PER_NODE * n_nodes,
                duration=_DURATIONS[scale],
                seed=_SEED,
                net=_net_for(loss) if loss > 0.0 else None,
            )
            for policy in _POLICIES:
                specs.append(
                    RunSpec.make(
                        config,
                        policy,
                        label=f"{policy}@n={n_nodes}",
                    )
                )
    return specs


def _goodput(result) -> float:
    """Fraction of arrived jobs the run actually delivered."""
    if result.jobs_arrived <= 0:
        return math.nan
    return result.jobs_completed / result.jobs_arrived


def _loss_of(spec: RunSpec) -> float:
    return spec.config.net.loss if spec.config.net is not None else 0.0


def _degradation_render(sweep: SweepResult) -> str:
    rows = []
    # (policy@nodes -> loss -> (makespan, goodput)) for the curve verdict.
    curves: Dict[str, Dict[float, Tuple[float, float]]] = {}
    for spec, result in sweep.pairs():
        loss = _loss_of(spec)
        sched = result.sched
        makespan = max((r.completion for r in result.records), default=0.0)
        goodput = _goodput(result)
        curves.setdefault(spec.label, {})[loss] = (makespan, goodput)
        rows.append(
            [
                spec.label,
                f"{loss:.0%}",
                units.fmt_duration(makespan),
                f"{goodput:.3f}",
                units.fmt_duration(result.measured.mean_waiting),
                sched.retransmits if sched is not None else "-",
                sched.dead_letters if sched is not None else "-",
                sched.failovers if sched is not None else "-",
                f"{sched.messages_per_subjob():.2f}" if sched is not None else "-",
                "OVERLOADED" if result.overload.overloaded else "steady",
            ]
        )
    table = format_table(
        [
            "policy@nodes",
            "loss",
            "makespan",
            "goodput",
            "mean wait",
            "rexmit",
            "dead",
            "failover",
            "msgs/subjob",
            "state",
        ],
        rows,
        title=(
            "Scheduler degradation under control-plane message loss "
            "(hardened ack/retransmit + lease protocols; loss=0 runs "
            "with the channel disabled entirely)"
        ),
    )
    lines = [table, "", "degradation curves (vs the loss-free baseline):"]
    collapse: List[Tuple[float, str]] = []
    for label in sorted(curves):
        points = curves[label]
        base = points.get(0.0)
        if base is None or base[0] <= 0:
            continue
        steps = []
        collapsed_at = None
        for loss in sorted(points):
            if loss == 0.0:
                continue
            makespan, goodput = points[loss]
            steps.append(f"{loss:.0%}:{makespan / base[0]:.2f}x")
            if collapsed_at is None and goodput < _COLLAPSE_GOODPUT:
                collapsed_at = loss
        lines.append(f"  {label}: makespan {' '.join(steps)}")
        if collapsed_at is not None:
            collapse.append((collapsed_at, label))
    if collapse:
        collapse.sort()
        first_loss, first_label = collapse[0]
        lines.append(
            f"  collapses first: {first_label} at {first_loss:.0%} loss "
            f"(goodput < {_COLLAPSE_GOODPUT})"
        )
    else:
        lines.append(
            f"  no collapse: every curve keeps goodput >= "
            f"{_COLLAPSE_GOODPUT} through {max(_LOSS_RATES):.0%} loss"
        )
    return "\n".join(lines)


register_experiment(
    Experiment(
        exp_id="degradation",
        title="Scheduler degradation under control-plane message loss",
        paper_ref="beyond the paper (its control network is implicitly perfect)",
        build=_degradation_build,
        render=_degradation_render,
        expectation=(
            "graceful degradation: goodput stays near 1.0 and makespan "
            "grows smoothly (no cliff) up to 10 % message loss, with "
            "retransmits rather than dead letters absorbing the damage; "
            "any collapse appears only at the 20 % point and the render "
            "names which protocol family hits it first"
        ),
    )
)
