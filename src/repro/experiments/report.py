"""Paper-vs-measured reporting.

``build_report`` runs (or accepts) experiment sweeps and renders a
markdown report in the EXPERIMENTS.md format: one section per experiment
with the paper's qualitative claim, our measured series, and a PASS/CHECK
shape assessment where one can be computed mechanically.

Experiment sweeps run through the execution layer in *capture* mode: a
crashed point is reported as a structured error line instead of taking
the whole figure down, and with a cache-enabled executor a re-rendered
figure reuses every already-computed point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence

from ..core.clock import wall_clock
from ..exec.executor import TIMEOUT_KIND
from ..sim.runner import SweepResult, run_sweep
from .registry import Experiment, Scale, all_experiments, get_experiment

if TYPE_CHECKING:  # pragma: no cover
    from ..exec.executor import Executor


@dataclass
class ExperimentOutcome:
    experiment: Experiment
    sweep: SweepResult
    rendered: str
    wall_seconds: float


def _render_errors(sweep: SweepResult) -> str:
    """Error lines appended to a rendering when points crashed."""
    lines = [
        f"FAILED POINTS ({sweep.n_failed} of {len(sweep.specs)}):"
    ]
    for _, error in sweep.errors():
        tag = "TIMED OUT: " if error.kind == TIMEOUT_KIND else ""
        lines.append(f"  {tag}{error.brief()}")
    return "\n".join(lines)


def run_experiment(
    exp_id: str,
    scale: Scale = Scale.QUICK,
    processes: Optional[int] = None,
    progress: bool = False,
    executor: Optional["Executor"] = None,
) -> ExperimentOutcome:
    """Run one registered experiment end to end.

    A crashed sweep point becomes an error line in the rendering rather
    than an exception — the surviving points still draw the figure.
    """
    experiment = get_experiment(exp_id)
    started = wall_clock()
    sweep = run_sweep(
        experiment.specs(scale),
        processes=processes,
        progress=progress,
        executor=executor,
        on_error="capture",
    )
    rendered = experiment.render(sweep)
    if sweep.n_failed:
        rendered = rendered + "\n\n" + _render_errors(sweep)
    return ExperimentOutcome(
        experiment=experiment,
        sweep=sweep,
        rendered=rendered,
        wall_seconds=wall_clock() - started,
    )


def run_all(
    scale: Scale = Scale.QUICK,
    exp_ids: Optional[Sequence[str]] = None,
    processes: Optional[int] = None,
    progress: bool = False,
    executor: Optional["Executor"] = None,
) -> List[ExperimentOutcome]:
    ids = list(exp_ids) if exp_ids else [e.exp_id for e in all_experiments()]
    return [
        run_experiment(
            exp_id,
            scale=scale,
            processes=processes,
            progress=progress,
            executor=executor,
        )
        for exp_id in ids
    ]


def render_markdown_report(outcomes: Sequence[ExperimentOutcome], scale: Scale) -> str:
    """EXPERIMENTS.md-style report for a set of outcomes."""
    lines: List[str] = [
        "# Experiment report",
        "",
        f"Scale: `{scale.value}`.  Every section reproduces one figure or",
        "in-text claim of Ponce & Hersch (IPDPS 2004); 'expectation' quotes",
        "the paper's qualitative claim, the block below it is our measured",
        "output (overloaded points cut, as in the paper's figures).",
        "",
    ]
    for outcome in outcomes:
        experiment = outcome.experiment
        lines.append(f"## {experiment.exp_id} — {experiment.title}")
        lines.append("")
        lines.append(f"*Paper reference:* {experiment.paper_ref}.")
        lines.append(f"*Expectation:* {experiment.expectation}.")
        lines.append(f"*Wall time:* {outcome.wall_seconds:.1f} s.")
        lines.append("")
        lines.append("```")
        lines.append(outcome.rendered)
        lines.append("```")
        lines.append("")
    return "\n".join(lines)
