"""Paper-vs-measured reporting.

``build_report`` runs (or accepts) experiment sweeps and renders a
markdown report in the EXPERIMENTS.md format: one section per experiment
with the paper's qualitative claim, our measured series, and a PASS/CHECK
shape assessment where one can be computed mechanically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.clock import wall_clock
from ..sim.runner import SweepResult, run_sweep
from .registry import Experiment, Scale, all_experiments, get_experiment


@dataclass
class ExperimentOutcome:
    experiment: Experiment
    sweep: SweepResult
    rendered: str
    wall_seconds: float


def run_experiment(
    exp_id: str,
    scale: Scale = Scale.QUICK,
    processes: Optional[int] = None,
    progress: bool = False,
) -> ExperimentOutcome:
    """Run one registered experiment end to end."""
    experiment = get_experiment(exp_id)
    started = wall_clock()
    sweep = run_sweep(experiment.specs(scale), processes=processes, progress=progress)
    rendered = experiment.render(sweep)
    return ExperimentOutcome(
        experiment=experiment,
        sweep=sweep,
        rendered=rendered,
        wall_seconds=wall_clock() - started,
    )


def run_all(
    scale: Scale = Scale.QUICK,
    exp_ids: Optional[Sequence[str]] = None,
    processes: Optional[int] = None,
    progress: bool = False,
) -> List[ExperimentOutcome]:
    ids = list(exp_ids) if exp_ids else [e.exp_id for e in all_experiments()]
    return [
        run_experiment(exp_id, scale=scale, processes=processes, progress=progress)
        for exp_id in ids
    ]


def render_markdown_report(outcomes: Sequence[ExperimentOutcome], scale: Scale) -> str:
    """EXPERIMENTS.md-style report for a set of outcomes."""
    lines: List[str] = [
        "# Experiment report",
        "",
        f"Scale: `{scale.value}`.  Every section reproduces one figure or",
        "in-text claim of Ponce & Hersch (IPDPS 2004); 'expectation' quotes",
        "the paper's qualitative claim, the block below it is our measured",
        "output (overloaded points cut, as in the paper's figures).",
        "",
    ]
    for outcome in outcomes:
        experiment = outcome.experiment
        lines.append(f"## {experiment.exp_id} — {experiment.title}")
        lines.append("")
        lines.append(f"*Paper reference:* {experiment.paper_ref}.")
        lines.append(f"*Expectation:* {experiment.expectation}.")
        lines.append(f"*Wall time:* {outcome.wall_seconds:.1f} s.")
        lines.append("")
        lines.append("```")
        lines.append(outcome.rendered)
        lines.append("```")
        lines.append("")
    return "\n".join(lines)
