"""Extension experiments beyond the paper's own evaluation.

* ``fairness`` — quantifies the fairness the paper discusses only
  qualitatively: Jain index / slowdown tail / Gini / overtake fraction for
  every policy at a common moderate load.
* ``ablate-network`` — re-runs the §4.2 replication comparison with a
  *contended* network and owner disks, stress-testing the paper's
  implicit free-remote-read assumption.
* ``scenario-diurnal`` — day/night load modulation: how the adaptive
  policy rides a realistic non-stationary load (complements the
  examples/load_spike.py step-change scenario).
"""

from __future__ import annotations

from typing import List

from ..analysis.fairness import fairness_report
from ..analysis.tables import format_table
from ..core import units
from ..core.rng import RandomStreams
from ..sim.runner import RunSpec, SweepResult
from ..sim.simulator import run_simulation
from ..workload.scenarios import DiurnalWorkload
from .figures import _base
from .registry import Experiment, Scale, register_experiment


# ---------------------------------------------------------------------------
# Fairness quantification
# ---------------------------------------------------------------------------


def _fairness_build(scale: Scale) -> List[RunSpec]:
    base = _base(scale, cache_bytes=100 * units.GB, arrival_rate_per_hour=1.4)
    specs = [
        RunSpec.make(base, "farm", label="farm"),
        RunSpec.make(base, "splitting", label="splitting"),
        RunSpec.make(base, "cache-splitting", label="cache-splitting"),
        RunSpec.make(base, "out-of-order", label="out-of-order"),
        RunSpec.make(
            base, "delayed", label="delayed-2d",
            period=2 * units.DAY, stripe_events=5000,
        ),
        RunSpec.make(base, "adaptive", label="adaptive", stripe_events=5000),
    ]
    return specs


def _fairness_render(sweep: SweepResult) -> str:
    headers = [
        "policy", "Jain(slowdown)", "mean slowdn", "p95 slowdn",
        "max slowdn", "Gini(wait)", "overtaken(start)", "overtaken(done)",
    ]
    rows = []
    for spec, result in sweep.pairs():
        warmup = spec.config.warmup_time
        records = [r for r in result.records if r.arrival_time >= warmup]
        report = fairness_report(records)
        rows.append(
            [
                spec.label,
                f"{report.jain_index_slowdown:.3f}",
                f"{report.mean_slowdown:.2f}",
                f"{report.p95_slowdown:.2f}",
                f"{report.max_slowdown:.2f}",
                f"{report.gini_waiting:.3f}",
                f"{report.start_overtake_fraction:.1%}",
                f"{report.overtake_fraction:.1%}",
            ]
        )
    return format_table(
        headers,
        rows,
        title="Fairness at 1.4 jobs/h — quantifying the FCFS-vs-out-of-order"
        " trade the paper discusses qualitatively (overtaken = fraction of"
        " arrival-ordered pairs finishing out of order)",
    )


register_experiment(
    Experiment(
        exp_id="fairness",
        title="Fairness quantification across policies",
        paper_ref="§3 principles / §4.1 / §5 (qualitative in the paper)",
        build=_fairness_build,
        render=_fairness_render,
        expectation=(
            "FCFS policies (farm, splitting, cache-splitting) complete "
            "nearly in arrival order; out-of-order raises the overtake "
            "fraction but its fairness valve caps the slowdown tail; "
            "delayed scheduling has the worst slowdown tail (no fairness)"
        ),
    )
)


# ---------------------------------------------------------------------------
# Network/disk contention stress of the §4.2 conclusion
# ---------------------------------------------------------------------------


def _network_build(scale: Scale) -> List[RunSpec]:
    base = _base(scale, cache_bytes=100 * units.GB)
    specs: List[RunSpec] = []
    for load in (1.4, 1.8):
        config = base.with_(arrival_rate_per_hour=load)
        specs.append(RunSpec.make(config, "out-of-order", label="ooo"))
        specs.append(
            RunSpec.make(config, "replication", label="repl-free-network")
        )
        specs.append(
            RunSpec.make(
                config,
                "replication",
                label="repl-contended",
                network_contention=True,
                link_capacity_streams=2,
            )
        )
    return specs


def _network_render(sweep: SweepResult) -> str:
    rows = []
    for spec, result in sweep.pairs():
        stats = result.policy_stats
        rows.append(
            [
                spec.label,
                f"{result.load_per_hour:.1f}",
                f"{result.measured.mean_speedup:.2f}",
                units.fmt_duration(result.measured.mean_waiting),
                int(stats.get("remote_chunks", 0)),
                int(stats.get("replication_events", 0)),
                "overloaded" if result.overload.overloaded else "steady",
            ]
        )
    return format_table(
        ["variant", "load", "speedup", "mean wait", "remote chunks",
         "replications", "state"],
        rows,
        title="Remote reads under a contended backbone (link capacity 2 "
        "full-rate streams, shared owner disks) vs the paper's free-"
        "network assumption",
    )


register_experiment(
    Experiment(
        exp_id="ablate-network",
        title="Remote-read pricing: free vs contended network",
        paper_ref="§4.2 (stress of the implicit assumption)",
        build=_network_build,
        render=_network_render,
        expectation=(
            "the replication-vs-no-replication equivalence is robust: even "
            "with a contended backbone, remote reads remain far cheaper "
            "than tertiary reads, so the comparison barely moves"
        ),
    )
)


# ---------------------------------------------------------------------------
# Diurnal load scenario
# ---------------------------------------------------------------------------


def _diurnal_specs(scale: Scale):
    base = _base(scale, cache_bytes=100 * units.GB)
    # Mean 1.5 jobs/h swinging ±1.0: nights are quiet, afternoons close to
    # out-of-order's saturation point.
    return base, 1.5, 1.0


def _diurnal_build(scale: Scale) -> List[RunSpec]:
    # The sweep runner re-generates Poisson workloads from the config, so
    # for the scenario experiment we pre-generate the diurnal trace at
    # render time instead; build returns placeholder specs for the two
    # policies at the mean rate (used only for timing comparison).
    base, mean, _ = _diurnal_specs(scale)
    config = base.with_(arrival_rate_per_hour=mean)
    return [
        RunSpec.make(config, "out-of-order", label="ooo-diurnal"),
        RunSpec.make(config, "adaptive", label="adaptive-diurnal", stripe_events=1000),
    ]


def _diurnal_render(sweep: SweepResult) -> str:
    # Re-run both policies on one shared diurnal trace (the sweep results
    # themselves are the constant-rate baseline at the same mean load).
    base_config = sweep.specs[0].config
    _, mean, amplitude = _diurnal_specs(Scale.QUICK)
    workload = DiurnalWorkload(
        dataspace=base_config.dataspace(),
        mean_rate_per_hour=mean,
        amplitude_per_hour=amplitude,
        job_size=base_config.job_size_distribution(),
        start_distribution=base_config.start_distribution(),
        streams=RandomStreams(base_config.seed),
    )
    trace = workload.generate_list(base_config.duration)
    rows = []
    for spec, constant_result in sweep.pairs():
        params = dict(spec.policy_params)
        diurnal_result = run_simulation(
            spec.config, spec.policy, trace=trace, **params
        )
        rows.append(
            [
                spec.label.replace("-diurnal", ""),
                f"{constant_result.measured.mean_speedup:.2f}",
                units.fmt_duration(constant_result.measured.mean_waiting),
                f"{diurnal_result.measured.mean_speedup:.2f}",
                units.fmt_duration(diurnal_result.measured.mean_waiting),
                "overloaded" if diurnal_result.overload.overloaded else "steady",
            ]
        )
    return format_table(
        ["policy", "const speedup", "const wait", "diurnal speedup",
         "diurnal wait", "diurnal state"],
        rows,
        title=f"Diurnal load ({mean}±{amplitude} jobs/h, peak 15:00) vs "
        "constant load at the same mean",
    )


register_experiment(
    Experiment(
        exp_id="scenario-diurnal",
        title="Day/night load modulation",
        paper_ref="§6 (motivating scenario, not evaluated in the paper)",
        build=_diurnal_build,
        render=_diurnal_render,
        expectation=(
            "both policies survive the diurnal swing at this mean load; "
            "the afternoon peaks cost waiting time relative to the "
            "constant-load baseline, more for out-of-order than adaptive"
        ),
    )
)
