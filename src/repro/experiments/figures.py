"""The paper's figures and in-text claims as registered experiments.

Each ``fig*`` experiment regenerates the corresponding figure of the
paper's evaluation: same policies, same parameters (cache sizes, delays,
stripe sizes), same axes (offered load in jobs/hour → average speedup and
average waiting time), with overloaded points cut exactly like the paper
cuts its curves.  ``repl``, ``maxload``, ``farmq`` and ``nodes`` cover the
evaluation claims made in prose rather than figures.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..analysis.histogram import waiting_time_histogram
from ..analysis.plots import ascii_plot
from ..analysis.queueing import merlang_wait
from ..analysis.tables import format_histogram, format_series_table, format_table
from ..analysis.theory import theoretical_limits
from ..core import units
from ..sim.config import SimulationConfig, paper_config
from ..sim.runner import RunSpec, SweepResult, load_sweep
from .registry import Experiment, Scale, register_experiment

#: Base seed for all figure sweeps (per-spec configs share a seed so every
#: policy sees an identically-distributed workload).
SEED = 2004

_GB = units.GB


def _base(scale: Scale, **overrides) -> SimulationConfig:
    """The paper configuration at the requested scale."""
    durations = {
        Scale.SMOKE: 6 * units.DAY,
        Scale.QUICK: 16 * units.DAY,
        Scale.FULL: 48 * units.DAY,
    }
    defaults = dict(duration=durations[scale], seed=SEED)
    defaults.update(overrides)
    return paper_config(**defaults)


def _loads(scale: Scale, full: List[float]) -> List[float]:
    """Thin a full load grid down for cheaper scales."""
    if scale is Scale.FULL:
        return full
    if scale is Scale.QUICK:
        return full[:: max(1, len(full) // 4)]
    return [full[0], full[len(full) // 2]]


def _speedup_and_wait(
    sweep: SweepResult, wait_metric: str = "waiting", title: str = ""
) -> str:
    """Standard two-panel rendering of a figure sweep."""
    speedup = sweep.series("speedup")
    waiting = sweep.series(wait_metric)
    parts = [
        format_series_table(speedup, "avg speedup", title=f"{title} — average speedup"),
        "",
        ascii_plot(speedup, title=f"{title} — speedup vs load", y_label="speedup"),
        "",
        format_series_table(
            waiting, "avg waiting", time_metric=True,
            title=f"{title} — average waiting time ({wait_metric})",
        ),
        "",
        ascii_plot(
            waiting, log_y=True, title=f"{title} — waiting time vs load (log)",
            y_label="waiting (s)",
        ),
        "",
        format_table(
            ["curve", "max sustained load (jobs/h)"],
            sorted(sweep.max_sustained_load().items()),
            title="Sustainability (highest steady-state load per curve)",
        ),
    ]
    return "\n".join(parts)


# ---------------------------------------------------------------------------
# Figure 2 — farm vs splitting vs cache-oriented splitting
# ---------------------------------------------------------------------------


def _fig2_build(scale: Scale) -> List[RunSpec]:
    loads = _loads(scale, [0.7, 0.8, 0.9, 1.0, 1.1, 1.2, 1.3])
    base = _base(scale)
    specs: List[RunSpec] = []
    specs += load_sweep(base, "farm", loads, label="farm")
    specs += load_sweep(base, "splitting", loads, label="splitting")
    for cache_gb in (50, 100, 200):
        specs += load_sweep(
            base.with_(cache_bytes=cache_gb * _GB),
            "cache-splitting",
            loads,
            label=f"cache-{cache_gb}GB",
        )
    return specs


register_experiment(
    Experiment(
        exp_id="fig2",
        title="FCFS policies: farm, job splitting, cache-oriented splitting",
        paper_ref="Figure 2",
        build=_fig2_build,
        render=lambda sweep: _speedup_and_wait(sweep, title="Fig 2"),
        expectation=(
            "farm speedup ~1 and saturates near 1.1 jobs/h; splitting better at "
            "low load; cache-oriented dominates with gain roughly proportional "
            "to cache size, reaching the caching factor (~3x over splitting) at "
            "200 GB; waiting times drop from days toward hours as caches grow"
        ),
    )
)


# ---------------------------------------------------------------------------
# Figure 3 — cache-oriented splitting vs out-of-order scheduling
# ---------------------------------------------------------------------------


def _fig3_build(scale: Scale) -> List[RunSpec]:
    loads = _loads(scale, [0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0, 2.2, 2.4, 2.6])
    base = _base(scale)
    specs: List[RunSpec] = []
    for cache_gb in (50, 100, 200):
        config = base.with_(cache_bytes=cache_gb * _GB)
        specs += load_sweep(
            config, "cache-splitting", loads, label=f"cache-{cache_gb}GB"
        )
        specs += load_sweep(
            config, "out-of-order", loads, label=f"ooo-{cache_gb}GB"
        )
    return specs


register_experiment(
    Experiment(
        exp_id="fig3",
        title="Out-of-order scheduling vs cache-oriented splitting",
        paper_ref="Figure 3",
        build=_fig3_build,
        render=lambda sweep: _speedup_and_wait(sweep, title="Fig 3"),
        expectation=(
            "at equal cache size, out-of-order gives higher speedup, roughly an "
            "order of magnitude lower waiting time, and sustains about twice "
            "the load of FIFO cache-based splitting, with graceful degradation "
            "near the maximal load"
        ),
    )
)


# ---------------------------------------------------------------------------
# Figure 4 — waiting-time distribution near the maximal sustainable load
# ---------------------------------------------------------------------------


def _fig4_build(scale: Scale) -> List[RunSpec]:
    durations = {
        Scale.SMOKE: 8 * units.DAY,
        Scale.QUICK: 24 * units.DAY,
        Scale.FULL: 60 * units.DAY,
    }
    specs = []
    for cache_gb, load in ((100, 1.7), (50, 1.44)):
        config = paper_config(
            duration=durations[scale],
            seed=SEED,
            cache_bytes=cache_gb * _GB,
            arrival_rate_per_hour=load,
        )
        specs.append(
            RunSpec.make(config, "out-of-order", label=f"ooo-{cache_gb}GB@{load}")
        )
    return specs


def _fig4_render(sweep: SweepResult) -> str:
    parts: List[str] = []
    for spec, result in sweep.pairs():
        waits = result.measured.waiting_times
        hist = waiting_time_histogram(waits)
        parts.append(
            format_histogram(
                hist.rows(),
                title=(
                    f"Fig 4 — waiting-time distribution, {spec.label} "
                    f"({result.measured.n_jobs} jobs; <1h: {hist.below}, "
                    f">=2days: {hist.above})"
                ),
            )
        )
        if len(waits):
            parts.append(
                f"  max waiting: {units.fmt_duration(float(np.max(waits)))}, "
                f"median: {units.fmt_duration(float(np.median(waits)))}"
            )
        parts.append("")
    return "\n".join(parts)


register_experiment(
    Experiment(
        exp_id="fig4",
        title="Waiting-time distribution of out-of-order scheduling near saturation",
        paper_ref="Figure 4",
        build=_fig4_build,
        render=_fig4_render,
        expectation=(
            "two populations: jobs with cached data overtake and wait little "
            "(bulk below ~an hour); jobs with no cached data form a tail out to "
            "one-two days; worst case stays within about two days"
        ),
    )
)


# ---------------------------------------------------------------------------
# Figure 5 — delayed scheduling for different period delays
# ---------------------------------------------------------------------------


def _fig5_build(scale: Scale) -> List[RunSpec]:
    loads = _loads(scale, [1.0, 1.2, 1.4, 1.6, 1.8, 2.0, 2.2, 2.4, 2.6])
    base = _base(scale, cache_bytes=100 * _GB)
    if scale is Scale.SMOKE:
        # The 1-week delay needs several periods to measure at all.
        base = base.with_(duration=12 * units.DAY)
    specs: List[RunSpec] = []
    for delay, name in (
        (11 * units.HOUR, "11h"),
        (2 * units.DAY, "2days"),
        (1 * units.WEEK, "1week"),
    ):
        specs += load_sweep(
            base,
            "delayed",
            loads,
            label=f"delayed-{name}",
            period=delay,
            stripe_events=5000,
        )
    specs += load_sweep(base, "out-of-order", loads, label="out-of-order")
    return specs


register_experiment(
    Experiment(
        exp_id="fig5",
        title="Delayed scheduling for different period delays",
        paper_ref="Figure 5",
        build=_fig5_build,
        render=lambda sweep: _speedup_and_wait(
            sweep, wait_metric="waiting_excl_delay", title="Fig 5"
        ),
        expectation=(
            "delayed scheduling has lower speedup and higher (delay-excluded) "
            "waiting time than out-of-order, but sustains markedly higher "
            "loads, increasing with the period delay"
        ),
    )
)


# ---------------------------------------------------------------------------
# Figure 6 — delayed scheduling for different stripe sizes
# ---------------------------------------------------------------------------


def _fig6_build(scale: Scale) -> List[RunSpec]:
    loads = _loads(scale, [0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0, 2.2, 2.4])
    base = _base(scale, cache_bytes=100 * _GB)
    specs: List[RunSpec] = []
    for stripe, name in ((200, "200"), (1000, "1K"), (5000, "5K"), (25000, "25K")):
        specs += load_sweep(
            base,
            "delayed",
            loads,
            label=f"stripe-{name}",
            period=2 * units.DAY,
            stripe_events=stripe,
        )
    return specs


register_experiment(
    Experiment(
        exp_id="fig6",
        title="Delayed scheduling for different stripe sizes",
        paper_ref="Figure 6",
        build=_fig6_build,
        render=lambda sweep: _speedup_and_wait(
            sweep, wait_metric="waiting_excl_delay", title="Fig 6"
        ),
        expectation=(
            "smaller stripes clearly improve speedup (better parallelisation) "
            "with no visible influence on the average waiting time; larger "
            "sustainable load with smaller stripes"
        ),
    )
)


# ---------------------------------------------------------------------------
# Figure 7 — adaptive delay vs out-of-order
# ---------------------------------------------------------------------------


def _fig7_build(scale: Scale) -> List[RunSpec]:
    loads = _loads(scale, [0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0, 2.25, 2.5])
    base = _base(scale, cache_bytes=100 * _GB)
    specs: List[RunSpec] = []
    for stripe, name in ((200, "200"), (5000, "5K")):
        specs += load_sweep(
            base,
            "adaptive",
            loads,
            label=f"adaptive-{name}",
            stripe_events=stripe,
        )
    specs += load_sweep(base, "out-of-order", loads, label="out-of-order")
    return specs


register_experiment(
    Experiment(
        exp_id="fig7",
        title="Adaptive delay scheduling vs out-of-order",
        paper_ref="Figure 7",
        build=_fig7_build,
        render=lambda sweep: _speedup_and_wait(sweep, title="Fig 7"),
        expectation=(
            "adaptive delay sustains loads out-of-order cannot; at low loads "
            "the delay is zero and speedup matches or slightly exceeds "
            "out-of-order for small stripes, at the cost of a small (< ~1 h) "
            "waiting-time overhead — negligible against the 9 h job time"
        ),
    )
)


# ---------------------------------------------------------------------------
# §4.2 — data replication brings no improvement
# ---------------------------------------------------------------------------


def _repl_build(scale: Scale) -> List[RunSpec]:
    loads = _loads(scale, [1.0, 1.2, 1.4, 1.6, 1.8, 2.0])
    base = _base(scale, cache_bytes=100 * _GB)
    specs: List[RunSpec] = []
    specs += load_sweep(base, "out-of-order", loads, label="ooo")
    specs += load_sweep(base, "replication", loads, label="ooo+replication")
    specs += load_sweep(
        base,
        "replication",
        loads,
        label="ooo+remote-reads-only",
        replication_enabled=False,
    )
    return specs


def _repl_render(sweep: SweepResult) -> str:
    parts = [_speedup_and_wait(sweep, title="§4.2 replication study")]
    rows = []
    for spec, result in sweep.pairs():
        stats = result.policy_stats
        arrivals = max(result.jobs_arrived, 1)
        rows.append(
            [
                spec.label,
                f"{result.load_per_hour:.2f}",
                int(stats.get("replication_events", 0)),
                f"{1000.0 * stats.get('replication_events', 0) / arrivals:.2f}",
                int(stats.get("remote_chunks", 0)),
                int(stats.get("steals", 0)),
            ]
        )
    parts.append("")
    parts.append(
        format_table(
            ["curve", "load", "replications", "repl. per mille of arrivals",
             "remote chunks", "steals"],
            rows,
            title="Replication usage (paper: replication used in <1 ‰ of arrivals)",
        )
    )
    return "\n".join(parts)


register_experiment(
    Experiment(
        exp_id="repl",
        title="Out-of-order scheduling with and without data replication",
        paper_ref="§4.2 (in-text)",
        build=_repl_build,
        render=_repl_render,
        expectation=(
            "replication and no-replication curves coincide; replication is "
            "exercised in under 1 per mille of job arrivals because splitting "
            "already spreads large segments across many nodes"
        ),
    )
)


# ---------------------------------------------------------------------------
# §5.2 — maximal sustainable load of delayed scheduling
# ---------------------------------------------------------------------------


def _maxload_build(scale: Scale) -> List[RunSpec]:
    durations = {
        Scale.SMOKE: 12 * units.DAY,
        Scale.QUICK: 30 * units.DAY,
        Scale.FULL: 70 * units.DAY,
    }
    # The paper's extreme uses a 1-week period; at smoke scale that would
    # leave no measurable periods, so the delay shrinks with the horizon.
    delay = 1 * units.WEEK if scale is not Scale.SMOKE else 2 * units.DAY
    base = paper_config(duration=durations[scale], seed=SEED)
    specs: List[RunSpec] = []
    farm_loads = _loads(scale, [1.0, 1.05, 1.1, 1.15, 1.2])
    specs += load_sweep(base, "farm", farm_loads, label="farm")
    delayed_loads = _loads(scale, [2.6, 2.8, 3.0, 3.2, 3.4])
    specs += load_sweep(
        base.with_(cache_bytes=200 * _GB),
        "delayed",
        delayed_loads,
        label="delayed-extreme",
        period=delay,
        stripe_events=200,
    )
    # Burst-drain variant: the batch's jobs are processed (nearly) one at
    # a time (job_window=1).  Table 4 does not specify the drain
    # discipline; this one recovers the paper's "average speedup of more
    # than 10" at 3 jobs/hour (see EXPERIMENTS.md §5.2).
    specs += load_sweep(
        base.with_(cache_bytes=200 * _GB),
        "delayed",
        delayed_loads,
        label="delayed-extreme-burst",
        period=delay,
        stripe_events=200,
        job_window=1,
    )
    return specs


def _maxload_render(sweep: SweepResult) -> str:
    limits = theoretical_limits(sweep.specs[0].config)
    sustained = sweep.max_sustained_load()
    speedups = sweep.series("speedup")
    rows = [
        ["theoretical maximum (all cached, all CPUs busy)",
         f"{limits.max_load_per_hour:.2f}", "—"],
        ["theoretical farm ceiling (no cache)",
         f"{limits.farm_max_load_per_hour:.2f}", "—"],
    ]
    for label, max_load in sorted(sustained.items()):
        points = speedups.get(label, [])
        at_max = [s for load, s in points if load == max_load]
        rows.append(
            [f"measured: {label}", f"{max_load:.2f}",
             f"{at_max[0]:.1f}" if at_max else "—"]
        )
    return format_table(
        ["system", "max sustained load (jobs/h)", "speedup at max"],
        rows,
        title="§5.2 — maximal sustainable load (paper: ~3.0 jobs/h with "
        "speedup >10, vs 3.46 theoretical and ~1.1 for the farm)",
    )


register_experiment(
    Experiment(
        exp_id="maxload",
        title="Maximal sustainable load: delayed extremes vs theory vs farm",
        paper_ref="§5.2 (in-text)",
        build=_maxload_build,
        render=_maxload_render,
        expectation=(
            "delayed scheduling with 200 GB caches, 1 week delay and stripe "
            "200 sustains ≈3 jobs/hour with average speedup above 10 — close "
            "to the 3.46 theoretical maximum and ≈3x the farm's ≈1.1"
        ),
    )
)


# ---------------------------------------------------------------------------
# §3.1 — the farm behaves as an M/Er/m queue
# ---------------------------------------------------------------------------


def _farmq_build(scale: Scale) -> List[RunSpec]:
    loads = _loads(scale, [0.6, 0.7, 0.8, 0.9, 1.0])
    base = _base(scale)
    return load_sweep(base, "farm", loads, label="farm")


def _farmq_render(sweep: SweepResult) -> str:
    rows = []
    for spec, result in sweep.pairs():
        config = spec.config
        prediction = merlang_wait(
            servers=config.n_nodes,
            arrival_rate=units.per_hour(config.arrival_rate_per_hour),
            mean_service=config.mean_service_time_uncached,
            erlang_shape=config.erlang_shape,
        )
        measured = result.measured.mean_waiting
        rows.append(
            [
                f"{config.arrival_rate_per_hour:.2f}",
                f"{prediction.utilization:.3f}",
                units.fmt_duration(prediction.mean_wait),
                units.fmt_duration(measured),
                "overloaded" if result.overload.overloaded else "steady",
            ]
        )
    return format_table(
        ["load (jobs/h)", "rho", "M/Er/10 predicted wait", "simulated wait",
         "state"],
        rows,
        title="§3.1 — processing farm vs the M/Er/m analytic model "
        "(Allen–Cunneen approximation)",
    )


register_experiment(
    Experiment(
        exp_id="farmq",
        title="Processing farm vs M/Er/m queueing theory",
        paper_ref="§3.1 (in-text)",
        build=_farmq_build,
        render=_farmq_render,
        expectation=(
            "the simulated farm's mean waiting time tracks the M/Er/m "
            "prediction across utilisations"
        ),
    )
)


# ---------------------------------------------------------------------------
# §2.4 — 5 / 10 / 20 nodes give similar results
# ---------------------------------------------------------------------------


def _nodes_build(scale: Scale) -> List[RunSpec]:
    base = _base(scale, cache_bytes=100 * _GB)
    # Per-node load sustainable even with cold caches (0.1 jobs/h/node x
    # 40k events x 0.8 s = 3200 s of uncached work per node-hour), so the
    # invariance claim is not confounded by cache-coverage differences.
    per_node_load = 0.08
    specs: List[RunSpec] = []
    for n_nodes in (5, 10, 20):
        config = base.with_(
            n_nodes=n_nodes, arrival_rate_per_hour=per_node_load * n_nodes
        )
        specs.append(
            RunSpec.make(config, "out-of-order", label=f"ooo-{n_nodes}nodes")
        )
        specs.append(
            RunSpec.make(
                config, "cache-splitting", label=f"cache-{n_nodes}nodes"
            )
        )
    return specs


def _nodes_render(sweep: SweepResult) -> str:
    rows = []
    for spec, result in sweep.pairs():
        config = spec.config
        rows.append(
            [
                spec.label,
                config.n_nodes,
                f"{config.arrival_rate_per_hour:.2f}",
                f"{result.measured.mean_speedup / config.n_nodes:.3f}",
                units.fmt_duration(result.measured.mean_waiting),
                "overloaded" if result.overload.overloaded else "steady",
            ]
        )
    return format_table(
        ["curve", "nodes", "load (jobs/h)", "speedup per node", "mean wait",
         "state"],
        rows,
        title="§2.4 — cluster-size invariance at equal per-node load "
        "(paper: 5 and 20 node simulations 'lead to similar results')",
    )


register_experiment(
    Experiment(
        exp_id="nodes",
        title="Cluster-size invariance (5/10/20 nodes)",
        paper_ref="§2.4 (in-text)",
        build=_nodes_build,
        render=_nodes_render,
        expectation=(
            "normalised performance (speedup per node, waiting time) is "
            "similar across 5, 10 and 20 nodes at equal per-node load"
        ),
    )
)
