"""The ``complexity`` experiment — the study the paper's footnote 1
defers to "a subsequent paper".

Measures, for each policy, the wall-clock cost of its scheduling
decisions and the size of its queue structures across cluster sizes, so
the practicality claim behind the plugin scheduler ("may run both on the
simulated and on the target system") can be checked: decision costs must
stay far below the inter-arrival time.
"""

from __future__ import annotations

from typing import List

from ..analysis.complexity import profile_policy
from ..analysis.tables import format_table
from ..core import units
from ..sim.runner import RunSpec, SweepResult
from .figures import _base
from .registry import Experiment, Scale, register_experiment

_POLICY_PARAMS = {
    "farm": {},
    "cache-splitting": {},
    "out-of-order": {},
    "delayed": {"period": 12 * units.HOUR, "stripe_events": 1000},
}


def _complexity_build(scale: Scale) -> List[RunSpec]:
    # Spec list drives progress display; profiling happens in render.
    base = _base(scale, cache_bytes=100 * units.GB)
    durations = {
        Scale.SMOKE: 4 * units.DAY,
        Scale.QUICK: 8 * units.DAY,
        Scale.FULL: 16 * units.DAY,
    }
    base = base.with_(duration=durations[scale])
    specs: List[RunSpec] = []
    for n_nodes in (10, 20):
        config = base.with_(
            n_nodes=n_nodes, arrival_rate_per_hour=0.15 * n_nodes
        )
        for policy, params in _POLICY_PARAMS.items():
            specs.append(
                RunSpec.make(
                    config, policy, label=f"{policy}@{n_nodes}n", **params
                )
            )
    return specs


def _complexity_render(sweep: SweepResult) -> str:
    rows = []
    for spec in sweep.specs:
        report = profile_policy(
            spec.config, spec.policy, **dict(spec.policy_params)
        )
        arrival = report.profiles["on_job_arrival"]
        subjob_end = report.profiles["on_subjob_end"]
        rows.append(
            [
                spec.label,
                f"{arrival.mean_seconds * 1e3:.2f}",
                f"{arrival.max_seconds * 1e3:.2f}",
                f"{subjob_end.mean_seconds * 1e6:.1f}",
                f"{report.scheduler_seconds_per_job * 1e3:.2f}",
                f"{report.mean_queued_subjobs():.0f}",
                report.peak_queued_subjobs(),
                report.peak_cache_extents(),
            ]
        )
    return format_table(
        [
            "policy@nodes",
            "arrival mean (ms)",
            "arrival max (ms)",
            "subjob-end mean (µs)",
            "sched cost/job (ms)",
            "mean queued",
            "peak queued",
            "peak cache extents",
        ],
        rows,
        title="Scheduler time/space complexity (the study the paper's "
        "footnote 1 defers) — decision costs must stay far below the "
        "~2000 s inter-arrival time for the production-deployment claim "
        "to hold",
    )


register_experiment(
    Experiment(
        exp_id="complexity",
        title="Scheduler decision time / queue space across policies",
        paper_ref="footnote 1 (deferred by the paper)",
        build=_complexity_build,
        render=_complexity_render,
        expectation=(
            "every policy decides in milliseconds — orders of magnitude "
            "below the inter-arrival time — with queue structures growing "
            "modestly with cluster size; cache-aware policies pay more per "
            "decision (extent queries) but remain production-practical"
        ),
    )
)
