"""Ablation experiments for the design choices DESIGN.md calls out.

These are not paper figures; they quantify the sensitivity of the
reproduction to our own modelling decisions (chunk granularity) and
explore the paper's §7 future-work ideas (pipelined transfer/compute,
mixed immediate/delayed scheduling) plus two parameters the paper fixes
without sweeping (minimal subjob size, fairness timeout).
"""

from __future__ import annotations

from typing import List

from ..analysis.tables import format_table
from ..core import units
from ..sim.runner import RunSpec, SweepResult
from .figures import _base
from .registry import Experiment, Scale, register_experiment


def _single_load_render(sweep: SweepResult, title: str) -> str:
    rows = []
    for spec, result in sweep.pairs():
        rows.append(
            [
                spec.label,
                f"{result.load_per_hour:.2f}",
                f"{result.measured.mean_speedup:.2f}",
                units.fmt_duration(result.measured.mean_waiting),
                f"{result.tertiary_redundancy:.2f}",
                f"{result.node_utilization:.2f}",
                "overloaded" if result.overload.overloaded else "steady",
            ]
        )
    return format_table(
        ["variant", "load", "speedup", "mean wait", "tape redundancy",
         "utilization", "state"],
        rows,
        title=title,
    )


# -- chunk granularity (our modelling knob) -----------------------------------


def _chunk_build(scale: Scale) -> List[RunSpec]:
    base = _base(scale, cache_bytes=100 * units.GB, arrival_rate_per_hour=1.5)
    return [
        RunSpec.make(
            base.with_(chunk_events=chunk),
            "out-of-order",
            label=f"chunk-{chunk}",
        )
        for chunk in (500, 1000, 2000, 4000, 8000)
    ]


register_experiment(
    Experiment(
        exp_id="ablate-chunk",
        title="Sensitivity to execution/cache chunk granularity",
        paper_ref="DESIGN.md (modelling choice)",
        build=_chunk_build,
        render=lambda sweep: _single_load_render(
            sweep,
            "Chunk-granularity ablation (out-of-order @ 1.5 jobs/h): results "
            "should be stable across chunk sizes",
        ),
        expectation="speedup/waiting vary only weakly with chunk_events",
    )
)


# -- pipelined I/O (paper §7 future work) ----------------------------------------


def _pipeline_build(scale: Scale) -> List[RunSpec]:
    specs: List[RunSpec] = []
    for pipelined in (False, True):
        base = _base(
            scale,
            cache_bytes=100 * units.GB,
            arrival_rate_per_hour=1.5,
            pipelined_io=pipelined,
        )
        tag = "pipelined" if pipelined else "sequential"
        for policy in ("out-of-order", "cache-splitting"):
            specs.append(RunSpec.make(base, policy, label=f"{policy}-{tag}"))
    return specs


register_experiment(
    Experiment(
        exp_id="ablate-pipeline",
        title="Pipelining of processing and data transfers (§7 future work)",
        paper_ref="§7 (future work)",
        build=_pipeline_build,
        render=lambda sweep: _single_load_render(
            sweep,
            "Pipelined transfer/compute overlap @ 1.5 jobs/h: per-event cost "
            "drops from transfer+cpu to max(transfer, cpu)",
        ),
        expectation=(
            "pipelining improves speedup (cached events 0.26 s → 0.2 s, "
            "uncached 0.8 s → 0.6 s) and raises the sustainable load ceiling"
        ),
    )
)


# -- minimal subjob size -------------------------------------------------------------


def _minsize_build(scale: Scale) -> List[RunSpec]:
    base = _base(scale, cache_bytes=100 * units.GB, arrival_rate_per_hour=1.5)
    return [
        RunSpec.make(
            base.with_(min_subjob_events=minimum),
            "out-of-order",
            label=f"min-{minimum}",
        )
        for minimum in (10, 100, 1000)
    ]


register_experiment(
    Experiment(
        exp_id="ablate-minsize",
        title="Sensitivity to the minimal subjob size",
        paper_ref="Tables 1-4 fix 10 events without sweeping",
        build=_minsize_build,
        render=lambda sweep: _single_load_render(
            sweep,
            "Minimal-subjob-size ablation (out-of-order @ 1.5 jobs/h)",
        ),
        expectation="results stable for small minima; very large minima "
        "reduce splitting opportunities and speedup",
    )
)


# -- fairness timeout -----------------------------------------------------------------


def _fairness_build(scale: Scale) -> List[RunSpec]:
    base = _base(scale, cache_bytes=100 * units.GB, arrival_rate_per_hour=1.7)
    return [
        RunSpec.make(
            base,
            "out-of-order",
            label=f"timeout-{name}",
            fairness_timeout=timeout,
        )
        for timeout, name in (
            (12 * units.HOUR, "12h"),
            (2 * units.DAY, "2d"),
            (0.0, "off"),
        )
    ]


def _fairness_render(sweep: SweepResult) -> str:
    rows = []
    for spec, result in sweep.pairs():
        promos = result.policy_stats.get("fairness_promotions", 0.0)
        arrivals = max(result.jobs_arrived, 1)
        rows.append(
            [
                spec.label,
                f"{result.measured.mean_speedup:.2f}",
                units.fmt_duration(result.measured.mean_waiting),
                units.fmt_duration(result.measured.max_waiting),
                int(promos),
                f"{1000.0 * promos / arrivals:.2f}",
            ]
        )
    return format_table(
        ["variant", "speedup", "mean wait", "max wait", "promotions",
         "per mille of jobs"],
        rows,
        title="Fairness-timeout ablation (out-of-order @ 1.7 jobs/h; paper: "
        "promotions affect <0.5 ‰ of jobs with the 2-day timeout)",
    )


register_experiment(
    Experiment(
        exp_id="ablate-fairness",
        title="Out-of-order fairness timeout",
        paper_ref="§4.1 (2-day timeout; <0.5 ‰ of jobs affected)",
        build=_fairness_build,
        render=_fairness_render,
        expectation=(
            "the 2-day timeout caps the worst-case wait with negligible "
            "promotion frequency; shorter timeouts trade throughput for tail "
            "latency"
        ),
    )
)


# -- mixed immediate/delayed (paper §7 future work) -------------------------------------


def _mixed_build(scale: Scale) -> List[RunSpec]:
    base = _base(scale, cache_bytes=100 * units.GB)
    specs: List[RunSpec] = []
    for load in (1.0, 1.8, 2.2):
        config = base.with_(arrival_rate_per_hour=load)
        specs.append(
            RunSpec.make(
                config, "delayed", label="delayed-2d",
                period=2 * units.DAY, stripe_events=5000,
            )
        )
        specs.append(
            RunSpec.make(
                config, "mixed", label="mixed-2d",
                period=2 * units.DAY, stripe_events=5000,
            )
        )
        specs.append(RunSpec.make(config, "out-of-order", label="ooo"))
    return specs


register_experiment(
    Experiment(
        exp_id="ablate-mixed",
        title="Mixed immediate/delayed scheduling (§7 future work)",
        paper_ref="§7 (future work)",
        build=_mixed_build,
        render=lambda sweep: _single_load_render(
            sweep,
            "Mixed policy: delayed batching, but idle nodes dispatch "
            "arrivals immediately",
        ),
        expectation=(
            "mixed matches delayed's sustainability while cutting its "
            "low-load waiting-time penalty"
        ),
    )
)


# -- tertiary (tape) access latency ----------------------------------------------


def _tape_latency_build(scale: Scale) -> List[RunSpec]:
    base = _base(scale, cache_bytes=100 * units.GB, arrival_rate_per_hour=1.5)
    return [
        RunSpec.make(
            base.with_(tertiary_latency_s=latency),
            "out-of-order",
            label=f"latency-{int(latency)}s",
        )
        for latency in (0.0, 30.0, 120.0)
    ]


register_experiment(
    Experiment(
        exp_id="ablate-tape-latency",
        title="Sensitivity to tertiary-storage access latency",
        paper_ref="§2.4 assumes Castor's disk arrays hide tape latency",
        build=_tape_latency_build,
        render=lambda sweep: _single_load_render(
            sweep,
            "Tape-latency ablation (out-of-order @ 1.5 jobs/h): per-request "
            "setup latency added to every tertiary read",
        ),
        expectation=(
            "moderate per-request latencies degrade performance smoothly "
            "(each request streams ~minutes of data, so even 30 s setup "
            "adds only a few percent); the policy ranking is unchanged"
        ),
    )
)


# -- hot-region skew ------------------------------------------------------------------


def _hotspot_build(scale: Scale) -> List[RunSpec]:
    base = _base(scale, cache_bytes=100 * units.GB, arrival_rate_per_hour=1.5)
    specs: List[RunSpec] = []
    for weight, name in ((0.0, "uniform"), (0.5, "paper"), (0.85, "extreme")):
        config = base.with_(hot_weight=weight)
        specs.append(
            RunSpec.make(config, "out-of-order", label=f"ooo-{name}")
        )
        specs.append(
            RunSpec.make(config, "cache-splitting", label=f"cache-{name}")
        )
    return specs


register_experiment(
    Experiment(
        exp_id="ablate-hotspot",
        title="Sensitivity to start-point skew (hot regions)",
        paper_ref="§2.4 (two hot regions: 10 % of space, 50 % of starts)",
        build=_hotspot_build,
        render=lambda sweep: _single_load_render(
            sweep,
            "Hot-region ablation @ 1.5 jobs/h: 0 % / 50 % (paper) / 85 % of "
            "starts in the hot regions",
        ),
        expectation=(
            "cache-aware policies feed on skew: speedup and sustainable "
            "load grow with the hot fraction (more reuse per cached byte); "
            "with a uniform distribution the caching gain shrinks toward "
            "the cache/data-space ratio"
        ),
    )
)
