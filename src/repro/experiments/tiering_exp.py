"""The ``tiering`` experiment — replica placement on a multi-tier grid.

The paper's cluster is flat: every node is one disk hop from the shared
tertiary store, so "where should replicas live?" has a trivial answer
(the node disk cache, §4.2).  The ``repro.topo`` layer breaks that
flatness: racks and sites get their own disk-pool caches behind
contended uplinks, and the replica-placement policy decides which of
them absorb tertiary reads.

This experiment sweeps topology depth (flat / depth2 / depth3) x
replica placement (none / root-only / lru-rack / proactive-site) x
offered load under the best central policy (out-of-order) and reports,
per point, the delivered performance (mean waiting, speedup) next to
the tiering bill from the schema-v7 ``topo`` accounting: tier-cache hit
fraction, link-saturation count, and the storage cost of the replicas
in GB-hours.  The flat point runs with no topology object at all, so
the curves are anchored to the exact bit-identical baseline of every
other experiment.

The expected shape: on the flat cluster replication changes nothing by
construction; it keeps changing (almost) nothing on deeper grids while
uplinks stay unsaturated, and starts paying for itself exactly where
link queueing sets in — deeper trees and higher loads.  The render
names the first (depth, load) point where a placement policy beats
``none`` materially, and prices the win in storage GB-hours.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..analysis.tables import format_table
from ..core import units
from ..sim.config import quick_config
from ..sim.runner import RunSpec, SweepResult
from ..topo.spec import TopologySpec, topology_preset
from .registry import Experiment, Scale, register_experiment

#: One seed for every point (the sweep compares topologies, not seeds).
_SEED = 13

#: Cluster size; divisible by the rack counts of both presets (2 racks
#: at depth2, 4 racks at depth3) so every rack hosts the same number of
#: nodes and no point is skewed by an uneven split.
_N_NODES = 8

#: Placements swept at every non-flat depth.  Flat runs once per load
#: as ``flat`` — placement is meaningless there (no tier caches exist)
#: and the run must stay on the stock data path.
_PLACEMENTS = ("none", "root-only", "lru-rack", "proactive-site")

_DEPTHS = ("depth2", "depth3")

_LOADS = {
    Scale.SMOKE: [2.0],
    Scale.QUICK: [2.0, 6.0],
    Scale.FULL: [2.0, 4.0, 6.0, 8.0],
}

_DURATIONS = {
    Scale.SMOKE: 1 * units.DAY,
    Scale.QUICK: 2 * units.DAY,
    Scale.FULL: 4 * units.DAY,
}

#: A placement "beats none" when it cuts mean waiting by at least this
#: fraction at the same (depth, load) point.
_MATERIAL_WIN = 0.05


def _config_for(load: float, duration: float, topology: Optional[TopologySpec]):
    return quick_config(
        n_nodes=_N_NODES,
        arrival_rate_per_hour=load,
        duration=duration,
        seed=_SEED,
        topology=topology,
    )


def _tiering_build(scale: Scale) -> List[RunSpec]:
    duration = _DURATIONS[scale]
    specs: List[RunSpec] = []
    for load in _LOADS[scale]:
        specs.append(
            RunSpec.make(
                _config_for(load, duration, None), "out-of-order", label="flat"
            )
        )
        for depth in _DEPTHS:
            for placement in _PLACEMENTS:
                specs.append(
                    RunSpec.make(
                        _config_for(
                            load, duration, topology_preset(depth, placement)
                        ),
                        "out-of-order",
                        label=f"{depth}/{placement}",
                    )
                )
    return specs


def _tier_hit_fraction(result) -> float:
    """Fraction of non-node-cache reads served by a tier cache."""
    tier = result.events_by_source.get("tier", 0)
    tertiary = result.events_by_source.get("tertiary", 0)
    total = tier + tertiary
    return tier / total if total else 0.0


def _storage_gb_hours(result, event_bytes: int) -> float:
    if result.topo is None:
        return 0.0
    return (
        result.topo.storage_event_seconds * event_bytes / units.GB / units.HOUR
    )


def _tiering_render(sweep: SweepResult) -> str:
    rows = []
    # (load -> label -> (mean_waiting, storage_gb_hours)) for the verdict.
    curves: Dict[float, Dict[str, Tuple[float, float]]] = {}
    for spec, result in sweep.pairs():
        load = spec.config.arrival_rate_per_hour
        topo = result.topo
        storage = _storage_gb_hours(result, spec.config.event_bytes)
        curves.setdefault(load, {})[spec.label] = (
            result.measured.mean_waiting,
            storage,
        )
        rows.append(
            [
                spec.label,
                f"{load:.1f}",
                units.fmt_duration(result.measured.mean_waiting),
                f"{result.measured.mean_speedup:.2f}",
                f"{_tier_hit_fraction(result):.2f}" if topo is not None else "-",
                topo.link_saturated_plans if topo is not None else "-",
                topo.replicated_events if topo is not None else "-",
                f"{storage:.1f}" if topo is not None else "-",
                "OVERLOADED" if result.overload.overloaded else "steady",
            ]
        )
    table = format_table(
        [
            "topology/placement",
            "load/h",
            "mean wait",
            "speedup",
            "tier hit",
            "link sat",
            "replicated",
            "GB-hours",
            "state",
        ],
        rows,
        title=(
            "Replica placement economics on a tiered data grid "
            "(out-of-order policy; flat = the paper's cluster, "
            "bit-identical to every other experiment)"
        ),
    )
    lines = [table, "", 'where "replication changes nothing" breaks:']
    breaks: List[str] = []
    for load in sorted(curves):
        points = curves[load]
        for depth in _DEPTHS:
            base = points.get(f"{depth}/none")
            if base is None or base[0] <= 0:
                continue
            for placement in _PLACEMENTS[1:]:
                entry = points.get(f"{depth}/{placement}")
                if entry is None:
                    continue
                wait, storage = entry
                win = 1.0 - wait / base[0]
                if win >= _MATERIAL_WIN:
                    breaks.append(
                        f"  {depth}/{placement} @ load {load:.1f}/h: "
                        f"waiting -{win:.0%} vs none "
                        f"for {storage:.1f} GB-hours of replicas"
                    )
    if breaks:
        lines.extend(breaks)
    else:
        lines.append(
            "  nowhere at these scales: no placement cuts mean waiting by "
            f">= {_MATERIAL_WIN:.0%} over 'none' (uplinks never queue long "
            "enough to matter)"
        )
    return "\n".join(lines)


register_experiment(
    Experiment(
        exp_id="tiering",
        title="Replica placement on a multi-tier data grid",
        paper_ref="beyond the paper (its cluster is flat by construction)",
        build=_tiering_build,
        render=_tiering_render,
        expectation=(
            "flat and 'none' placements anchor the baseline; replication "
            "changes nothing while uplinks stay unsaturated, and the first "
            "material win for a placement policy appears on the deeper "
            "tree at the higher loads, priced in storage GB-hours"
        ),
    )
)
