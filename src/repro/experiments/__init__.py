"""Experiment harness: every paper figure / claim as a runnable,
registered experiment."""

from .registry import (
    Experiment,
    Scale,
    all_experiments,
    available_experiments,
    get_experiment,
)
from . import figures  # noqa: F401  (registers fig2..fig7, repl, maxload, ...)
from . import ablations  # noqa: F401  (registers ablate-*)
from . import extensions  # noqa: F401  (registers fairness, ablate-network, scenario-diurnal)
from . import complexity_exp  # noqa: F401  (registers complexity)
from . import faults_exp  # noqa: F401  (registers faults)
from . import crossover_exp  # noqa: F401  (registers crossover)
from . import degradation_exp  # noqa: F401  (registers degradation)
from . import tiering_exp  # noqa: F401  (registers tiering)
from .calibration import (
    DEFAULT_CANDIDATE_DELAYS,
    calibrate_delay_table,
    max_sustained_load_for_delay,
    summarize_table,
)
from .report import (
    ExperimentOutcome,
    render_markdown_report,
    run_all,
    run_experiment,
)

__all__ = [
    "Experiment",
    "Scale",
    "get_experiment",
    "available_experiments",
    "all_experiments",
    "run_experiment",
    "run_all",
    "render_markdown_report",
    "ExperimentOutcome",
    "calibrate_delay_table",
    "max_sustained_load_for_delay",
    "summarize_table",
    "DEFAULT_CANDIDATE_DELAYS",
]
