"""Experiment registry: every paper figure / in-text claim as a runnable
spec.

An :class:`Experiment` bundles a builder (producing the sweep's
:class:`~repro.sim.runner.RunSpec` list at a given scale) with a renderer
that turns the sweep results into the paper-figure series/rows.  The CLI
(``python -m repro``) and the benchmark suite both drive this registry, so
a figure is regenerated identically everywhere.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, List

from ..core.errors import ConfigurationError
from ..sim.runner import RunSpec, SweepResult


class Scale(enum.Enum):
    """How much simulated time / how many load points to spend.

    * ``SMOKE`` — seconds; sanity only (unit tests).
    * ``QUICK`` — a minute or two; trends visible (benchmarks).
    * ``FULL``  — the paper-faithful sweep (CLI; EXPERIMENTS.md numbers).
    """

    SMOKE = "smoke"
    QUICK = "quick"
    FULL = "full"


@dataclass(frozen=True)
class Experiment:
    """One reproducible experiment."""

    exp_id: str
    title: str
    paper_ref: str
    build: Callable[[Scale], List[RunSpec]]
    render: Callable[[SweepResult], str]
    expectation: str  # the paper's qualitative claim, for the report

    def specs(self, scale: Scale = Scale.QUICK) -> List[RunSpec]:
        return self.build(scale)


_EXPERIMENTS: Dict[str, Experiment] = {}


def register_experiment(experiment: Experiment) -> Experiment:
    if experiment.exp_id in _EXPERIMENTS:
        raise ConfigurationError(f"duplicate experiment id {experiment.exp_id!r}")
    _EXPERIMENTS[experiment.exp_id] = experiment
    return experiment


def get_experiment(exp_id: str) -> Experiment:
    try:
        return _EXPERIMENTS[exp_id]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {exp_id!r}; available: {', '.join(sorted(_EXPERIMENTS))}"
        ) from None


def available_experiments() -> List[str]:
    return sorted(_EXPERIMENTS)


def all_experiments() -> List[Experiment]:
    return [_EXPERIMENTS[key] for key in sorted(_EXPERIMENTS)]
