"""Structured outcomes of the execution layer.

A batch run fills one slot per :class:`~repro.sim.runner.RunSpec`: either
the spec's :class:`~repro.sim.simulator.SimulationResult` or a
:class:`SpecError` describing why the worker failed after its retry
budget.  :class:`ExecStats` aggregates what the executor did (executed,
cache hits, resumed, retries), and :class:`Progress` is the payload of
the live per-completion callback.

This module deliberately imports nothing outside the standard library so
that :mod:`repro.sim.runner` can depend on it without an import cycle.
"""

from __future__ import annotations

import traceback as traceback_module
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass(frozen=True)
class SpecError:
    """One spec's failure, attached to its sweep slot instead of raised.

    A worker exception is captured with its type, message and formatted
    traceback so the parent process can report it even though the original
    exception object never crosses the process boundary.
    """

    index: int
    label: str
    policy: str
    kind: str
    message: str
    traceback: str = ""
    attempts: int = 1

    def brief(self) -> str:
        """One-line summary for logs and progress output."""
        retries = f" after {self.attempts} attempts" if self.attempts > 1 else ""
        return f"{self.label}: {self.kind}: {self.message}{retries}"

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "message": self.message,
            "attempts": self.attempts,
        }

    @classmethod
    def from_exception(
        cls,
        error: BaseException,
        index: int,
        label: str,
        policy: str,
        attempts: int,
    ) -> "SpecError":
        return cls(
            index=index,
            label=label,
            policy=policy,
            kind=type(error).__name__,
            message=str(error),
            traceback="".join(
                traceback_module.format_exception(
                    type(error), error, error.__traceback__
                )
            ),
            attempts=attempts,
        )


@dataclass
class ExecStats:
    """What one executor batch did, slot by slot.

    ``executed + cache_hits + resumed`` equals ``total``; ``failed``
    counts executed slots that ended as :class:`SpecError` and ``retries``
    counts extra attempts beyond each slot's first.  ``timeouts`` counts
    the subset of failures killed by the executor's spec timeout.
    """

    total: int = 0
    executed: int = 0
    cache_hits: int = 0
    resumed: int = 0
    failed: int = 0
    retries: int = 0
    timeouts: int = 0
    wall_seconds: float = 0.0

    @property
    def skipped(self) -> int:
        """Slots satisfied without running a simulation."""
        return self.cache_hits + self.resumed

    def as_dict(self) -> Dict[str, Any]:
        return {
            "total": self.total,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "resumed": self.resumed,
            "failed": self.failed,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "wall_seconds": self.wall_seconds,
        }

    def brief(self) -> str:
        """The one-line ``exec:`` summary printed by the CLI."""
        return (
            f"exec: total={self.total} executed={self.executed} "
            f"cache_hits={self.cache_hits} resumed={self.resumed} "
            f"failed={self.failed} retries={self.retries} "
            f"timeouts={self.timeouts} "
            f"wall={self.wall_seconds:.1f}s"
        )


@dataclass(frozen=True)
class Progress:
    """One completion, streamed to the progress callback as it happens.

    ``done`` counts completed slots so far (completion order, not spec
    order); ``cached`` is true when the slot was satisfied from the result
    cache or the resume journal; ``error`` is set when the slot failed.
    """

    done: int
    total: int
    index: int
    label: str
    brief: str
    cached: bool = False
    error: Optional[SpecError] = None


@dataclass
class ExecOutcome:
    """Everything one executor batch produced: ordered slots + stats."""

    #: One entry per input spec, in spec order — ``SimulationResult`` or
    #: :class:`SpecError` (never missing).
    results: List[Any] = field(default_factory=list)
    stats: ExecStats = field(default_factory=ExecStats)

    @property
    def errors(self) -> List[SpecError]:
        return [slot for slot in self.results if isinstance(slot, SpecError)]
