"""The unified execution layer: one owner for every batch of RunSpecs.

:class:`Executor` runs a sequence of sweep points behind a single API
with two backends — serial (in-process) and a ``multiprocessing`` pool —
chosen by ``jobs``.  Whatever the backend:

* results stream back as they complete (live :class:`Progress` callbacks
  and ``exec.*`` observability events) but are reassembled in spec order,
  so the returned slots — and everything serialised from them — are
  bit-identical regardless of ``--jobs``;
* a worker exception becomes a structured
  :class:`~repro.exec.outcomes.SpecError` attached to that slot instead
  of aborting the pool, after bounded in-worker retries with the fault
  subsystem's exponential backoff;
* with a spec timeout (``--spec-timeout`` / ``$REPRO_SPEC_TIMEOUT``) a
  stuck worker is killed and surfaces as ``SpecError(kind="timeout")``
  in its slot instead of hanging the batch forever;
* with a :class:`~repro.exec.cache.ResultCache` attached, each spec is
  first looked up by content fingerprint and only misses are executed;
  completed misses are written back;
* with a journal path attached, each finished slot is appended to the
  ``*.journal.jsonl`` checkpoint, and ``resume=True`` re-runs only the
  specs the journal does not mark complete (payloads restored from the
  cache).

Workers execute :func:`repro.sim.simulator.run_simulation`, imported
lazily so this module stays import-cycle-free (``sim.runner`` builds on
this executor).
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..core.clock import wall_clock
from ..obs.hooks import NULL_BUS, HookBus, kinds
from .cache import ResultCache
from .fingerprint import spec_fingerprint
from .journal import JournalEntry, SweepJournal
from .outcomes import ExecOutcome, ExecStats, Progress, SpecError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.runner import RunSpec
    from ..sim.simulator import SimulationResult

#: Environment override for the default worker count (CLI ``--jobs`` wins).
JOBS_ENV = "REPRO_JOBS"

#: Environment override for the per-spec timeout in seconds
#: (CLI ``--spec-timeout`` wins).
SPEC_TIMEOUT_ENV = "REPRO_SPEC_TIMEOUT"

#: ``SpecError.kind`` used for slots killed by the spec timeout.
TIMEOUT_KIND = "timeout"

#: Progress callback type: called once per completed slot, completion order.
ProgressCallback = Callable[[Progress], None]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded in-worker retries for transient spec failures.

    ``max_attempts`` counts the first try; the delay before retry *n*
    follows the fault subsystem's exponential backoff
    (``base * factor**(n-1)``, capped).  Deterministic failures simply
    exhaust the budget quickly and surface as a :class:`SpecError`.
    """

    max_attempts: int = 2
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 1.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        from ..faults.recovery import exponential_backoff

        return exponential_backoff(
            attempt, self.backoff_base, self.backoff_factor, self.backoff_max
        )


#: Retry policy that fails fast on the first error.
NO_RETRY = RetryPolicy(max_attempts=1)


def resolve_jobs(jobs: Optional[int], n_specs: int) -> int:
    """Worker count: explicit argument > ``$REPRO_JOBS`` > heuristic
    (serial for tiny batches, one worker per spec up to the CPU count)."""
    if jobs is None:
        env = os.environ.get(JOBS_ENV, "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise ValueError(
                    f"${JOBS_ENV} must be an integer, got {env!r}"
                ) from None
    if jobs is None:
        return 1 if n_specs <= 2 else min(n_specs, os.cpu_count() or 1)
    return max(1, min(jobs, max(1, n_specs)))


def resolve_spec_timeout(spec_timeout: Optional[float]) -> Optional[float]:
    """Per-spec timeout in seconds: explicit argument >
    ``$REPRO_SPEC_TIMEOUT`` > no timeout."""
    if spec_timeout is None:
        env = os.environ.get(SPEC_TIMEOUT_ENV, "").strip()
        if env:
            try:
                spec_timeout = float(env)
            except ValueError:
                raise ValueError(
                    f"${SPEC_TIMEOUT_ENV} must be a number of seconds, "
                    f"got {env!r}"
                ) from None
    if spec_timeout is not None and spec_timeout <= 0:
        raise ValueError(f"spec timeout must be > 0, got {spec_timeout}")
    return spec_timeout


@dataclass(frozen=True)
class _Failure:
    """Pickle-safe carrier of a worker exception across the pool."""

    kind: str
    message: str
    traceback: str


_Payload = Union["SimulationResult", _Failure]
#: (index, attempts, payload) — what a worker sends back per task.
_TaskResult = Tuple[int, int, _Payload]


def _execute_spec(spec: "RunSpec") -> "SimulationResult":
    """Run one sweep point (the single place a spec becomes a result)."""
    from ..sim.simulator import run_simulation

    return run_simulation(spec.config, spec.policy, **dict(spec.policy_params))


def run_with_retries(
    run: Callable[[], Any],
    retry: RetryPolicy,
    sleep: Callable[[float], None] = time.sleep,
) -> Tuple[int, Union[Any, _Failure]]:
    """``run()`` with the retry policy applied; returns (attempts, payload).

    The payload is the call's return value, or a :class:`_Failure` when
    the final attempt raised.  ``sleep`` is injectable for tests.
    """
    import traceback as traceback_module

    attempt = 1
    while True:
        try:
            return attempt, run()
        except Exception as error:  # noqa: BLE001 - crash isolation boundary
            if attempt >= retry.max_attempts:
                return attempt, _Failure(
                    kind=type(error).__name__,
                    message=str(error),
                    traceback="".join(
                        traceback_module.format_exception(
                            type(error), error, error.__traceback__
                        )
                    ),
                )
            sleep(retry.delay(attempt))
            attempt += 1


def _pool_task(task: Tuple[int, "RunSpec", RetryPolicy]) -> _TaskResult:
    """Pool entry point: run one spec with retries, never raise."""
    index, spec, retry = task
    attempts, payload = run_with_retries(lambda: _execute_spec(spec), retry)
    return index, attempts, payload


def _result_schema_version() -> int:
    """The summary-JSON schema version (keys the cache namespace)."""
    from ..sim.export import SCHEMA_VERSION

    return SCHEMA_VERSION


def make_cache(directory: Optional[Union[str, Path]] = None) -> ResultCache:
    """A result cache on the standard store, keyed to the current
    results schema version."""
    return ResultCache(directory, schema_version=_result_schema_version())


class Executor:
    """Runs batches of sweep points; see the module docstring."""

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        retry: RetryPolicy = NO_RETRY,
        journal_path: Optional[Union[str, Path]] = None,
        resume: bool = False,
        obs: HookBus = NULL_BUS,
        spec_timeout: Optional[float] = None,
    ) -> None:
        self.jobs = jobs
        self.cache = cache
        self.retry = retry
        self.journal_path = Path(journal_path) if journal_path else None
        self.resume = resume
        self.obs = obs
        self.spec_timeout = spec_timeout

    # -- the one entry point --------------------------------------------------

    def run(
        self,
        specs: Sequence["RunSpec"],
        progress: Optional[ProgressCallback] = None,
    ) -> ExecOutcome:
        """Execute every spec; returns ordered slots plus stats."""
        specs = list(specs)
        started = wall_clock()
        stats = ExecStats(total=len(specs))
        slots: List[Optional[Union["SimulationResult", SpecError]]] = [
            None
        ] * len(specs)
        if self.obs.enabled:
            self.obs.emit(0.0, kinds.EXEC_SWEEP_START, "exec", total=len(specs))

        fingerprints = self._fingerprints(specs)
        resumed_from = self._load_resume_state()
        journal = self._open_journal()
        done = 0
        try:
            # Phase 1: satisfy slots from the journal (resume) and the
            # content-addressed cache, in spec order.
            pending: List[int] = []
            for index, spec in enumerate(specs):
                restored = self._restore(
                    index, fingerprints, resumed_from, stats
                )
                if restored is None:
                    pending.append(index)
                    continue
                slots[index] = restored
                done += 1
                self._record(
                    journal, fingerprints, index, spec, restored, attempts=1
                )
                self._notify(
                    progress, done, len(specs), index, spec, restored,
                    cached=True,
                )

            # Phase 2: execute the misses, streaming completions.
            for index, attempts, payload in self._execute(pending, specs):
                spec = specs[index]
                outcome = self._finish(
                    index, spec, attempts, payload, fingerprints, stats
                )
                slots[index] = outcome
                done += 1
                self._record(
                    journal, fingerprints, index, spec, outcome, attempts
                )
                self._notify(
                    progress, done, len(specs), index, spec, outcome,
                    cached=False,
                )
        finally:
            if journal is not None:
                journal.close()

        stats.wall_seconds = wall_clock() - started
        if self.obs.enabled:
            self.obs.emit(
                stats.wall_seconds, kinds.EXEC_SWEEP_END, "exec",
                **stats.as_dict(),
            )
        results = [slot for slot in slots if slot is not None]
        assert len(results) == len(specs), "executor lost a slot"
        return ExecOutcome(results=results, stats=stats)

    # -- phase 1: cache & resume ----------------------------------------------

    def _fingerprints(
        self, specs: Sequence["RunSpec"]
    ) -> Optional[List[str]]:
        """Per-spec fingerprints, or ``None`` when nothing needs them."""
        if self.cache is None and self.journal_path is None:
            return None
        schema = (
            self.cache.schema_version
            if self.cache is not None
            else _result_schema_version()
        )
        return [spec_fingerprint(spec, schema) for spec in specs]

    def _load_resume_state(self) -> Dict[str, JournalEntry]:
        if not (self.resume and self.journal_path is not None):
            return {}
        return SweepJournal.completed(SweepJournal.load(self.journal_path))

    def _open_journal(self) -> Optional[SweepJournal]:
        if self.journal_path is None:
            return None
        journal = SweepJournal(self.journal_path)
        # Both fresh and resumed runs rewrite the journal: every restored
        # slot is re-recorded immediately below, so the file always
        # describes the *current* sweep invocation.
        journal.open(truncate=True)
        return journal

    def _restore(
        self,
        index: int,
        fingerprints: Optional[List[str]],
        resumed_from: Dict[str, JournalEntry],
        stats: ExecStats,
    ) -> Optional["SimulationResult"]:
        """A completed payload for this slot, or ``None`` to execute it."""
        if fingerprints is None or self.cache is None:
            return None
        fingerprint = fingerprints[index]
        via_journal = fingerprint in resumed_from
        result = self.cache.get(fingerprint)
        if result is None:
            return None
        if via_journal:
            stats.resumed += 1
        else:
            stats.cache_hits += 1
        if self.obs.enabled:
            self.obs.emit(
                0.0, kinds.EXEC_CACHE_HIT, "exec",
                index=index, resumed=via_journal,
            )
        return result

    # -- phase 2: execution ---------------------------------------------------

    def _execute(
        self, pending: List[int], specs: Sequence["RunSpec"]
    ) -> Iterator[_TaskResult]:
        """Run the pending specs, yielding task results as they complete.

        With a spec timeout the pool backend is used even at one worker:
        only a separate process can be killed once stuck.  The timeout
        bounds the wait for *each next completion* — when it expires the
        pool is terminated and every not-yet-seen slot is synthesized as
        a ``timeout`` failure, so the batch always finishes.
        """
        if not pending:
            return
        timeout = resolve_spec_timeout(self.spec_timeout)
        jobs = resolve_jobs(self.jobs, len(pending))
        tasks = [(index, specs[index], self.retry) for index in pending]
        if timeout is None and jobs <= 1:
            for task in tasks:
                yield _pool_task(task)
            return
        # chunksize=1 keeps completions streaming: a long spec must not
        # hold a chunk of finished neighbours hostage.
        with multiprocessing.Pool(processes=jobs) as pool:
            iterator = pool.imap_unordered(_pool_task, tasks, chunksize=1)
            seen: set = set()
            for _ in range(len(tasks)):
                try:
                    index, attempts, payload = iterator.next(timeout)
                except StopIteration:  # pragma: no cover - defensive
                    break
                except multiprocessing.TimeoutError:
                    pool.terminate()
                    for stuck in pending:
                        if stuck not in seen:
                            yield stuck, 1, _Failure(
                                kind=TIMEOUT_KIND,
                                message=(
                                    f"no completion within the "
                                    f"{timeout:g}s spec timeout"
                                ),
                                traceback="",
                            )
                    return
                seen.add(index)
                yield index, attempts, payload

    def _finish(
        self,
        index: int,
        spec: "RunSpec",
        attempts: int,
        payload: _Payload,
        fingerprints: Optional[List[str]],
        stats: ExecStats,
    ) -> Union["SimulationResult", SpecError]:
        """Account one executed slot; write successes back to the cache."""
        stats.executed += 1
        stats.retries += attempts - 1
        if self.obs.enabled and attempts > 1:
            self.obs.emit(
                0.0, kinds.EXEC_RETRY, "exec",
                index=index, attempts=attempts,
            )
        if isinstance(payload, _Failure):
            stats.failed += 1
            if payload.kind == TIMEOUT_KIND:
                stats.timeouts += 1
            error = SpecError(
                index=index,
                label=spec.label,
                policy=spec.policy,
                kind=payload.kind,
                message=payload.message,
                traceback=payload.traceback,
                attempts=attempts,
            )
            if self.obs.enabled:
                self.obs.emit(
                    0.0, kinds.EXEC_SPEC_ERROR, "exec",
                    index=index, error_kind=error.kind, attempts=attempts,
                )
            return error
        if self.cache is not None and fingerprints is not None:
            self.cache.put(fingerprints[index], payload)
        if self.obs.enabled:
            self.obs.emit(0.0, kinds.EXEC_SPEC_DONE, "exec", index=index)
        return payload

    # -- bookkeeping ----------------------------------------------------------

    @staticmethod
    def _record(
        journal: Optional[SweepJournal],
        fingerprints: Optional[List[str]],
        index: int,
        spec: "RunSpec",
        outcome: Union["SimulationResult", SpecError],
        attempts: int,
    ) -> None:
        if journal is None or fingerprints is None:
            return
        failed = isinstance(outcome, SpecError)
        journal.append(
            JournalEntry(
                fingerprint=fingerprints[index],
                index=index,
                label=spec.label,
                policy=spec.policy,
                status="error" if failed else "ok",
                attempts=attempts,
                error_kind=outcome.kind if isinstance(outcome, SpecError) else "",
                error_message=(
                    outcome.message if isinstance(outcome, SpecError) else ""
                ),
            )
        )

    @staticmethod
    def _notify(
        progress: Optional[ProgressCallback],
        done: int,
        total: int,
        index: int,
        spec: "RunSpec",
        outcome: Union["SimulationResult", SpecError],
        cached: bool,
    ) -> None:
        if progress is None:
            return
        if isinstance(outcome, SpecError):
            progress(
                Progress(
                    done=done, total=total, index=index, label=spec.label,
                    brief=f"ERROR {outcome.brief()}", error=outcome,
                )
            )
            return
        prefix = "cached " if cached else ""
        progress(
            Progress(
                done=done, total=total, index=index, label=spec.label,
                brief=prefix + outcome.brief(), cached=cached,
            )
        )
