"""The sweep checkpoint journal (``*.journal.jsonl``).

Every finished slot of a sweep is appended as one JSON line the moment it
completes, so an interrupted sweep leaves a durable record of exactly
which points are done.  Re-invoking the sweep with ``--resume`` loads the
journal, restores the completed points' payloads from the result cache,
and runs only the missing specs.

The journal is identification, not storage: payloads live in the
content-addressed :class:`~repro.exec.cache.ResultCache`, keyed by the
same fingerprint each line carries.  A journal line whose payload is no
longer in the cache simply causes that spec to re-run.  Failed slots are
recorded with ``status="error"`` and are *not* treated as complete — a
resume retries them.

Loading tolerates a truncated final line (the signature of a run killed
mid-append); everything before it is kept.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, IO, List, Optional, Union

#: Bump when the line layout changes incompatibly.
JOURNAL_VERSION = 1


@dataclass(frozen=True)
class JournalEntry:
    """One completed (or failed) sweep slot."""

    fingerprint: str
    index: int
    label: str
    policy: str
    status: str  # "ok" | "error"
    attempts: int = 1
    error_kind: str = ""
    error_message: str = ""

    def to_line(self) -> str:
        payload = {
            "v": JOURNAL_VERSION,
            "fingerprint": self.fingerprint,
            "index": self.index,
            "label": self.label,
            "policy": self.policy,
            "status": self.status,
            "attempts": self.attempts,
        }
        if self.status == "error":
            payload["error_kind"] = self.error_kind
            payload["error_message"] = self.error_message
        return json.dumps(payload, sort_keys=True)

    @classmethod
    def from_line(cls, line: str) -> Optional["JournalEntry"]:
        """Parse one line; ``None`` for blank, torn or alien lines."""
        line = line.strip()
        if not line:
            return None
        try:
            payload = json.loads(line)
        except json.JSONDecodeError:
            return None  # torn final line of an interrupted run
        if not isinstance(payload, dict):
            return None
        if int(payload.get("v", -1)) != JOURNAL_VERSION:
            return None
        try:
            return cls(
                fingerprint=str(payload["fingerprint"]),
                index=int(payload["index"]),
                label=str(payload["label"]),
                policy=str(payload["policy"]),
                status=str(payload["status"]),
                attempts=int(payload.get("attempts", 1)),
                error_kind=str(payload.get("error_kind", "")),
                error_message=str(payload.get("error_message", "")),
            )
        except (KeyError, ValueError, TypeError):
            return None


class SweepJournal:
    """Append-only JSONL writer with crash-tolerant loading."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._handle: Optional[IO[str]] = None

    @staticmethod
    def load(path: Union[str, Path]) -> List[JournalEntry]:
        """All parseable entries of an existing journal (``[]`` if none)."""
        path = Path(path)
        if not path.is_file():
            return []
        entries: List[JournalEntry] = []
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                entry = JournalEntry.from_line(line)
                if entry is not None:
                    entries.append(entry)
        return entries

    @staticmethod
    def completed(entries: List[JournalEntry]) -> Dict[str, JournalEntry]:
        """Fingerprint → entry for every successfully completed slot."""
        return {
            entry.fingerprint: entry
            for entry in entries
            if entry.status == "ok"
        }

    def open(self, truncate: bool = True) -> None:
        """Open for writing; a fresh (non-resume) run truncates."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(  # noqa: SIM115 - lifetime managed by close()
            self.path, "w" if truncate else "a", encoding="utf-8"
        )

    def append(self, entry: JournalEntry) -> None:
        """Write one entry and flush — the line must survive a kill."""
        assert self._handle is not None, "journal not open"
        self._handle.write(entry.to_line() + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
