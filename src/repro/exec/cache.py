"""The content-addressed result store (``.repro-cache/``).

Results are pickled under ``<root>/v<schema>/<fp[:2]>/<fp>.pkl`` where
``fp`` is the spec fingerprint — re-rendering a figure or re-running a
sweep at the same scale finds every already-computed point by content,
not by sweep identity.  The schema version is part of the layout so a
results-schema bump naturally starts a fresh namespace instead of
serving incompatible pickles.

Writes are atomic (temp file + :func:`os.replace`) so a killed sweep can
never leave a truncated pickle behind; reads treat any unreadable or
corrupt entry as a miss and fall through to recomputation.
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path
from typing import Any, Optional, Union

#: Default store location, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Environment override for the store location (CLI ``--cache-dir`` wins).
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def resolve_cache_dir(explicit: Optional[Union[str, Path]] = None) -> Path:
    """Cache root: explicit argument > ``$REPRO_CACHE_DIR`` > default."""
    if explicit is not None:
        return Path(explicit)
    env = os.environ.get(CACHE_DIR_ENV, "").strip()
    return Path(env) if env else Path(DEFAULT_CACHE_DIR)


class ResultCache:
    """Content-addressed pickle store for simulation results."""

    def __init__(
        self,
        root: Optional[Union[str, Path]] = None,
        schema_version: int = 0,
    ) -> None:
        self.root = resolve_cache_dir(root)
        self.schema_version = schema_version
        self.hits = 0
        self.misses = 0
        self.writes = 0

    @property
    def store_dir(self) -> Path:
        return self.root / f"v{self.schema_version}"

    def path_for(self, fingerprint: str) -> Path:
        """Where ``fingerprint``'s pickle lives (two-level fan-out)."""
        return self.store_dir / fingerprint[:2] / f"{fingerprint}.pkl"

    def __contains__(self, fingerprint: str) -> bool:
        return self.path_for(fingerprint).is_file()

    def get(self, fingerprint: str) -> Optional[Any]:
        """The stored result, or ``None`` on a miss or a corrupt entry."""
        path = self.path_for(fingerprint)
        try:
            with open(path, "rb") as handle:
                result = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            # Missing file, torn write from an older tool, or a pickle
            # referencing since-renamed classes: all are plain misses.
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, fingerprint: str, result: Any) -> Path:
        """Atomically store ``result`` under ``fingerprint``."""
        path = self.path_for(fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "wb") as handle:
            pickle.dump(result, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
        self.writes += 1
        return path

    def journal_path(self, name: str) -> Path:
        """Canonical journal location for a named sweep in this store."""
        return self.root / "journals" / f"{name}.journal.jsonl"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResultCache(root={str(self.root)!r}, "
            f"v{self.schema_version}, hits={self.hits}, "
            f"misses={self.misses}, writes={self.writes})"
        )
