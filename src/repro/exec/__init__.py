"""The unified execution layer (``repro.exec``).

Every paper figure is a sweep of dozens-to-hundreds of independent
simulations; this package is the one owner of how such batches run.
:class:`Executor` provides serial and process-pool backends behind a
single API with streamed completions, per-spec crash isolation
(:class:`SpecError` slots instead of aborted pools), bounded retries, a
content-addressed :class:`ResultCache` (``.repro-cache/``), and a
resumable :class:`~repro.exec.journal.SweepJournal` checkpoint.

The high-level entry points — :func:`repro.sim.runner.run_sweep`, the
experiment registry, ``repro sweep``/``repro run`` — all build on this;
nothing else in the repository spawns worker processes.
"""

from .cache import CACHE_DIR_ENV, DEFAULT_CACHE_DIR, ResultCache, resolve_cache_dir
from .executor import (
    JOBS_ENV,
    NO_RETRY,
    SPEC_TIMEOUT_ENV,
    TIMEOUT_KIND,
    Executor,
    RetryPolicy,
    make_cache,
    resolve_jobs,
    resolve_spec_timeout,
    run_with_retries,
)
from .fingerprint import FINGERPRINT_VERSION, spec_fingerprint, spec_payload
from .journal import JOURNAL_VERSION, JournalEntry, SweepJournal
from .outcomes import ExecOutcome, ExecStats, Progress, SpecError

__all__ = [
    "CACHE_DIR_ENV",
    "DEFAULT_CACHE_DIR",
    "ExecOutcome",
    "ExecStats",
    "Executor",
    "FINGERPRINT_VERSION",
    "JOBS_ENV",
    "JOURNAL_VERSION",
    "JournalEntry",
    "NO_RETRY",
    "Progress",
    "ResultCache",
    "RetryPolicy",
    "SPEC_TIMEOUT_ENV",
    "SpecError",
    "SweepJournal",
    "TIMEOUT_KIND",
    "make_cache",
    "resolve_cache_dir",
    "resolve_jobs",
    "resolve_spec_timeout",
    "run_with_retries",
    "spec_fingerprint",
    "spec_payload",
]
