"""Content-addressed fingerprints of sweep points.

A spec's fingerprint is the SHA-256 of a canonical JSON rendering of
everything that determines its simulation output: the full
:class:`~repro.sim.config.SimulationConfig`, the policy name, the policy
parameters, and the results schema version (so a schema bump invalidates
every cached result instead of serving stale layouts).  The spec *label*
is deliberately excluded — it is presentation, not physics — so renaming
a curve reuses the cached point.

Fingerprints are stable across processes, platforms and ``--jobs``
settings: the JSON is rendered with sorted keys, no whitespace, and a
deterministic fallback encoder.
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING, Any, Dict

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runner imports us)
    from ..sim.runner import RunSpec

#: Bump when the fingerprint recipe itself changes (canonicalisation,
#: included fields), orthogonally to the results schema version.
FINGERPRINT_VERSION = 1


def _canonical(value: Any) -> Any:
    """Recursively convert ``value`` into canonical JSON-ready form."""
    if isinstance(value, dict):
        return {str(key): _canonical(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    # Anything exotic (enums, dataclasses smuggled through policy params)
    # falls back to repr, which is deterministic for the types we accept.
    return repr(value)


def spec_payload(spec: "RunSpec", schema_version: int) -> Dict[str, Any]:
    """The canonical dict a fingerprint hashes (exposed for tests)."""
    return {
        "fingerprint_version": FINGERPRINT_VERSION,
        "schema_version": schema_version,
        "config": _canonical(spec.config.to_dict()),
        "policy": spec.policy,
        "policy_params": _canonical(dict(spec.policy_params)),
    }


def spec_fingerprint(spec: "RunSpec", schema_version: int) -> str:
    """Hex SHA-256 fingerprint of one sweep point."""
    rendered = json.dumps(
        spec_payload(spec, schema_version),
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(rendered.encode("utf-8")).hexdigest()
