"""Machine-readable benchmark reports (``BENCH_*.json``).

A benchmark run produces a :class:`BenchReport`: provenance (schema
version, git SHA, python version, peak RSS) plus one :class:`BenchRecord`
per benchmark — its best wall time, the amount of work done, and the
derived throughput.  Reports serialise to a stable JSON schema so CI can
diff them against a committed baseline (see :mod:`repro.perf.baseline`).

>>> record = BenchRecord(name="engine.dispatch", wall_seconds=0.5,
...                      work=1_000_000, unit="events", repeats=3)
>>> record.throughput
2000000.0
>>> report = BenchReport(kind="kernel", records=(record,))
>>> BenchReport.from_json(report.to_json()).records[0].name
'engine.dispatch'
"""

from __future__ import annotations

import json
import os
import platform
import resource
import subprocess
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

#: Bump when the JSON layout changes incompatibly; readers reject
#: reports with a different major schema.
SCHEMA_VERSION = 1


def git_sha(short: bool = False) -> str:
    """The current git commit hash, or ``"unknown"`` outside a checkout."""
    command = ["git", "rev-parse"] + (["--short"] if short else []) + ["HEAD"]
    try:
        out = subprocess.run(
            command, capture_output=True, text=True, timeout=10, check=False
        )
    except OSError:
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def peak_rss_kb() -> int:
    """Peak resident set size of this process in KiB (Linux semantics)."""
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


@dataclass(frozen=True)
class Hotspot:
    """One profiled function (``--profile`` mode)."""

    function: str
    calls: int
    total_seconds: float
    cumulative_seconds: float

    def as_dict(self) -> Dict[str, Any]:
        return {
            "function": self.function,
            "calls": self.calls,
            "total_seconds": self.total_seconds,
            "cumulative_seconds": self.cumulative_seconds,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Hotspot":
        return cls(
            function=str(data["function"]),
            calls=int(data["calls"]),
            total_seconds=float(data["total_seconds"]),
            cumulative_seconds=float(data["cumulative_seconds"]),
        )


@dataclass(frozen=True)
class BenchRecord:
    """One benchmark: best wall time over ``repeats`` runs and the work done.

    ``throughput`` is derived (``work / wall_seconds``) so records can
    never carry an inconsistent rate.

    >>> BenchRecord("x", wall_seconds=2.0, work=10, unit="ops", repeats=1).throughput
    5.0
    """

    name: str
    wall_seconds: float
    work: int
    unit: str
    repeats: int
    hotspots: Tuple[Hotspot, ...] = ()
    #: Peak RSS of the run in KiB, when the benchmark measures it (the
    #: scale tier runs each point in a fresh child process for exactly
    #: this).  ``None`` means "not measured" and the key is omitted from
    #: the JSON — an additive, schema-compatible extension.
    rss_kb: Optional[int] = None

    @property
    def throughput(self) -> float:
        """Work units per second (0 when the timer resolution was hit)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.work / self.wall_seconds

    def as_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "name": self.name,
            "wall_seconds": self.wall_seconds,
            "work": self.work,
            "unit": self.unit,
            "throughput": self.throughput,
            "repeats": self.repeats,
        }
        if self.rss_kb is not None:
            data["rss_kb"] = self.rss_kb
        if self.hotspots:
            data["hotspots"] = [spot.as_dict() for spot in self.hotspots]
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BenchRecord":
        return cls(
            name=str(data["name"]),
            wall_seconds=float(data["wall_seconds"]),
            work=int(data["work"]),
            unit=str(data["unit"]),
            repeats=int(data["repeats"]),
            rss_kb=(
                int(data["rss_kb"]) if data.get("rss_kb") is not None else None
            ),
            hotspots=tuple(
                Hotspot.from_dict(spot) for spot in data.get("hotspots", ())
            ),
        )


@dataclass(frozen=True)
class BenchReport:
    """A full benchmark run: provenance plus per-benchmark records."""

    kind: str
    records: Tuple[BenchRecord, ...] = ()
    schema_version: int = SCHEMA_VERSION
    git_sha: str = field(default_factory=git_sha)
    python_version: str = field(default_factory=platform.python_version)
    peak_rss_kb: int = field(default_factory=peak_rss_kb)

    def record(self, name: str) -> Optional[BenchRecord]:
        """The record called ``name``, or ``None``."""
        for entry in self.records:
            if entry.name == name:
                return entry
        return None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "kind": self.kind,
            "git_sha": self.git_sha,
            "python_version": self.python_version,
            "peak_rss_kb": self.peak_rss_kb,
            "records": [entry.as_dict() for entry in self.records],
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=False) + "\n"

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BenchReport":
        version = int(data.get("schema_version", -1))
        if version != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported bench schema version {version} "
                f"(this reader understands {SCHEMA_VERSION})"
            )
        return cls(
            kind=str(data["kind"]),
            records=tuple(
                BenchRecord.from_dict(entry) for entry in data["records"]
            ),
            schema_version=version,
            git_sha=str(data.get("git_sha", "unknown")),
            python_version=str(data.get("python_version", "unknown")),
            peak_rss_kb=int(data.get("peak_rss_kb", 0)),
        )

    @classmethod
    def from_json(cls, text: str) -> "BenchReport":
        return cls.from_dict(json.loads(text))

    def write(self, path: str) -> None:
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    @classmethod
    def read(cls, path: str) -> "BenchReport":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())


def report_filename(kind: str) -> str:
    """Canonical file name for a report kind (``BENCH_kernel.json``)."""
    return f"BENCH_{kind}.json"


_SUMMARY_ROW = "{name:<28} {wall:>10} {throughput:>16} {unit}"


def render_report(report: BenchReport) -> str:
    """Human-readable table of one report (the JSON stays the API)."""
    lines: List[str] = [
        f"benchmark kind: {report.kind}  "
        f"(git {report.git_sha[:12]}, python {report.python_version}, "
        f"peak RSS {report.peak_rss_kb // 1024} MiB)",
        _SUMMARY_ROW.format(
            name="name", wall="wall [s]", throughput="throughput", unit=""
        ),
    ]
    for entry in report.records:
        row = _SUMMARY_ROW.format(
            name=entry.name,
            wall=f"{entry.wall_seconds:.4f}",
            throughput=f"{entry.throughput:,.0f}",
            unit=entry.unit + "/s",
        )
        if entry.rss_kb is not None:
            row += f"  rss {entry.rss_kb // 1024} MiB"
        lines.append(row)
        for spot in entry.hotspots:
            lines.append(
                f"    {spot.total_seconds:8.4f}s  {spot.calls:>9} calls  "
                f"{spot.function}"
            )
    return "\n".join(lines)
