"""The benchmark harness: kernel micro-benchmarks and policy macro-runs.

Three report kinds:

* ``kernel`` — micro-benchmarks of the simulator's hot paths: engine heap
  dispatch (with and without cancellation churn), :class:`Interval` /
  :class:`IntervalSet` arithmetic, disk-cache LRU operations, and
  topology routing (``topo.route``);
* ``policies`` — end-to-end ``run_simulation`` per scheduling policy on
  the reduced ``quick`` configuration, the ``sim.tier.d1/d2/d3`` tiered
  grid points (pricing the topology layer per depth), plus (outside
  ``--quick`` mode) the paper's figure-5 out-of-order workload, whose
  data-events/second rate is the headline throughput number of this
  repository;
* ``scale`` — the 10/100/1000-node scale tier with per-run peak-RSS
  tracking, in :mod:`repro.perf.scale`.

Workloads are generated with an inline linear-congruential generator —
not :mod:`numpy` — so the benchmark inputs are bit-stable across runs and
platforms and the harness itself stays outside the simulation's seeded
RNG discipline (simlint SIM002).

All wall-clock timing funnels through :func:`repro.core.clock.wall_clock`
(simlint SIM001); each benchmark reports the *best* time over its repeats,
the standard technique for suppressing scheduler noise.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from ..core import units
from ..core.clock import wall_clock
from ..core.engine import Engine
from ..data.cache import LRUSegmentCache
from ..data.intervals import Interval, IntervalSet
from ..exec.executor import Executor
from ..exec.fingerprint import spec_fingerprint
from ..exec.outcomes import SpecError
from ..sched import available_policies
from ..sim.config import SimulationConfig, paper_config, quick_config
from ..sim.export import SCHEMA_VERSION
from ..sim.runner import RunSpec
from .profiling import profile_call
from .report import BenchRecord, BenchReport, Hotspot

#: Default repeat counts (best-of-N): micro benches are cheap enough to
#: repeat more often than end-to-end simulations.
KERNEL_REPEATS = 5
POLICY_REPEATS = 3

_LCG_MULTIPLIER = 6364136223846793005
_LCG_INCREMENT = 1442695040888963407
_LCG_MASK = (1 << 64) - 1


class _Lcg:
    """Deterministic 64-bit LCG for benchmark workload generation."""

    __slots__ = ("state",)

    def __init__(self, seed: int) -> None:
        self.state = seed & _LCG_MASK

    def below(self, bound: int) -> int:
        """The next pseudo-random integer in ``[0, bound)``."""
        self.state = (self.state * _LCG_MULTIPLIER + _LCG_INCREMENT) & _LCG_MASK
        return (self.state >> 33) % bound


def _best_of(
    setup: Callable[[], Callable[[], None]], repeats: int
) -> float:
    """Best wall time of ``repeats`` fresh setup+run cycles (only the run
    callable returned by ``setup`` is timed)."""
    best: Optional[float] = None
    for _ in range(max(1, repeats)):
        run = setup()
        started = wall_clock()
        run()
        elapsed = wall_clock() - started
        if best is None or elapsed < best:
            best = elapsed
    assert best is not None
    return best


def _sink(*args: object) -> None:
    """No-op event callback for engine benchmarks."""


# -- kernel micro-benchmarks ---------------------------------------------------


def bench_engine_dispatch(n_events: int = 200_000, repeats: int = KERNEL_REPEATS) -> BenchRecord:
    """Schedule ``n_events`` at pseudo-random times, then drain the heap.

    >>> bench_engine_dispatch(n_events=100, repeats=1).work
    100
    """

    def setup() -> Callable[[], None]:
        engine = Engine()
        rng = _Lcg(seed=1)
        for _ in range(n_events):
            engine.call_at(float(rng.below(1_000_000)), _sink)
        return lambda: engine.run()

    wall = _best_of(setup, repeats)
    return BenchRecord(
        name="engine.dispatch",
        wall_seconds=wall,
        work=n_events,
        unit="events",
        repeats=repeats,
    )


def bench_engine_cancel_churn(
    n_events: int = 200_000, repeats: int = KERNEL_REPEATS
) -> BenchRecord:
    """Engine dispatch with half the calendar lazily cancelled — the load
    pattern of preemption-heavy policies.

    >>> bench_engine_cancel_churn(n_events=100, repeats=1).unit
    'events'
    """

    def setup() -> Callable[[], None]:
        engine = Engine()
        rng = _Lcg(seed=2)
        handles = [
            engine.call_at(float(rng.below(1_000_000)), _sink)
            for _ in range(n_events)
        ]
        for index in range(0, n_events, 2):
            engine.cancel(handles[index])
        return lambda: engine.run()

    wall = _best_of(setup, repeats)
    return BenchRecord(
        name="engine.cancel_churn",
        wall_seconds=wall,
        work=n_events,
        unit="events",
        repeats=repeats,
    )


def bench_interval_ops(n_ops: int = 100_000, repeats: int = KERNEL_REPEATS) -> BenchRecord:
    """Interval arithmetic mix: intersection, subtract, take_left.

    >>> bench_interval_ops(n_ops=100, repeats=1).name
    'intervals.arith'
    """

    def setup() -> Callable[[], None]:
        rng = _Lcg(seed=3)
        pairs: List[Tuple[Interval, Interval]] = []
        for _ in range(n_ops):
            a_start = rng.below(10_000)
            b_start = rng.below(10_000)
            pairs.append(
                (
                    Interval(a_start, a_start + 1 + rng.below(2_000)),
                    Interval(b_start, b_start + 1 + rng.below(2_000)),
                )
            )

        def run() -> None:
            for left, right in pairs:
                left.intersection(right)
                left.subtract(right)
                left.take_left(right.length)

        return run

    wall = _best_of(setup, repeats)
    return BenchRecord(
        name="intervals.arith",
        wall_seconds=wall,
        work=3 * n_ops,
        unit="ops",
        repeats=repeats,
    )


def bench_intervalset_ops(n_ops: int = 50_000, repeats: int = KERNEL_REPEATS) -> BenchRecord:
    """IntervalSet union/remove/overlap churn at cache-like occupancy.

    >>> bench_intervalset_ops(n_ops=100, repeats=1).unit
    'ops'
    """

    def setup() -> Callable[[], None]:
        rng = _Lcg(seed=4)
        ops: List[Tuple[int, Interval]] = []
        for index in range(n_ops):
            start = rng.below(1_000_000)
            ops.append((index % 3, Interval(start, start + 1 + rng.below(5_000))))

        def run() -> None:
            accumulator = IntervalSet()
            for kind, interval in ops:
                if kind == 0:
                    accumulator.add(interval)
                elif kind == 1:
                    accumulator.overlap_measure(interval)
                else:
                    accumulator.remove(interval)

        return run

    wall = _best_of(setup, repeats)
    return BenchRecord(
        name="intervals.set_ops",
        wall_seconds=wall,
        work=n_ops,
        unit="ops",
        repeats=repeats,
    )


def bench_exec_fingerprint(
    n_specs: int = 2_000, repeats: int = KERNEL_REPEATS
) -> BenchRecord:
    """Content-addressed fingerprinting throughput of the execution layer
    (one fingerprint per sweep point on every cache lookup).

    >>> bench_exec_fingerprint(n_specs=10, repeats=1).name
    'exec.fingerprint'
    """

    def setup() -> Callable[[], None]:
        rng = _Lcg(seed=6)
        specs = [
            RunSpec.make(
                quick_config(
                    seed=rng.below(1_000),
                    arrival_rate_per_hour=0.5 + 0.25 * rng.below(10),
                ),
                "farm",
            )
            for _ in range(n_specs)
        ]

        def run() -> None:
            for spec in specs:
                spec_fingerprint(spec, schema_version=SCHEMA_VERSION)

        return run

    wall = _best_of(setup, repeats)
    return BenchRecord(
        name="exec.fingerprint",
        wall_seconds=wall,
        work=n_specs,
        unit="specs",
        repeats=repeats,
    )


def bench_cache_lru(n_ops: int = 30_000, repeats: int = KERNEL_REPEATS) -> BenchRecord:
    """LRU segment-cache insert/touch/query churn with steady eviction
    pressure (the cache holds ~10% of the touched data space).

    >>> bench_cache_lru(n_ops=100, repeats=1).name
    'cache.lru_ops'
    """

    def setup() -> Callable[[], None]:
        rng = _Lcg(seed=5)
        ops: List[Tuple[int, Interval]] = []
        for index in range(n_ops):
            start = rng.below(1_000_000)
            ops.append((index % 3, Interval(start, start + 1 + rng.below(3_000))))

        def run() -> None:
            cache = LRUSegmentCache(capacity_events=100_000)
            clock = 0.0
            for kind, interval in ops:
                clock += 1.0
                if kind == 0:
                    cache.insert(interval, now=clock)
                elif kind == 1:
                    cache.touch(interval, now=clock)
                else:
                    cache.cached_prefix(interval)

        return run

    wall = _best_of(setup, repeats)
    return BenchRecord(
        name="cache.lru_ops",
        wall_seconds=wall,
        work=n_ops,
        unit="ops",
        repeats=repeats,
    )


def bench_sched_bidding(
    n_rounds: int = 200, repeats: int = KERNEL_REPEATS
) -> BenchRecord:
    """Decentralized-scheduler kernel: rule expansion into tasks, bid
    scoring of every (node, task) pair against per-node caches, and one
    arbitration round — the per-round work of ``repro.sched.decentral``.

    >>> bench_sched_bidding(n_rounds=2, repeats=1).unit
    'bids'
    """
    from ..core.rng import RandomStreams
    from ..sched.decentral import Bid, arbitrate, plan_tasks, score_candidate

    n_nodes = 16
    n_tasks_per_round = 32
    cost_model = quick_config().cost_model()

    def setup() -> Callable[[], None]:
        rng = _Lcg(seed=7)
        caches: List[LRUSegmentCache] = []
        for _ in range(n_nodes):
            cache = LRUSegmentCache(capacity_events=50_000)
            clock = 0.0
            for _ in range(40):
                clock += 1.0
                start = rng.below(1_000_000)
                cache.insert(Interval(start, start + 1 + rng.below(4_000)), now=clock)
            caches.append(cache)
        segments = []
        for _ in range(n_rounds):
            start = rng.below(1_000_000)
            segments.append(Interval(start, start + n_tasks_per_round * 200))
        # A bench-owned stream: reusing the scheduler's "sched.arbiter"
        # name here would alias its draws (simlint SIM101).
        arbiter_rng = RandomStreams(0).get("perf.bidding")

        def run() -> None:
            for segment in segments:
                tasks = plan_tasks(segment, 200, 10)
                bids = [
                    Bid(
                        node_id=node_id,
                        task_index=index,
                        score=score_candidate(
                            caches[node_id],
                            cost_model,
                            task,
                            age_seconds=3600.0,
                            locality_weight=1.0,
                            aging_tau=21600.0,
                            queue_depth=node_id % 4,
                        ),
                    )
                    for node_id in range(n_nodes)
                    for index, task in enumerate(tasks)
                ]
                arbitrate(bids, grant_batch=4, rng=arbiter_rng)

        return run

    wall = _best_of(setup, repeats)
    return BenchRecord(
        name="sched.bidding",
        wall_seconds=wall,
        work=n_rounds * n_nodes * n_tasks_per_round,
        unit="bids",
        repeats=repeats,
    )


def bench_net_channel(
    n_messages: int = 20_000, repeats: int = KERNEL_REPEATS
) -> BenchRecord:
    """Unreliable-control-plane kernel: reliable sends through a lossy
    :class:`~repro.faults.net.ControlChannel` — loss/dup/delay draws,
    ack+retransmit state machine, receiver dedup — driven to quiescence
    on a bare engine.

    >>> bench_net_channel(n_messages=50, repeats=1).unit
    'msgs'
    """
    from ..core.engine import Engine
    from ..core.rng import RandomStreams
    from ..faults.net import ControlChannel
    from ..sim.config import NetFaultConfig

    config = NetFaultConfig(
        loss=0.2, duplicate=0.05, delay_mean=0.01, reorder=0.05,
        ack_timeout=0.5,
    )

    def setup() -> Callable[[], None]:
        def run() -> None:
            engine = Engine()
            channel = ControlChannel(engine, config, RandomStreams(0))
            deliver = _noop
            for _ in range(n_messages):
                channel.send_reliable(deliver, kind="bench")
            engine.run(until=1e9)
            assert channel.in_flight == 0, "channel failed to quiesce"

        return run

    wall = _best_of(setup, repeats)
    return BenchRecord(
        name="sched.netchannel",
        wall_seconds=wall,
        work=n_messages,
        unit="msgs",
        repeats=repeats,
    )


def _noop() -> None:
    """Delivery sink for :func:`bench_net_channel`."""


def bench_topo_route(
    n_lookups: int = 100_000, repeats: int = KERNEL_REPEATS
) -> BenchRecord:
    """Topology routing kernel: LCA distances, leaf-to-root path walks,
    contended-link pricing (acquire / plan / release churn) and
    tier-cache prefix probes on the ``depth3`` preset — the per-chunk
    work :class:`~repro.topo.planner.TieredPlanner` adds to a tiered run.

    >>> bench_topo_route(n_lookups=50, repeats=1).unit
    'lookups'
    """
    from ..topo.spec import topology_preset
    from ..topo.tree import Topology

    n_nodes = 64

    def setup() -> Callable[[], None]:
        topo = Topology(
            topology_preset("depth3", "lru-rack"),
            n_nodes=n_nodes,
            event_bytes=1000,
        )
        rng = _Lcg(seed=11)
        pairs = [
            (rng.below(n_nodes), rng.below(n_nodes)) for _ in range(n_lookups)
        ]
        extents = [
            Interval(start, start + 200)
            for start in (rng.below(1_000_000) for _ in range(512))
        ]
        for index, extent in enumerate(extents[::4]):
            topo.tiers["site0.rack0"].cache.admit(extent, now=float(index))

        def run() -> None:
            clock = 0.0
            for index, (a, b) in enumerate(pairs):
                clock += 1.0
                topo.distance(a, b)
                path = topo.path_of(a)
                for tier in path[:-1]:
                    tier.planned_link_time(clock)
                    tier.acquire()
                cache = path[0].cache
                if cache is not None:
                    cache.cached_prefix(extents[index & 511])
                for tier in path[:-1]:
                    tier.release()

        return run

    wall = _best_of(setup, repeats)
    return BenchRecord(
        name="topo.route",
        wall_seconds=wall,
        work=n_lookups,
        unit="lookups",
        repeats=repeats,
    )


def _synthetic_flow_module(index: int) -> str:
    """One synthetic module exercising every flow-lint fact collector."""
    return (
        f'"""module {index}"""\n'
        "from repro.obs.hooks import kinds\n"
        "\n"
        f'_KEYS_{index} = ("alpha", "beta", "gamma")\n'
        "\n"
        "\n"
        f"def writer_{index}(streams, bus, now):\n"
        f'    rng = streams.get("component{index}.draws")\n'
        f'    child = streams.spawn(f"component{index}.rep{{now}}")\n'
        "    if bus.enabled:\n"
        "        bus.emit(now, kinds.JOB_ARRIVAL, 'node', node=1)\n"
        "    return {\n"
        '        "schema_version": 1,\n'
        '        "alpha": rng.integers(10),\n'
        '        "beta": now,\n'
        "    }\n"
        "\n"
        "\n"
        f"def reader_{index}(payload):\n"
        f"    wanted = _KEYS_{index}\n"
        '    value = payload["alpha"]\n'
        '    other = payload.get("beta", 0.0)\n'
        "    return value, other, wanted\n"
    )


def bench_lint_flow(
    n_modules: int = 150, repeats: int = KERNEL_REPEATS
) -> BenchRecord:
    """Whole-program flow analysis over a synthetic project.

    Guards the graph build + SIM101-SIM105 passes (``repro lint --flow``)
    against complexity regressions — the analysis must stay cheap enough
    to run on every CI push.

    >>> bench_lint_flow(n_modules=4, repeats=1).work
    4
    """
    from ..lint.flow import flow_lint_source

    def setup() -> Callable[[], None]:
        sources = {
            f"src/repro/fake{i % 7}/module_{i}.py": _synthetic_flow_module(i)
            for i in range(n_modules)
        }

        def run() -> None:
            flow_lint_source(sources)

        return run

    wall = _best_of(setup, repeats)
    return BenchRecord(
        name="lint.flow",
        wall_seconds=wall,
        work=n_modules,
        unit="modules",
        repeats=repeats,
    )


# -- policy macro-benchmarks ---------------------------------------------------


def fig5_config() -> SimulationConfig:
    """The committed-baseline macro workload: the paper's figure-5 grid
    point at 1.6 jobs/hour over five simulated days (the same run the
    seed-metrics goldens pin bit-exactly)."""
    return paper_config(duration=5 * units.DAY, arrival_rate_per_hour=1.6)


def tier_config(depth: int) -> SimulationConfig:
    """The tiered macro workload at a given topology depth.

    Depth 1 is the flat preset (trivially skipped data path), so the
    ``sim.tier.d1`` / ``d2`` / ``d3`` records price exactly the overhead
    the :class:`~repro.topo.planner.TieredPlanner` adds per level.
    """
    from ..topo.spec import topology_preset

    preset = {1: "flat", 2: "depth2", 3: "depth3"}[depth]
    return quick_config(
        n_nodes=8,
        duration=4 * units.DAY,
        arrival_rate_per_hour=4.0,
        seed=7,
        topology=topology_preset(preset, "lru-rack"),
    )


def bench_simulation(
    name: str,
    config_factory: Callable[[], SimulationConfig],
    policy: str,
    repeats: int = POLICY_REPEATS,
) -> BenchRecord:
    """Time ``run_simulation`` end-to-end; work is data events processed.

    >>> from ..sim.config import quick_config
    >>> from ..core import units
    >>> record = bench_simulation(
    ...     "sim.tiny", lambda: quick_config(duration=units.DAY), "farm",
    ...     repeats=1)
    >>> record.unit
    'data events'
    >>> record.work > 0
    True
    """
    work = 0
    # The macro benches route through the execution layer like every
    # other sweep; a serial, cache-free executor so the measured wall
    # time is the simulation itself, not pool forking or pickle I/O.
    executor = Executor(jobs=1)

    def setup() -> Callable[[], None]:
        spec = RunSpec.make(config_factory(), policy)

        def run() -> None:
            nonlocal work
            outcome = executor.run([spec])
            result = outcome.results[0]
            if isinstance(result, SpecError):  # pragma: no cover - bench guard
                raise RuntimeError(f"benchmark spec failed: {result.brief()}")
            work = sum(result.events_by_source.values())

        return run

    wall = _best_of(setup, repeats)
    return BenchRecord(
        name=name,
        wall_seconds=wall,
        work=work,
        unit="data events",
        repeats=repeats,
    )


# -- report assembly -----------------------------------------------------------


def _maybe_profile(
    build: Callable[[], BenchRecord], profile: bool
) -> BenchRecord:
    """Run ``build`` (optionally under cProfile), attaching hotspots.

    The profiled pass is separate from the timed pass — cProfile's
    tracing overhead would otherwise poison the wall times.
    """
    record = build()
    if not profile:
        return record
    _, hotspots = profile_call(lambda: build())
    return BenchRecord(
        name=record.name,
        wall_seconds=record.wall_seconds,
        work=record.work,
        unit=record.unit,
        repeats=record.repeats,
        hotspots=tuple(hotspots),
    )


def run_kernel_bench(
    quick: bool = False, profile: bool = False
) -> BenchReport:
    """All kernel micro-benchmarks as one ``kernel`` report."""
    scale = 10 if quick else 1
    repeats = 2 if quick else KERNEL_REPEATS
    builders: Sequence[Callable[[], BenchRecord]] = (
        lambda: bench_engine_dispatch(200_000 // scale, repeats),
        lambda: bench_engine_cancel_churn(200_000 // scale, repeats),
        lambda: bench_interval_ops(100_000 // scale, repeats),
        lambda: bench_intervalset_ops(50_000 // scale, repeats),
        lambda: bench_cache_lru(30_000 // scale, repeats),
        lambda: bench_exec_fingerprint(2_000 // scale, repeats),
        lambda: bench_sched_bidding(200 // scale, repeats),
        lambda: bench_net_channel(20_000 // scale, repeats),
        lambda: bench_lint_flow(150 // scale, repeats),
        lambda: bench_topo_route(100_000 // scale, repeats),
    )
    records = tuple(_maybe_profile(build, profile) for build in builders)
    return BenchReport(kind="kernel", records=records)


def run_policy_bench(
    quick: bool = False,
    profile: bool = False,
    policies: Optional[Sequence[str]] = None,
) -> BenchReport:
    """End-to-end simulation benchmarks as one ``policies`` report.

    Quick mode times every policy on the reduced configuration only; the
    full run adds the figure-5 out-of-order workload (the committed
    baseline's headline events/second record).
    """
    repeats = 1 if quick else POLICY_REPEATS
    names = list(policies) if policies is not None else list(available_policies())
    builders: List[Callable[[], BenchRecord]] = [
        (
            lambda policy=policy: bench_simulation(
                f"sim.quick.{policy}", quick_config, policy, repeats
            )
        )
        for policy in names
    ]
    if policies is None:
        builders.extend(
            lambda depth=depth: bench_simulation(
                f"sim.tier.d{depth}",
                lambda: tier_config(depth),
                "out-of-order",
                repeats,
            )
            for depth in (1, 2, 3)
        )
    if not quick:
        builders.append(
            lambda: bench_simulation(
                "sim.fig5.out-of-order", fig5_config, "out-of-order", POLICY_REPEATS
            )
        )
    records = tuple(_maybe_profile(build, profile) for build in builders)
    return BenchReport(kind="policies", records=records)
