"""Benchmark-regression harness (``repro bench``).

Public surface:

* :func:`run_kernel_bench` / :func:`run_policy_bench` /
  :func:`run_scale_bench` — produce :class:`BenchReport` s for the
  simulator's hot paths, the end-to-end policy runs and the
  10/100/1000-node scale tier (see docs/SCALING.md);
* :class:`BenchReport` / :class:`BenchRecord` — the stable
  ``BENCH_*.json`` schema (wall time, work, throughput, git SHA, peak
  RSS; scale-tier records carry per-run ``rss_kb``);
* :func:`compare_reports` / :func:`load_baseline` — committed-baseline
  regression checking with configurable slowdown and peak-RSS
  thresholds;
* :func:`profile_call` — cProfile top-N hotspot extraction
  (``repro bench --profile``).

See docs/PERFORMANCE.md for how these pieces fit together.
"""

from .baseline import (
    DEFAULT_RSS_THRESHOLD,
    DEFAULT_THRESHOLD,
    ComparisonResult,
    RecordComparison,
    compare_reports,
    load_baseline,
)
from .bench import (
    bench_cache_lru,
    bench_engine_cancel_churn,
    bench_engine_dispatch,
    bench_interval_ops,
    bench_intervalset_ops,
    bench_net_channel,
    bench_simulation,
    fig5_config,
    run_kernel_bench,
    run_policy_bench,
)
from .profiling import profile_call
from .scale import (
    QUICK_SCALE_SIZES,
    SCALE_SIZES,
    bench_scale_point,
    run_scale_bench,
    scale_config,
)
from .report import (
    SCHEMA_VERSION,
    BenchRecord,
    BenchReport,
    Hotspot,
    render_report,
    report_filename,
)

__all__ = [
    "SCHEMA_VERSION",
    "DEFAULT_RSS_THRESHOLD",
    "DEFAULT_THRESHOLD",
    "QUICK_SCALE_SIZES",
    "SCALE_SIZES",
    "BenchRecord",
    "BenchReport",
    "Hotspot",
    "ComparisonResult",
    "RecordComparison",
    "bench_cache_lru",
    "bench_engine_cancel_churn",
    "bench_engine_dispatch",
    "bench_interval_ops",
    "bench_intervalset_ops",
    "bench_net_channel",
    "bench_scale_point",
    "bench_simulation",
    "compare_reports",
    "fig5_config",
    "load_baseline",
    "profile_call",
    "render_report",
    "report_filename",
    "run_kernel_bench",
    "run_policy_bench",
    "run_scale_bench",
    "scale_config",
]
