"""Benchmark-regression harness (``repro bench``).

Public surface:

* :func:`run_kernel_bench` / :func:`run_policy_bench` — produce
  :class:`BenchReport` s for the simulator's hot paths and the end-to-end
  policy runs;
* :class:`BenchReport` / :class:`BenchRecord` — the stable
  ``BENCH_*.json`` schema (wall time, work, throughput, git SHA, peak
  RSS);
* :func:`compare_reports` / :func:`load_baseline` — committed-baseline
  regression checking with a configurable slowdown threshold;
* :func:`profile_call` — cProfile top-N hotspot extraction
  (``repro bench --profile``).

See docs/PERFORMANCE.md for how these pieces fit together.
"""

from .baseline import (
    DEFAULT_THRESHOLD,
    ComparisonResult,
    RecordComparison,
    compare_reports,
    load_baseline,
)
from .bench import (
    bench_cache_lru,
    bench_engine_cancel_churn,
    bench_engine_dispatch,
    bench_interval_ops,
    bench_intervalset_ops,
    bench_net_channel,
    bench_simulation,
    fig5_config,
    run_kernel_bench,
    run_policy_bench,
)
from .profiling import profile_call
from .report import (
    SCHEMA_VERSION,
    BenchRecord,
    BenchReport,
    Hotspot,
    render_report,
    report_filename,
)

__all__ = [
    "SCHEMA_VERSION",
    "DEFAULT_THRESHOLD",
    "BenchRecord",
    "BenchReport",
    "Hotspot",
    "ComparisonResult",
    "RecordComparison",
    "bench_cache_lru",
    "bench_engine_cancel_churn",
    "bench_engine_dispatch",
    "bench_interval_ops",
    "bench_intervalset_ops",
    "bench_net_channel",
    "bench_simulation",
    "compare_reports",
    "fig5_config",
    "load_baseline",
    "profile_call",
    "render_report",
    "report_filename",
    "run_kernel_bench",
    "run_policy_bench",
]
