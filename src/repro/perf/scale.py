"""Scale-tier benchmarks: the simulator at 10, 100 and 1000 nodes.

The ``kernel`` and ``policies`` reports guard the hot paths at the
paper's cluster size (tens of nodes).  This tier guards the *scale-out*
story instead: one end-to-end ``run_simulation`` per cluster size, each
reporting wall time, data-event throughput **and peak RSS**, so CI
catches both a slowdown and a memory-bound regression (e.g. a per-job
list sneaking back into the metrics path).

Design notes, documented in docs/SCALING.md:

* **Policy is ``farm``.**  The out-of-order policy scans every node per
  scheduling decision — O(nodes) per job, which is the right trade at
  the paper's 10-node scale but makes a 1000-node run ~50x slower than
  farm without changing what this tier measures (engine + metrics +
  workload generation scaling).
* **Each point runs in a fresh spawned child process.**  Linux
  ``ru_maxrss`` is monotone over a process lifetime, so measuring two
  cluster sizes in one process would report the larger size's peak for
  both.  A ``spawn`` (not ``fork``) child starts from a clean RSS
  baseline; the parent never pays the simulation's memory.
* **Throughput counts engine events**, not data events: the quantity
  that scales with cluster size and job count, and the denominator the
  streaming-metrics work is amortised over.

>>> record = bench_scale_point(4, duration_days=0.05, in_process=True)
>>> record.name
'sim.scale.n4'
>>> record.unit
'events'
>>> record.rss_kb is not None and record.rss_kb > 0
True
"""

from __future__ import annotations

import multiprocessing
from typing import Any, Dict, Optional, Sequence, Tuple

from ..core import units
from ..sim.config import SimulationConfig, quick_config
from ..sim.simulator import run_simulation
from .report import BenchRecord, BenchReport, peak_rss_kb

#: Cluster sizes of the full scale tier (``repro bench --kind scale``).
SCALE_SIZES: Tuple[int, ...] = (10, 100, 1000)

#: Subset run in ``--quick`` mode (CI smoke: seconds, not half a minute).
QUICK_SCALE_SIZES: Tuple[int, ...] = (10, 100)

#: Simulated days per cluster size.  Large clusters drain proportionally
#: more jobs per simulated hour, so the horizon shrinks as the size
#: grows to keep each point's wall time comparable.
SCALE_DURATION_DAYS: Dict[int, float] = {10: 2.0, 100: 2.0, 1000: 0.5}

#: Scheduling policy of the scale tier (see the module docstring).
SCALE_POLICY = "farm"

#: Offered load per node per hour.  2.5 jobs/node/hour on the quick
#: cost model puts utilization near (but below) saturation, so the
#: calendar and metrics paths are exercised under realistic pressure.
SCALE_JOBS_PER_NODE_HOUR = 2.5


def scale_config(
    n_nodes: int, duration_days: Optional[float] = None
) -> SimulationConfig:
    """The scale-tier configuration for one cluster size.

    The quick cost model with the arrival rate scaled linearly in the
    node count, finer chunking (more engine events per job), and a
    dedicated seed so the tier's workloads are not correlated with any
    test fixture.
    """
    if duration_days is None:
        duration_days = SCALE_DURATION_DAYS.get(n_nodes, 1.0)
    return quick_config(
        n_nodes=n_nodes,
        arrival_rate_per_hour=SCALE_JOBS_PER_NODE_HOUR * n_nodes,
        chunk_events=100,
        mean_job_events=2_000.0,
        duration=duration_days * units.DAY,
        seed=7,
    )


def _scale_payload(n_nodes: int, duration_days: Optional[float]) -> Dict[str, Any]:
    """Run one scale point and summarise it (runs inside the child)."""
    result = run_simulation(scale_config(n_nodes, duration_days), SCALE_POLICY)
    return {
        "wall_seconds": result.wall_seconds,
        "engine_events": result.engine_events,
        "jobs_completed": result.jobs_completed,
        "records_dropped": result.records_dropped,
        "exact": result.measured.exact,
        "rss_kb": peak_rss_kb(),
    }


def _scale_child(
    conn: "multiprocessing.connection.Connection",
    n_nodes: int,
    duration_days: Optional[float],
) -> None:  # pragma: no cover - exercised via spawn in bench_scale_point
    try:
        conn.send(_scale_payload(n_nodes, duration_days))
    finally:
        conn.close()


def _run_in_child(n_nodes: int, duration_days: Optional[float]) -> Dict[str, Any]:
    """One scale point in a fresh ``spawn`` child (clean ``ru_maxrss``)."""
    context = multiprocessing.get_context("spawn")
    parent_conn, child_conn = context.Pipe(duplex=False)
    process = context.Process(
        target=_scale_child, args=(child_conn, n_nodes, duration_days)
    )
    process.start()
    child_conn.close()
    try:
        payload: Dict[str, Any] = parent_conn.recv()
    except EOFError:
        process.join()
        raise RuntimeError(
            f"scale benchmark child (n_nodes={n_nodes}) died with exit code "
            f"{process.exitcode}"
        ) from None
    finally:
        parent_conn.close()
    process.join()
    return payload


def bench_scale_point(
    n_nodes: int,
    repeats: int = 1,
    duration_days: Optional[float] = None,
    in_process: bool = False,
) -> BenchRecord:
    """Benchmark one cluster size end-to-end; work is engine events.

    Each repeat runs in a fresh spawned child process so ``rss_kb`` is
    that run's true peak (best wall time, maximum RSS over repeats).
    ``in_process=True`` skips the child — cheaper for tests and
    doctests, but then ``rss_kb`` inherits this process's monotone peak.
    """
    best_wall: Optional[float] = None
    work = 0
    rss_kb = 0
    for _ in range(max(1, repeats)):
        if in_process:
            payload = _scale_payload(n_nodes, duration_days)
        else:
            payload = _run_in_child(n_nodes, duration_days)
        wall = float(payload["wall_seconds"])
        if best_wall is None or wall < best_wall:
            best_wall = wall
            work = int(payload["engine_events"])
        rss_kb = max(rss_kb, int(payload["rss_kb"]))
    assert best_wall is not None
    return BenchRecord(
        name=f"sim.scale.n{n_nodes}",
        wall_seconds=best_wall,
        work=work,
        unit="events",
        repeats=repeats,
        rss_kb=rss_kb,
    )


def run_scale_bench(
    quick: bool = False,
    profile: bool = False,
    sizes: Optional[Sequence[int]] = None,
) -> BenchReport:
    """All scale points as one ``scale`` report.

    ``profile`` is accepted for CLI symmetry but ignored: the work runs
    in child processes, which cProfile in the parent cannot see.
    """
    del profile  # hotspots are not supported for out-of-process points
    if sizes is None:
        sizes = QUICK_SCALE_SIZES if quick else SCALE_SIZES
    records = tuple(bench_scale_point(n_nodes) for n_nodes in sizes)
    return BenchReport(kind="scale", records=records)
