"""Committed-baseline comparison: fail CI on throughput regressions.

The repository commits ``BENCH_kernel.json`` / ``BENCH_policies.json`` /
``BENCH_scale.json`` at its root.  A fresh benchmark run is compared
record-by-record (matched by name) against those files: a record
**regresses** when

    baseline_throughput / current_throughput > threshold

i.e. the threshold is the tolerated slowdown factor.  Records carrying a
peak-RSS measurement (``rss_kb``, the scale tier) are additionally gated
on memory: ``current_rss / baseline_rss > rss_threshold`` regresses too.
Records present on only one side are reported but never fail the
comparison — quick CI runs deliberately execute a subset of the
committed full baseline.

>>> from .report import BenchRecord, BenchReport
>>> base = BenchReport(kind="kernel", records=(
...     BenchRecord("a", wall_seconds=1.0, work=100, unit="ops", repeats=1),))
>>> fast = BenchReport(kind="kernel", records=(
...     BenchRecord("a", wall_seconds=0.5, work=100, unit="ops", repeats=1),))
>>> slow = BenchReport(kind="kernel", records=(
...     BenchRecord("a", wall_seconds=9.0, work=100, unit="ops", repeats=1),))
>>> compare_reports(fast, base, threshold=2.0).regressed
False
>>> compare_reports(slow, base, threshold=2.0).regressed
True
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional, Tuple

from .report import BenchReport, report_filename

#: Default tolerated slowdown factor: generous enough for machine-to-
#: machine variance (CI runners vs developer laptops), tight enough to
#: catch a hot path going accidentally quadratic.  See
#: docs/PERFORMANCE.md for the policy behind this number.
DEFAULT_THRESHOLD = 2.0

#: Default tolerated peak-RSS growth factor for records that carry
#: ``rss_kb`` (the scale tier).  Memory is far less noisy than wall time
#: across machines, but allocator and interpreter-version variance is
#: real; 2.0x still catches a per-job list sneaking back into the
#: metrics path (which grows RSS by an order of magnitude at 1M jobs).
DEFAULT_RSS_THRESHOLD = 2.0


@dataclass(frozen=True)
class RecordComparison:
    """One record's current vs baseline throughput."""

    name: str
    baseline_throughput: float
    current_throughput: float
    threshold: float
    #: Peak-RSS ceiling check — engaged only when *both* sides measured
    #: ``rss_kb`` (the scale tier); ``None`` on either side disables it.
    baseline_rss_kb: Optional[int] = None
    current_rss_kb: Optional[int] = None
    rss_threshold: float = DEFAULT_RSS_THRESHOLD

    @property
    def slowdown(self) -> float:
        """Baseline over current (> 1 means the code got slower)."""
        if self.current_throughput <= 0:
            return float("inf")
        return self.baseline_throughput / self.current_throughput

    @property
    def rss_growth(self) -> Optional[float]:
        """Current over baseline peak RSS, or ``None`` when unmeasured."""
        if self.baseline_rss_kb is None or self.current_rss_kb is None:
            return None
        if self.baseline_rss_kb <= 0:
            return float("inf") if self.current_rss_kb > 0 else 1.0
        return self.current_rss_kb / self.baseline_rss_kb

    @property
    def rss_regressed(self) -> bool:
        growth = self.rss_growth
        return growth is not None and growth > self.rss_threshold

    @property
    def regressed(self) -> bool:
        return self.slowdown > self.threshold or self.rss_regressed

    def describe(self) -> str:
        verdict = "REGRESSED" if self.regressed else "ok"
        line = (
            f"{self.name:<28} baseline {self.baseline_throughput:>14,.0f}/s  "
            f"current {self.current_throughput:>14,.0f}/s  "
            f"slowdown {self.slowdown:5.2f}x"
        )
        growth = self.rss_growth
        if growth is not None:
            line += f"  rss {growth:5.2f}x"
        return line + f"  [{verdict}]"


@dataclass(frozen=True)
class ComparisonResult:
    """The full comparison of one report against its baseline."""

    kind: str
    threshold: float
    compared: Tuple[RecordComparison, ...]
    only_current: Tuple[str, ...]
    only_baseline: Tuple[str, ...]

    @property
    def regressed(self) -> bool:
        return any(entry.regressed for entry in self.compared)

    def describe(self) -> str:
        lines: List[str] = [
            f"comparison vs committed baseline ({self.kind}, "
            f"threshold {self.threshold:.2f}x):"
        ]
        for entry in self.compared:
            lines.append("  " + entry.describe())
        if self.only_current:
            lines.append(
                "  (not in baseline: " + ", ".join(self.only_current) + ")"
            )
        if self.only_baseline:
            lines.append(
                "  (baseline-only, skipped: "
                + ", ".join(self.only_baseline)
                + ")"
            )
        return "\n".join(lines)


def compare_reports(
    current: BenchReport,
    baseline: BenchReport,
    threshold: float = DEFAULT_THRESHOLD,
    rss_threshold: float = DEFAULT_RSS_THRESHOLD,
) -> ComparisonResult:
    """Compare two reports record-by-record (matched by record name).

    Throughput is gated by ``threshold`` on every matched record; peak
    RSS is additionally gated by ``rss_threshold`` on records where both
    sides carry ``rss_kb`` (the scale tier).
    """
    baseline_names = {entry.name for entry in baseline.records}
    current_names = {entry.name for entry in current.records}
    compared = tuple(
        RecordComparison(
            name=entry.name,
            baseline_throughput=base.throughput,
            current_throughput=entry.throughput,
            threshold=threshold,
            baseline_rss_kb=base.rss_kb,
            current_rss_kb=entry.rss_kb,
            rss_threshold=rss_threshold,
        )
        for entry in current.records
        for base in (baseline.record(entry.name),)
        if base is not None
    )
    return ComparisonResult(
        kind=current.kind,
        threshold=threshold,
        compared=compared,
        only_current=tuple(sorted(current_names - baseline_names)),
        only_baseline=tuple(sorted(baseline_names - current_names)),
    )


def load_baseline(directory: str, kind: str) -> Optional[BenchReport]:
    """The committed baseline report of ``kind`` in ``directory``, or
    ``None`` when the file does not exist."""
    path = os.path.join(directory, report_filename(kind))
    if not os.path.exists(path):
        return None
    return BenchReport.read(path)
