"""cProfile wrapper: run a callable, keep the top-N hotspots.

Used by ``repro bench --profile`` to attach the hottest functions to each
benchmark record, so a regression in ``BENCH_*.json`` comes with the
profile that explains it.
"""

from __future__ import annotations

import cProfile
import pstats
from typing import Any, Callable, List, Tuple, TypeVar

from .report import Hotspot

T = TypeVar("T")

#: Hotspots kept per profiled benchmark.
DEFAULT_TOP_N = 10


def _format_function(key: Tuple[str, int, str]) -> str:
    """``path:lineno(name)`` with the path trimmed to the package part."""
    path, lineno, name = key
    if path.startswith("~") or not path:
        return name  # builtins: pstats files them under '~'
    for marker in ("/src/", "/lib/"):
        index = path.rfind(marker)
        if index != -1:
            path = path[index + len(marker):]
            break
    return f"{path}:{lineno}({name})"


def profile_call(
    func: Callable[[], T], top_n: int = DEFAULT_TOP_N
) -> Tuple[T, List[Hotspot]]:
    """Run ``func()`` under cProfile; return its result and the ``top_n``
    functions by internal (self) time."""
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = func()
    finally:
        profiler.disable()
    stats = pstats.Stats(profiler)
    stats.sort_stats("tottime")
    hotspots: List[Hotspot] = []
    for key in stats.fcn_list[:top_n]:  # type: ignore[attr-defined]
        cc, nc, tt, ct, _callers = stats.stats[key]  # type: ignore[attr-defined]
        hotspots.append(
            Hotspot(
                function=_format_function(key),
                calls=int(nc),
                total_seconds=float(tt),
                cumulative_seconds=float(ct),
            )
        )
    return result, hotspots
