"""Dependency-free ASCII Gantt rendering of a recorded run.

One row per node, one character per time bucket, coloured (in the ASCII
sense) by where the node's data came from::

    t=0.0h                                                        t=240.0h
    node 0 |####TTTT####..####TT####=...####|  83% busy
    node 1 |TTTT####....####RR##............|  61% busy
            '#' cache   'T' tertiary   'R' remote   '=' busy   '.' idle

Buckets take the *dominant* source of the chunks that ran in them; spans
without chunk detail (e.g. a subjob that emitted no chunk in the bucket)
fall back to '='.  Intended for terminals, CI logs and doctests — no
external dependencies, pure string assembly.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .recorder import TraceRecorder

#: Bucket glyphs, in increasing precedence order per busy second.
GLYPHS = {"idle": ".", "busy": "=", "cache": "#", "tertiary": "T", "remote": "R"}

LEGEND = "'#' cache   'T' tertiary   'R' remote   '=' busy   '.' idle"


def _fmt_hours(seconds: float) -> str:
    return f"t={seconds / 3600.0:.1f}h"


def render_timeline(
    recorder: TraceRecorder,
    width: int = 80,
    start: Optional[float] = None,
    end: Optional[float] = None,
    legend: bool = True,
) -> str:
    """Render the run as an ASCII Gantt chart.

    ``start``/``end`` crop the window (defaults: the recorded extent).
    Returns a printable multi-line string; an empty recorder renders a
    placeholder rather than raising.
    """
    if width < 8:
        raise ValueError(f"width must be >= 8, got {width}")
    recorder.close()
    nodes = recorder.node_ids()
    if not nodes:
        return "(no node activity recorded)"
    t0 = 0.0 if start is None else start
    t1 = recorder.last_time if end is None else end
    if t1 <= t0:
        return "(empty time window)"
    bucket = (t1 - t0) / width

    # seconds of each source per (node, bucket)
    per_node: Dict[int, List[Dict[str, float]]] = {
        node: [dict() for _ in range(width)] for node in nodes
    }

    def deposit(node: int, s: float, e: float, source: str) -> None:
        s, e = max(s, t0), min(e, t1)
        if e <= s or node not in per_node:
            return
        first = int((s - t0) / bucket)
        last = min(int((e - t0) / bucket), width - 1)
        for index in range(first, last + 1):
            lo = t0 + index * bucket
            overlap = min(e, lo + bucket) - max(s, lo)
            if overlap > 0:
                cell = per_node[node][index]
                cell[source] = cell.get(source, 0.0) + overlap

    for span in recorder.spans:
        deposit(span.node, span.start, span.end, "busy")
    for chunk in recorder.chunk_slices:
        deposit(chunk.node, chunk.start, chunk.end, chunk.source)

    label_width = max(len(f"node {node}") for node in nodes)
    lines = [" " * (label_width + 2) + _ruler(width, t0, t1)]
    for node in nodes:
        row = []
        busy_seconds = 0.0
        for cell in per_node[node]:
            busy = cell.get("busy", 0.0)
            busy_seconds += busy
            # Chunk sources are more specific than the bare busy span;
            # pick the dominant one when any chunk ran in this bucket.
            sourced = {k: v for k, v in cell.items() if k != "busy"}
            if sourced:
                dominant = max(sourced, key=sourced.get)
                row.append(GLYPHS.get(dominant, "="))
            elif busy > 0.05 * bucket:
                row.append(GLYPHS["busy"])
            else:
                row.append(GLYPHS["idle"])
        utilization = busy_seconds / (t1 - t0)
        lines.append(
            f"{f'node {node}':>{label_width}} |{''.join(row)}| {utilization:4.0%} busy"
        )
    if legend:
        lines.append(" " * (label_width + 2) + LEGEND)
    return "\n".join(lines)


def _ruler(width: int, t0: float, t1: float) -> str:
    left, right = _fmt_hours(t0), _fmt_hours(t1)
    gap = width + 2 - len(left) - len(right)
    return left + " " * max(1, gap) + right
