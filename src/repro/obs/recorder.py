"""In-memory trace recorder: ring buffer, counters, spans and time-series.

:class:`TraceRecorder` is the standard :class:`~repro.obs.hooks.TraceSink`.
It keeps

* a bounded buffer of raw :class:`~repro.obs.hooks.TraceEvent` s (ring by
  default — the newest ``capacity`` events survive; ``keep="first"``
  retains the head of the run instead, which is what the CLI's
  ``--limit-events`` safety cap uses);
* running **counters** (cache hits/misses, tape traffic, steals,
  preemptions, jobs in system, ...);
* **counter time-series** sampled on event boundaries whenever simulated
  time has advanced by ``sample_interval`` since the last sample;
* per-node **busy spans** (one per subjob residency on a node) and
  chunk-level **slices** tagged with their data source — the inputs of the
  Chrome-trace and ASCII-timeline exporters.

Everything is derived purely from the event stream, so the recorder's
aggregates can be cross-checked against :class:`SimulationResult` (see
``tests/test_obs.py``).
"""

from __future__ import annotations

import csv
import math
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Set

from .hooks import TraceEvent, TraceSink, kinds


@dataclass(slots=True)
class Span:
    """One subjob residency on one node (start/resume → suspend/end)."""

    node: int
    job: int
    sid: str
    start: float
    end: float


@dataclass(slots=True)
class ChunkSlice:
    """One processed chunk: where its data came from and when it ran."""

    node: int
    source: str  # DataSource value: "cache" | "tertiary" | "remote"
    start: float
    end: float
    events: int


@dataclass(slots=True)
class CounterSample:
    """One row of the counter time-series."""

    time: float
    jobs_in_system: int
    busy_nodes: int
    cache_hit_events: int
    cache_miss_events: int
    tape_events: int
    tape_requests: int
    evicted_events: int
    steals: int
    hit_ratio: float

    FIELDS = (
        "time",
        "jobs_in_system",
        "busy_nodes",
        "cache_hit_events",
        "cache_miss_events",
        "tape_events",
        "tape_requests",
        "evicted_events",
        "steals",
        "hit_ratio",
    )

    def row(self) -> List[Any]:
        return [getattr(self, name) for name in CounterSample.FIELDS]


class TraceRecorder(TraceSink):
    """Accumulates a traced run in memory.

    ``capacity`` bounds the raw-event buffer (counters and samples keep
    accumulating past it).  ``keep`` selects which end of the run the
    buffer retains once full: ``"last"`` (ring buffer, default) or
    ``"first"`` (head of the run, then drop).

    ``max_spans`` / ``max_slices`` bound the derived span and chunk-slice
    lists the same way the ``keep="first"`` buffer is bounded: the head
    of the run is retained, later entries are counted in
    ``spans_dropped`` / ``slices_dropped`` instead of stored.  The
    defaults are far above anything a paper-scale trace produces; they
    exist so a million-job traced run degrades to truncated timelines
    instead of unbounded memory.  The counter time-series is already
    bounded by construction — O(duration / sample_interval), independent
    of job count — so it carries no cap.
    """

    #: Default ceilings for the derived per-subjob structures.
    DEFAULT_MAX_SPANS = 500_000
    DEFAULT_MAX_SLICES = 1_000_000

    def __init__(
        self,
        capacity: int = 200_000,
        sample_interval: float = 3600.0,
        keep: str = "last",
        max_spans: int = DEFAULT_MAX_SPANS,
        max_slices: int = DEFAULT_MAX_SLICES,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if sample_interval < 0:
            raise ValueError(f"sample_interval must be >= 0, got {sample_interval}")
        if keep not in ("first", "last"):
            raise ValueError(f"keep must be 'first' or 'last', got {keep!r}")
        if max_spans < 1:
            raise ValueError(f"max_spans must be >= 1, got {max_spans}")
        if max_slices < 1:
            raise ValueError(f"max_slices must be >= 1, got {max_slices}")
        self.capacity = capacity
        self.sample_interval = sample_interval
        self.keep = keep
        self.max_spans = max_spans
        self.max_slices = max_slices
        #: Ring mode, precomputed: ``on_event`` runs once per emitted
        #: event, so it tests a bool instead of re-comparing ``keep``.
        self._ring = keep == "last"
        self.events: Deque[TraceEvent] = deque(
            maxlen=capacity if keep == "last" else None
        )
        self.total_emitted = 0

        # -- counters ---------------------------------------------------------
        self.jobs_arrived = 0
        self.jobs_completed = 0
        self.jobs_scheduled = 0
        self.jobs_promoted = 0
        self.subjobs_started = 0
        self.subjobs_completed = 0
        self.subjob_splits = 0
        self.steals = 0
        self.preemptions = 0
        self.cache_hit_events = 0
        self.cache_miss_events = 0
        self.evicted_events = 0
        self.tape_events = 0
        self.tape_requests = 0
        self.remote_events = 0
        self.tier_hit_events = 0
        self.tier_miss_events = 0
        self.tier_evicted_events = 0
        self.tier_replicated_events = 0
        self.link_saturations = 0
        self.periods = 0
        self.meta_subjobs = 0
        self.engine_dispatches = 0
        self.rules_published = 0
        self.bid_rounds = 0
        self.grants = 0
        self.net_drops = 0
        self.net_delivered = 0
        self.net_duplicates = 0
        self.net_retransmits = 0
        self.net_timeouts = 0
        self.net_dead_letters = 0
        self.net_failovers = 0
        self.sim_start_time: Optional[float] = None
        self._busy: Set[int] = set()
        self.last_time = 0.0

        # -- derived structures -------------------------------------------------
        self.spans: List[Span] = []
        self.chunk_slices: List[ChunkSlice] = []
        self.spans_dropped = 0
        self.slices_dropped = 0
        self.samples: List[CounterSample] = []
        self._open_spans: Dict[int, Span] = {}
        self._last_sample = -math.inf
        self._closed = False

    # -- sink protocol -----------------------------------------------------------

    def on_event(self, event: TraceEvent) -> None:
        self.total_emitted += 1
        if self._ring or len(self.events) < self.capacity:
            self.events.append(event)
        self.last_time = event.time
        self._count(event)
        if event.time - self._last_sample >= self.sample_interval:
            self._sample(event.time)

    def close(self) -> None:
        """Close any still-open spans and take a final sample."""
        if self._closed:
            return
        self._closed = True
        for span in self._open_spans.values():
            span.end = self.last_time
            self._append_span(span)
        self._open_spans.clear()
        self._sample(self.last_time)

    # -- counting -----------------------------------------------------------------

    def _count(self, event: TraceEvent) -> None:
        kind = event.kind
        if kind == kinds.CHUNK_DONE:
            if len(self.chunk_slices) >= self.max_slices:
                self.slices_dropped += 1
            else:
                duration = event.data.get("duration", 0.0)
                self.chunk_slices.append(
                    ChunkSlice(
                        node=event.node,
                        source=event.data.get("src", "?"),
                        start=event.time - duration,
                        end=event.time,
                        events=event.data.get("events", 0),
                    )
                )
        elif kind == kinds.CACHE_HIT:
            self.cache_hit_events += event.data.get("events", 0)
        elif kind == kinds.CACHE_MISS:
            self.cache_miss_events += event.data.get("events", 0)
        elif kind == kinds.CACHE_EVICT:
            self.evicted_events += event.data.get("events", 0)
        elif kind == kinds.TAPE_READ:
            self.tape_events += event.data.get("events", 0)
            self.tape_requests += 1
        elif kind == kinds.REMOTE_READ:
            self.remote_events += event.data.get("events", 0)
        elif kind == kinds.TIER_HIT:
            self.tier_hit_events += event.data.get("events", 0)
        elif kind == kinds.TIER_MISS:
            self.tier_miss_events += event.data.get("events", 0)
        elif kind == kinds.TIER_EVICT:
            self.tier_evicted_events += event.data.get("events", 0)
        elif kind == kinds.TIER_REPLICATE:
            self.tier_replicated_events += event.data.get("events", 0)
        elif kind == kinds.LINK_SATURATED:
            self.link_saturations += 1
        elif kind in (kinds.SUBJOB_START, kinds.SUBJOB_RESUME):
            if kind == kinds.SUBJOB_START:
                self.subjobs_started += 1
            self._open_span(event)
        elif kind in (kinds.SUBJOB_SUSPEND, kinds.SUBJOB_END):
            if kind == kinds.SUBJOB_END:
                self.subjobs_completed += 1
            self._close_span(event)
        elif kind == kinds.NODE_BUSY:
            self._busy.add(event.node)
        elif kind == kinds.NODE_IDLE:
            self._busy.discard(event.node)
        elif kind == kinds.JOB_ARRIVAL:
            self.jobs_arrived += 1
        elif kind == kinds.JOB_END:
            self.jobs_completed += 1
        elif kind == kinds.JOB_SCHEDULE:
            self.jobs_scheduled += 1
        elif kind == kinds.JOB_PROMOTE:
            self.jobs_promoted += 1
        elif kind == kinds.SUBJOB_SPLIT:
            self.subjob_splits += 1
        elif kind == kinds.SUBJOB_STEAL:
            self.steals += 1
        elif kind == kinds.SUBJOB_PREEMPT:
            self.preemptions += 1
        elif kind == kinds.SCHED_PERIOD:
            self.periods += 1
        elif kind == kinds.SCHED_META:
            self.meta_subjobs += 1
        elif kind == kinds.ENGINE_DISPATCH:
            self.engine_dispatches += 1
        elif kind == kinds.RULE_PUBLISH:
            self.rules_published += 1
        elif kind == kinds.BID_ROUND:
            self.bid_rounds += 1
        elif kind == kinds.TASK_GRANT:
            self.grants += 1
        elif kind == kinds.NET_DROP:
            self.net_drops += 1
        elif kind == kinds.NET_DELIVER:
            self.net_delivered += 1
        elif kind == kinds.NET_DUP:
            self.net_duplicates += 1
        elif kind == kinds.NET_RETRANSMIT:
            self.net_retransmits += 1
        elif kind == kinds.NET_TIMEOUT:
            self.net_timeouts += 1
        elif kind == kinds.NET_DEAD_LETTER:
            self.net_dead_letters += 1
        elif kind == kinds.NET_FAILOVER:
            self.net_failovers += 1
        elif kind == kinds.SIM_START:
            self.sim_start_time = event.time
        elif kind == kinds.SIM_END:
            self.close()

    def _append_span(self, span: Span) -> None:
        """Record a finished span, or count it once the cap is hit."""
        if len(self.spans) >= self.max_spans:
            self.spans_dropped += 1
        else:
            self.spans.append(span)

    def _open_span(self, event: TraceEvent) -> None:
        # A start on a node whose previous span never closed (should not
        # happen) is closed defensively rather than leaked.
        stale = self._open_spans.pop(event.node, None)
        if stale is not None:
            stale.end = event.time
            self._append_span(stale)
        self._open_spans[event.node] = Span(
            node=event.node, job=event.job, sid=event.sid, start=event.time, end=event.time
        )

    def _close_span(self, event: TraceEvent) -> None:
        span = self._open_spans.pop(event.node, None)
        if span is not None:
            span.end = event.time
            self._append_span(span)

    # -- sampling --------------------------------------------------------------------

    def _sample(self, time: float) -> None:
        self._last_sample = time
        self.samples.append(
            CounterSample(
                time=time,
                jobs_in_system=self.jobs_arrived - self.jobs_completed,
                busy_nodes=len(self._busy),
                cache_hit_events=self.cache_hit_events,
                cache_miss_events=self.cache_miss_events,
                tape_events=self.tape_events,
                tape_requests=self.tape_requests,
                evicted_events=self.evicted_events,
                steals=self.steals,
                hit_ratio=self.hit_ratio,
            )
        )

    # -- queries ------------------------------------------------------------------------

    @property
    def dropped_events(self) -> int:
        """Events emitted but no longer in the raw buffer."""
        return self.total_emitted - len(self.events)

    @property
    def hit_ratio(self) -> float:
        """Cache hits / (hits + misses), NaN before any data access."""
        total = self.cache_hit_events + self.cache_miss_events
        return math.nan if total == 0 else self.cache_hit_events / total

    def node_ids(self) -> List[int]:
        """Every node id that appears in spans or chunk slices, sorted."""
        ids = {span.node for span in self.spans}
        ids.update(s.node for s in self.chunk_slices)
        ids.update(s.node for s in self._open_spans.values())
        ids.discard(-1)
        return sorted(ids)

    def events_of_kind(self, *wanted: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind in wanted]

    def summary(self) -> Dict[str, Any]:
        """Aggregate counters as a plain dict (for reports and tests)."""
        return {
            "events_recorded": len(self.events),
            "events_emitted": self.total_emitted,
            "events_dropped": self.dropped_events,
            "spans_recorded": len(self.spans),
            "spans_dropped": self.spans_dropped,
            "slices_recorded": len(self.chunk_slices),
            "slices_dropped": self.slices_dropped,
            "jobs_arrived": self.jobs_arrived,
            "jobs_completed": self.jobs_completed,
            "jobs_scheduled": self.jobs_scheduled,
            "jobs_promoted": self.jobs_promoted,
            "subjobs_started": self.subjobs_started,
            "subjobs_completed": self.subjobs_completed,
            "subjob_splits": self.subjob_splits,
            "steals": self.steals,
            "preemptions": self.preemptions,
            "cache_hit_events": self.cache_hit_events,
            "cache_miss_events": self.cache_miss_events,
            "evicted_events": self.evicted_events,
            "tape_events": self.tape_events,
            "tape_requests": self.tape_requests,
            "remote_events": self.remote_events,
            "tier_hit_events": self.tier_hit_events,
            "tier_miss_events": self.tier_miss_events,
            "tier_evicted_events": self.tier_evicted_events,
            "tier_replicated_events": self.tier_replicated_events,
            "link_saturations": self.link_saturations,
            "periods": self.periods,
            "meta_subjobs": self.meta_subjobs,
            "rules_published": self.rules_published,
            "bid_rounds": self.bid_rounds,
            "grants": self.grants,
            "net_drops": self.net_drops,
            "net_delivered": self.net_delivered,
            "net_duplicates": self.net_duplicates,
            "net_retransmits": self.net_retransmits,
            "net_timeouts": self.net_timeouts,
            "net_dead_letters": self.net_dead_letters,
            "net_failovers": self.net_failovers,
            "hit_ratio": self.hit_ratio,
        }

    # -- export ---------------------------------------------------------------------------

    def write_counters_csv(self, path) -> int:
        """Write the counter time-series; returns the row count."""
        with open(path, "w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(CounterSample.FIELDS)
            for sample in self.samples:
                writer.writerow(sample.row())
        return len(self.samples)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceRecorder({len(self.events)}/{self.total_emitted} events, "
            f"{len(self.spans)} spans, {len(self.samples)} samples)"
        )
