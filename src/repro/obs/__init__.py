"""repro.obs — observability: structured tracing, counters, timeline export.

The subsystem has four layers:

* :mod:`repro.obs.hooks` — the :class:`HookBus` every instrumented
  component emits :class:`TraceEvent` s into (near-zero cost when no sink
  is attached) and the :class:`TraceSink` protocol;
* :mod:`repro.obs.recorder` — :class:`TraceRecorder`, the in-memory
  ring-buffer sink with counters, busy spans and sampled time-series;
* :mod:`repro.obs.chrome_trace` — Chrome/Perfetto ``trace_event`` JSON
  export (open in https://ui.perfetto.dev);
* :mod:`repro.obs.timeline` — dependency-free ASCII Gantt rendering.

Typical use::

    from repro import quick_config, run_simulation
    from repro.obs import TraceRecorder, render_timeline, write_chrome_trace

    recorder = TraceRecorder()
    result = run_simulation(quick_config(), "out-of-order", sink=recorder)
    print(render_timeline(recorder, width=100))
    write_chrome_trace("run.trace.json", recorder)
"""

from .chrome_trace import (
    REQUIRED_KEYS,
    chrome_trace_events,
    to_chrome_trace,
    validate_trace_events,
    write_chrome_trace,
)
from .hooks import (
    NULL_BUS,
    HookBus,
    NullSink,
    TraceEvent,
    TraceSink,
    kinds,
    make_bus,
)
from .recorder import ChunkSlice, CounterSample, Span, TraceRecorder
from .timeline import render_timeline

__all__ = [
    "HookBus",
    "NULL_BUS",
    "NullSink",
    "TraceEvent",
    "TraceSink",
    "kinds",
    "make_bus",
    "TraceRecorder",
    "Span",
    "ChunkSlice",
    "CounterSample",
    "chrome_trace_events",
    "to_chrome_trace",
    "write_chrome_trace",
    "validate_trace_events",
    "REQUIRED_KEYS",
    "render_timeline",
]
