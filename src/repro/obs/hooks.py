"""The observability hook bus: structured trace events at near-zero cost.

Every instrumented component (engine, nodes, caches, tertiary storage,
scheduler policies, the simulation itself) holds a reference to a
:class:`HookBus` and guards each emission site with::

    if self.obs.enabled:
        self.obs.emit(now, kinds.SUBJOB_START, "node", node=..., ...)

With no sink attached ``enabled`` is ``False``, so the disabled path costs
one attribute load and one branch per site — the event object is never
built.  ``benchmarks/bench_obs_overhead.py`` guards that this stays below
3 % of the simulation hot loop.

Sinks implement the :class:`TraceSink` protocol (a single ``on_event``
method); :class:`~repro.obs.recorder.TraceRecorder` is the standard one.
Components that are constructed without a bus share the module-level
:data:`NULL_BUS` singleton, which refuses sink attachment so a stray
``attach`` cannot silently enable tracing for every untraced simulation
in the process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..core.errors import ObsError


class kinds:
    """Event-kind taxonomy (namespaced string constants).

    Dotted names group by subsystem so sinks can filter with a prefix
    match (``kind.startswith("cache.")``).
    """

    # -- job lifecycle (simulator / policies) --------------------------------
    JOB_ARRIVAL = "job.arrival"
    JOB_SCHEDULE = "job.schedule"  # delayed policies: batch dispatched
    JOB_PROMOTE = "job.promote"  # fairness valve promotion
    JOB_END = "job.end"

    # -- subjob lifecycle (nodes / policies) ---------------------------------
    SUBJOB_START = "subjob.start"
    SUBJOB_RESUME = "subjob.resume"
    SUBJOB_SUSPEND = "subjob.suspend"
    SUBJOB_END = "subjob.end"
    SUBJOB_SPLIT = "subjob.split"
    SUBJOB_STEAL = "subjob.steal"
    SUBJOB_PREEMPT = "subjob.preempt"  # displaced in favour of cached work

    # -- data movement --------------------------------------------------------
    CHUNK_DONE = "chunk.done"
    CACHE_HIT = "cache.hit"
    CACHE_MISS = "cache.miss"
    CACHE_EVICT = "cache.evict"
    TAPE_READ = "tape.read"
    REMOTE_READ = "remote.read"

    # -- hierarchical topology (repro.topo) -----------------------------------
    TIER_HIT = "tier.hit"  # chunk served from an interior tier cache
    TIER_MISS = "tier.miss"  # a tier cache was consulted and had nothing
    TIER_EVICT = "tier.evict"  # tier cache evicted LRU replicas
    TIER_REPLICATE = "tier.replicate"  # placement promoted an extent
    LINK_SATURATED = "tier.link_saturated"  # uplink oversubscribed at plan

    # -- node state ----------------------------------------------------------
    NODE_BUSY = "node.busy"
    NODE_IDLE = "node.idle"

    # -- faults (repro.faults) ------------------------------------------------
    NODE_FAIL = "fault.node_fail"
    NODE_RECOVER = "fault.node_recover"
    SUBJOB_ABORT = "fault.subjob_abort"  # running chunk lost to a crash
    FAULT_RETRY = "fault.retry"  # aborted subjob re-dispatched
    FAULT_GIVEUP = "fault.giveup"  # retry budget exhausted
    STALL_START = "fault.stall_start"  # tertiary storage degraded
    STALL_END = "fault.stall_end"

    # -- scheduler machinery ---------------------------------------------------
    SCHED_PERIOD = "sched.period"
    SCHED_META = "sched.meta"  # meta-subjob coalesced over a stripe

    # -- decentralized scheduling (repro.sched.decentral) ----------------------
    RULE_PUBLISH = "sched.rule_publish"  # arbiter posted a job's rule
    BID_ROUND = "sched.bid_round"  # one arbitration round resolved
    TASK_GRANT = "sched.grant"  # batched grant applied on a node

    # -- control-plane faults (repro.faults.net) -------------------------------
    NET_DROP = "net.drop"  # a transmitted copy was lost in transit
    NET_DELIVER = "net.deliver"  # first copy of a message arrived
    NET_DUP = "net.dup"  # redundant copy discarded by receiver dedup
    NET_RETRANSMIT = "net.retransmit"  # sender re-sent an unacked message
    NET_TIMEOUT = "net.timeout"  # an ack timer fired
    NET_DEAD_LETTER = "net.dead_letter"  # retransmit budget exhausted
    NET_FAILOVER = "net.failover"  # arbiter lease lost; re-election ran

    # -- run framing -----------------------------------------------------------
    SIM_START = "sim.start"
    SIM_END = "sim.end"
    ENGINE_DISPATCH = "engine.dispatch"

    # -- execution layer (repro.exec; time = wall seconds into the batch) -----
    EXEC_SWEEP_START = "exec.sweep_start"
    EXEC_SPEC_DONE = "exec.spec_done"
    EXEC_SPEC_ERROR = "exec.spec_error"  # SpecError attached to a slot
    EXEC_CACHE_HIT = "exec.cache_hit"  # slot satisfied without running
    EXEC_RETRY = "exec.retry"  # worker needed more than one attempt
    EXEC_SWEEP_END = "exec.sweep_end"


@dataclass(slots=True)
class TraceEvent:
    """One structured observation.

    ``node``/``job`` are ``-1`` and ``sid`` is ``""`` when not applicable;
    kind-specific payload goes into ``data``.
    """

    time: float
    kind: str
    source: str
    node: int = -1
    job: int = -1
    sid: str = ""
    data: Dict[str, Any] = field(default_factory=dict)

    def key(self) -> tuple:
        """Hashable identity used by determinism tests."""
        return (
            self.time,
            self.kind,
            self.source,
            self.node,
            self.job,
            self.sid,
            tuple(sorted(self.data.items())),
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "time": self.time,
            "kind": self.kind,
            "source": self.source,
            "node": self.node,
            "job": self.job,
            "sid": self.sid,
            **self.data,
        }


class TraceSink:
    """Protocol/base class of trace consumers.

    Subclasses override :meth:`on_event`; :meth:`close` is called (by
    whoever owns the sink) when the traced run is over.
    """

    def on_event(self, event: TraceEvent) -> None:  # pragma: no cover - protocol
        raise NotImplementedError

    def close(self) -> None:
        """Flush/finalise; default is a no-op."""


class NullSink(TraceSink):
    """A sink that discards everything (useful to force the enabled code
    path in overhead measurements)."""

    def on_event(self, event: TraceEvent) -> None:
        pass


class HookBus:
    """Fan-out point between emission sites and attached sinks.

    ``enabled`` is a plain attribute kept in sync with the sink list so
    emission sites can guard with a single attribute read.
    ``engine_dispatch`` additionally gates the per-dispatch engine event
    (one per calendar event — high volume, off by default even while
    tracing).
    """

    __slots__ = ("_sinks", "enabled", "engine_dispatch")

    def __init__(self) -> None:
        self._sinks: List[TraceSink] = []
        self.enabled = False
        self.engine_dispatch = False

    def attach(self, sink: TraceSink) -> TraceSink:
        """Register ``sink``; returns it for chaining."""
        if sink in self._sinks:
            raise ObsError("sink already attached")
        self._sinks.append(sink)
        self.enabled = True
        return sink

    def detach(self, sink: TraceSink) -> None:
        self._sinks.remove(sink)
        self.enabled = bool(self._sinks)

    @property
    def sinks(self) -> List[TraceSink]:
        return list(self._sinks)

    def emit(
        self,
        time: float,
        kind: str,
        source: str,
        node: int = -1,
        job: int = -1,
        sid: str = "",
        **data: Any,
    ) -> None:
        """Build one :class:`TraceEvent` and deliver it to every sink.

        Callers must guard with ``if bus.enabled:`` — emitting on a
        disabled bus is silently dropped but pays the event construction.
        """
        if not self._sinks:
            return
        event = TraceEvent(
            time=time, kind=kind, source=source, node=node, job=job, sid=sid, data=data
        )
        for sink in self._sinks:
            sink.on_event(event)

    def close(self) -> None:
        for sink in self._sinks:
            sink.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HookBus(sinks={len(self._sinks)}, enabled={self.enabled})"


class _NullBus(HookBus):
    """The shared disabled bus; attaching a sink is a usage error."""

    def attach(self, sink: TraceSink) -> TraceSink:
        raise ObsError(
            "cannot attach a sink to the shared NULL_BUS; create a HookBus "
            "(or pass sink=... to Simulation/run_simulation) instead"
        )


#: Shared disabled bus used as the default by every instrumented component.
NULL_BUS: HookBus = _NullBus()


def make_bus(sink: Optional[TraceSink] = None) -> HookBus:
    """A fresh bus, optionally with ``sink`` already attached."""
    bus = HookBus()
    if sink is not None:
        bus.attach(sink)
    return bus
