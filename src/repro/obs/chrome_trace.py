"""Chrome/Perfetto ``trace_event`` export of a recorded simulation.

Produces the JSON object format understood by ``ui.perfetto.dev`` and
``chrome://tracing``:

* **pid 0 — "cluster"**: one thread (track) per node, carrying a complete
  ("X") slice per subjob residency, plus instant markers for steals,
  fairness promotions and cache evictions;
* **pid 1 — "tertiary storage"**: one track per node-facing tape stream,
  carrying a slice per chunk actually streamed from tertiary storage;
* counter ("C") tracks for cache hit ratio, jobs in system and busy nodes.

Simulated seconds map to trace microseconds 1:1 (Perfetto's native unit),
so a simulated week is ~6e11 µs — comfortably within double precision.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from ..core.errors import ObsError
from .hooks import kinds
from .recorder import TraceRecorder

#: Keys required of every entry by the trace_event format.
REQUIRED_KEYS = ("name", "ph", "ts", "pid", "tid")

_CLUSTER_PID = 0
_TAPE_PID = 1

#: Microseconds per simulated second.
_US = 1e6


def _meta(name: str, pid: int, tid: int, value: str) -> Dict[str, Any]:
    return {
        "name": name,
        "ph": "M",
        "ts": 0,
        "pid": pid,
        "tid": tid,
        "args": {"name": value},
    }


def chrome_trace_events(recorder: TraceRecorder) -> List[Dict[str, Any]]:
    """The ``traceEvents`` list for one recorded run."""
    recorder.close()
    nodes = recorder.node_ids()
    out: List[Dict[str, Any]] = []

    # -- track naming metadata -----------------------------------------------
    out.append(_meta("process_name", _CLUSTER_PID, 0, "cluster"))
    out.append(_meta("process_name", _TAPE_PID, 0, "tertiary storage"))
    for node in nodes:
        out.append(_meta("thread_name", _CLUSTER_PID, node, f"node {node}"))
        out.append(_meta("thread_name", _TAPE_PID, node, f"tape stream → node {node}"))

    # -- subjob slices, one track per node -------------------------------------
    for span in recorder.spans:
        out.append(
            {
                "name": f"subjob {span.sid}" if span.sid else "subjob",
                "cat": "subjob",
                "ph": "X",
                "ts": span.start * _US,
                "dur": max(0.0, span.end - span.start) * _US,
                "pid": _CLUSTER_PID,
                "tid": span.node,
                "args": {"job": span.job, "sid": span.sid},
            }
        )

    # -- tape-drive tracks -------------------------------------------------------
    for chunk in recorder.chunk_slices:
        if chunk.source != "tertiary":
            continue
        out.append(
            {
                "name": f"tape read ({chunk.events} ev)",
                "cat": "tape",
                "ph": "X",
                "ts": chunk.start * _US,
                "dur": max(0.0, chunk.end - chunk.start) * _US,
                "pid": _TAPE_PID,
                "tid": chunk.node,
                "args": {"events": chunk.events},
            }
        )

    # -- instant markers -----------------------------------------------------------
    _INSTANTS = {
        kinds.SUBJOB_STEAL: "steal",
        kinds.JOB_PROMOTE: "fairness promotion",
        kinds.CACHE_EVICT: "cache evict",
        kinds.SUBJOB_PREEMPT: "preempt for cached",
        kinds.NODE_FAIL: "node fail",
        kinds.NODE_RECOVER: "node recover",
        kinds.SUBJOB_ABORT: "subjob abort",
        kinds.FAULT_RETRY: "fault retry",
        kinds.FAULT_GIVEUP: "fault giveup",
        kinds.STALL_START: "tertiary stall start",
        kinds.STALL_END: "tertiary stall end",
        kinds.TASK_GRANT: "task grant",
    }
    for event in recorder.events:
        label = _INSTANTS.get(event.kind)
        if label is None:
            continue
        out.append(
            {
                "name": label,
                "cat": "sched",
                "ph": "i",
                "s": "t" if event.node >= 0 else "p",
                "ts": event.time * _US,
                "pid": _CLUSTER_PID,
                "tid": event.node if event.node >= 0 else 0,
                "args": dict(event.data),
            }
        )

    # -- counter tracks ---------------------------------------------------------------
    for sample in recorder.samples:
        ts = sample.time * _US
        ratio = 0.0 if sample.hit_ratio != sample.hit_ratio else sample.hit_ratio
        out.append(
            {
                "name": "cache hit ratio",
                "ph": "C",
                "ts": ts,
                "pid": _CLUSTER_PID,
                "tid": 0,
                "args": {"ratio": round(ratio, 4)},
            }
        )
        out.append(
            {
                "name": "jobs in system",
                "ph": "C",
                "ts": ts,
                "pid": _CLUSTER_PID,
                "tid": 0,
                "args": {"jobs": sample.jobs_in_system},
            }
        )
        out.append(
            {
                "name": "busy nodes",
                "ph": "C",
                "ts": ts,
                "pid": _CLUSTER_PID,
                "tid": 0,
                "args": {"nodes": sample.busy_nodes},
            }
        )
    return out


def to_chrome_trace(recorder: TraceRecorder) -> Dict[str, Any]:
    """The full JSON-object-format trace (``traceEvents`` + metadata)."""
    if recorder.total_emitted == 0:
        raise ObsError("nothing recorded: run the simulation with this sink attached")
    return {
        "traceEvents": chrome_trace_events(recorder),
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs.chrome_trace",
            "events_emitted": recorder.total_emitted,
            "events_dropped": recorder.dropped_events,
        },
    }


def write_chrome_trace(path, recorder: TraceRecorder) -> int:
    """Write the trace JSON; returns the number of trace entries."""
    trace = to_chrome_trace(recorder)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle, separators=(",", ":"))
    return len(trace["traceEvents"])


def validate_trace_events(entries: List[Dict[str, Any]]) -> None:
    """Raise :class:`ObsError` unless every entry has the required
    trace_event keys (and ``dur`` for complete events)."""
    for index, entry in enumerate(entries):
        for key in REQUIRED_KEYS:
            if key not in entry:
                raise ObsError(f"trace entry {index} missing {key!r}: {entry}")
        if entry["ph"] == "X" and "dur" not in entry:
            raise ObsError(f"complete event {index} missing 'dur': {entry}")
