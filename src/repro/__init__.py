"""repro — reproduction of Ponce & Hersch (IPDPS 2004), "Parallelization
and Scheduling of Data Intensive Particle Physics Analysis Jobs on
Clusters of PCs".

A discrete-event simulator of a PC cluster backed by tertiary mass
storage, the paper's seven job-parallelization/scheduling policies, the
LHCb-style analysis workload model, and a benchmark harness that
regenerates every figure of the paper's evaluation.

Quickstart::

    from repro import paper_config, run_simulation

    result = run_simulation(paper_config(arrival_rate_per_hour=1.0),
                            "out-of-order")
    print(result.brief())
"""

from .core import Engine, RandomStreams, units
from .core.errors import ReproError
from .cluster import Cluster, CostModel, DataSource, Node
from .exec import Executor, ExecStats, ResultCache, RetryPolicy, SpecError, make_cache
from .data import DataSpace, Interval, IntervalSet, LRUSegmentCache, TertiaryStorage
from .obs import (
    HookBus,
    TraceEvent,
    TraceRecorder,
    TraceSink,
    render_timeline,
    write_chrome_trace,
)
from .sched import available_policies, create_policy
from .sim import (
    RunSpec,
    Simulation,
    SimulationConfig,
    SimulationResult,
    SweepResult,
    load_sweep,
    paper_config,
    quick_config,
    run_simulation,
    run_sweep,
)
from .workload import (
    ErlangJobSize,
    HotspotStartDistribution,
    Job,
    JobRequest,
    Subjob,
    WorkloadGenerator,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "Engine",
    "RandomStreams",
    "units",
    "ReproError",
    # data
    "Interval",
    "IntervalSet",
    "DataSpace",
    "LRUSegmentCache",
    "TertiaryStorage",
    # cluster
    "CostModel",
    "DataSource",
    "Node",
    "Cluster",
    # workload
    "Job",
    "JobRequest",
    "Subjob",
    "ErlangJobSize",
    "HotspotStartDistribution",
    "WorkloadGenerator",
    # scheduling
    "available_policies",
    "create_policy",
    # observability
    "HookBus",
    "TraceEvent",
    "TraceSink",
    "TraceRecorder",
    "render_timeline",
    "write_chrome_trace",
    # simulation
    "SimulationConfig",
    "paper_config",
    "quick_config",
    "Simulation",
    "SimulationResult",
    "run_simulation",
    "RunSpec",
    "SweepResult",
    "run_sweep",
    "load_sweep",
    # execution layer
    "Executor",
    "ExecStats",
    "ResultCache",
    "RetryPolicy",
    "SpecError",
    "make_cache",
]
