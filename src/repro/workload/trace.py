"""Workload traces: persist and replay exact job-request streams.

Traces make experiments repeatable across policies: every policy in a
comparison sees byte-identical arrivals.  The format is JSON lines — one
request per line — so traces diff cleanly and stream without loading.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Sequence, Union

from ..core.errors import WorkloadError
from .jobs import JobRequest

PathLike = Union[str, Path]

_FIELDS = ("job_id", "arrival_time", "start_event", "n_events")


def request_to_dict(request: JobRequest) -> dict:
    return {name: getattr(request, name) for name in _FIELDS}


def request_from_dict(payload: dict) -> JobRequest:
    try:
        return JobRequest(
            job_id=int(payload["job_id"]),
            arrival_time=float(payload["arrival_time"]),
            start_event=int(payload["start_event"]),
            n_events=int(payload["n_events"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise WorkloadError(f"malformed trace entry {payload!r}: {exc}") from exc


def save_trace(path: PathLike, requests: Iterable[JobRequest]) -> int:
    """Write requests as JSON lines; returns the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for request in requests:
            handle.write(json.dumps(request_to_dict(request)) + "\n")
            count += 1
    return count


def load_trace(path: PathLike) -> List[JobRequest]:
    """Read a JSONL trace, validating ordering and uniqueness."""
    requests: List[JobRequest] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise WorkloadError(f"{path}:{line_number}: invalid JSON") from exc
            requests.append(request_from_dict(payload))
    validate_trace(requests)
    return requests


def validate_trace(requests: Sequence[JobRequest]) -> None:
    """Check a trace is well-formed: sorted arrivals, unique ids,
    positive sizes."""
    previous_time = float("-inf")
    seen_ids = set()
    for request in requests:
        if request.arrival_time < previous_time:
            raise WorkloadError(
                f"trace not sorted by arrival: job {request.job_id} at "
                f"{request.arrival_time} after {previous_time}"
            )
        previous_time = request.arrival_time
        if request.job_id in seen_ids:
            raise WorkloadError(f"duplicate job id {request.job_id}")
        seen_ids.add(request.job_id)
        if request.n_events <= 0:
            raise WorkloadError(f"job {request.job_id} has no events")
        if request.start_event < 0:
            raise WorkloadError(f"job {request.job_id} starts below 0")


def scale_trace_load(
    requests: Sequence[JobRequest], factor: float
) -> List[JobRequest]:
    """Rescale a trace's offered load by ``factor`` (>1 compresses
    arrival times, increasing jobs/hour).  Sizes and positions are kept,
    so cache-affinity structure is preserved across load points."""
    if factor <= 0:
        raise WorkloadError(f"load factor must be > 0, got {factor}")
    return [
        JobRequest(
            job_id=r.job_id,
            arrival_time=r.arrival_time / factor,
            start_event=r.start_event,
            n_events=r.n_events,
        )
        for r in requests
    ]
