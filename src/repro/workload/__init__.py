"""Workload model: jobs, distributions, generators, traces."""

from .distributions import (
    ErlangJobSize,
    HotRegion,
    HotspotStartDistribution,
    PoissonArrivals,
    uniform_start_distribution,
)
from .characterize import (
    WorkloadProfile,
    characterize,
    estimate_arrivals,
    estimate_job_size,
    find_hot_regions,
)
from .generator import WorkloadGenerator
from .scenarios import (
    DiurnalWorkload,
    PhasedWorkload,
    RateFunctionWorkload,
    workload_from_config,
)
from .jobs import Job, JobRequest, JobState, MetaSubjob, Subjob, SubjobState
from .trace import load_trace, save_trace, scale_trace_load, validate_trace

__all__ = [
    "Job",
    "JobRequest",
    "JobState",
    "Subjob",
    "SubjobState",
    "MetaSubjob",
    "ErlangJobSize",
    "PoissonArrivals",
    "HotRegion",
    "HotspotStartDistribution",
    "uniform_start_distribution",
    "WorkloadGenerator",
    "WorkloadProfile",
    "characterize",
    "estimate_arrivals",
    "estimate_job_size",
    "find_hot_regions",
    "PhasedWorkload",
    "DiurnalWorkload",
    "RateFunctionWorkload",
    "workload_from_config",
    "save_trace",
    "load_trace",
    "validate_trace",
    "scale_trace_load",
]
