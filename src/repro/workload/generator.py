"""Workload generation: reproducible streams of job requests."""

from __future__ import annotations

from typing import Iterator, List, Optional

from ..core import units
from ..core.errors import WorkloadError
from ..core.rng import RandomStreams
from ..data.dataspace import DataSpace
from .distributions import (
    ErlangJobSize,
    HotspotStartDistribution,
    PoissonArrivals,
)
from .jobs import JobRequest


class WorkloadGenerator:
    """Generates the paper's workload: Poisson arrivals of Erlang-sized
    jobs starting at hotspot-distributed positions.

    The generator is lazy and deterministic: the ``k``-th request for a
    given (seed, parameters) is always the same, whatever was consumed
    before through other streams.
    """

    def __init__(
        self,
        dataspace: DataSpace,
        arrival_rate_per_hour: float,
        job_size: ErlangJobSize,
        start_distribution: HotspotStartDistribution,
        streams: RandomStreams,
    ) -> None:
        if arrival_rate_per_hour <= 0:
            raise WorkloadError(
                f"arrival rate must be > 0 jobs/hour, got {arrival_rate_per_hour}"
            )
        self.dataspace = dataspace
        self.arrivals = PoissonArrivals(units.per_hour(arrival_rate_per_hour))
        self.job_size = job_size
        self.start_distribution = start_distribution
        self._rng_arrivals = streams.get("workload.arrivals")
        self._rng_sizes = streams.get("workload.sizes")
        self._rng_starts = streams.get("workload.starts")

    def generate(
        self, horizon: float, max_jobs: Optional[int] = None
    ) -> Iterator[JobRequest]:
        """Yield requests with arrival times in ``[0, horizon)``."""
        clock = 0.0
        job_id = 0
        while True:
            clock += self.arrivals.next_interval(self._rng_arrivals)
            if clock >= horizon:
                return
            if max_jobs is not None and job_id >= max_jobs:
                return
            n_events = self.job_size.sample(self._rng_sizes)
            n_events = min(n_events, self.dataspace.total_events)
            start = self.start_distribution.sample_start(self._rng_starts, n_events)
            yield JobRequest(
                job_id=job_id,
                arrival_time=clock,
                start_event=start,
                n_events=n_events,
            )
            job_id += 1

    def generate_list(
        self, horizon: float, max_jobs: Optional[int] = None
    ) -> List[JobRequest]:
        return list(self.generate(horizon, max_jobs))
