"""Workload generation: reproducible streams of job requests.

Arrival times and job sizes are drawn in numpy batches (one
``Generator.exponential(size=n)`` / ``gamma(size=n)`` call per
:data:`BATCH_SIZE` jobs) rather than per job.  numpy's vectorized
samplers consume the underlying Philox stream exactly like the
equivalent sequence of scalar calls, and the cumulative-sum of the
inter-arrival intervals is seeded with the running clock so the
floating-point accumulation order matches the historical scalar loop —
job ``k`` of a given seed is bit-identical to what the scalar generator
produced, which the committed simulation goldens pin.  Start positions
stay scalar: their draw count per job depends on the hot/cold branch,
so batching them would reorder the stream.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

import numpy as np

from ..core import units
from ..core.errors import WorkloadError
from ..core.rng import RandomStreams
from ..data.dataspace import DataSpace
from .distributions import (
    ErlangJobSize,
    HotspotStartDistribution,
    PoissonArrivals,
)
from .jobs import JobRequest

#: Jobs pre-generated per numpy batch.  Large enough to amortise the
#: per-call numpy overhead, small enough that over-drawing on the last
#: batch (harmless: the workload streams are dedicated) stays cheap.
BATCH_SIZE = 4096


class WorkloadGenerator:
    """Generates the paper's workload: Poisson arrivals of Erlang-sized
    jobs starting at hotspot-distributed positions.

    The generator is lazy and deterministic: the ``k``-th request for a
    given (seed, parameters) is always the same, whatever was consumed
    before through other streams.
    """

    def __init__(
        self,
        dataspace: DataSpace,
        arrival_rate_per_hour: float,
        job_size: ErlangJobSize,
        start_distribution: HotspotStartDistribution,
        streams: RandomStreams,
    ) -> None:
        if arrival_rate_per_hour <= 0:
            raise WorkloadError(
                f"arrival rate must be > 0 jobs/hour, got {arrival_rate_per_hour}"
            )
        self.dataspace = dataspace
        self.arrivals = PoissonArrivals(units.per_hour(arrival_rate_per_hour))
        self.job_size = job_size
        self.start_distribution = start_distribution
        self._rng_arrivals = streams.get("workload.arrivals")
        self._rng_sizes = streams.get("workload.sizes")
        self._rng_starts = streams.get("workload.starts")

    def generate(
        self, horizon: float, max_jobs: Optional[int] = None
    ) -> Iterator[JobRequest]:
        """Yield requests with arrival times in ``[0, horizon)``.

        Lazy: requests materialise one :data:`BATCH_SIZE` numpy batch at
        a time, so a million-job workload never holds a million
        :class:`JobRequest` objects here (the chained arrival pump in
        :class:`repro.sim.simulator.Simulation` consumes this iterator
        one request at a time).
        """
        clock = 0.0
        job_id = 0
        total = self.dataspace.total_events
        mean_interval = self.arrivals.mean_interval
        while True:
            intervals = self._rng_arrivals.exponential(
                mean_interval, size=BATCH_SIZE
            )
            # Seed the cumulative sum with the running clock so the
            # additions happen in the scalar loop's exact order:
            # cumsum([clock, i0, i1, ...]) == [clock, clock+i0, ...].
            times = np.empty(BATCH_SIZE + 1, dtype=float)
            times[0] = clock
            times[1:] = intervals
            np.cumsum(times, out=times)
            arrivals = times[1:]
            clock = float(arrivals[-1])
            emit = int(np.searchsorted(arrivals, horizon, side="left"))
            terminal = emit < BATCH_SIZE
            if max_jobs is not None and job_id + emit >= max_jobs:
                emit = max_jobs - job_id
                terminal = True
            if emit > 0:
                sizes = self.job_size.sample_many(self._rng_sizes, emit)
                np.minimum(sizes, total, out=sizes)
                for index in range(emit):
                    n_events = int(sizes[index])
                    start = self.start_distribution.sample_start(
                        self._rng_starts, n_events
                    )
                    yield JobRequest(
                        job_id=job_id,
                        arrival_time=float(arrivals[index]),
                        start_event=start,
                        n_events=n_events,
                    )
                    job_id += 1
            if terminal:
                return

    def generate_list(
        self, horizon: float, max_jobs: Optional[int] = None
    ) -> List[JobRequest]:
        return list(self.generate(horizon, max_jobs))
