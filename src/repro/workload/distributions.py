"""Stochastic ingredients of the workload model (§2.4 of the paper).

* job sizes: Erlang distribution, shape 4;
* inter-arrival times: exponential (Poisson arrivals);
* job start points: homogeneous over the data space except for two "hot"
  regions that hold 10 % of the space but attract 50 % of the start points
  ("the fraction of the data associated with some very interesting events
  is accessed far more frequently than the remaining data").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.errors import ConfigurationError
from ..data.dataspace import DataSpace
from ..data.intervals import Interval, IntervalSet, PositionIndex, complement


class ErlangJobSize:
    """Erlang-distributed number of events per job.

    Parameterised by *mean* and *shape* (k).  The paper quotes "30000
    events on average ... Erlang ... parameter equal to 4"; its internal
    anchor numbers (32 000 s single-node time, 3.46 jobs/h maximal load)
    imply a mean of 40 000 — whose Erlang-4 **mode** is exactly 30 000.
    See DESIGN.md §2.  The mean is configurable either way.
    """

    def __init__(self, mean_events: float, shape: int = 4, min_events: int = 1) -> None:
        if mean_events <= 0:
            raise ConfigurationError(f"mean_events must be > 0, got {mean_events}")
        if shape < 1:
            raise ConfigurationError(f"shape must be >= 1, got {shape}")
        self.mean_events = float(mean_events)
        self.shape = int(shape)
        self.min_events = int(min_events)

    @property
    def scale(self) -> float:
        """Scale parameter of the underlying gamma distribution."""
        return self.mean_events / self.shape

    @property
    def mode_events(self) -> float:
        """The most likely job size ((k-1) * scale)."""
        return (self.shape - 1) * self.scale

    @property
    def variance(self) -> float:
        return self.shape * self.scale**2

    @property
    def squared_cv(self) -> float:
        """Squared coefficient of variation = 1/k (used by the M/G/m
        approximation of the processing-farm baseline)."""
        return 1.0 / self.shape

    def sample(self, rng: np.random.Generator) -> int:
        value = rng.gamma(shape=self.shape, scale=self.scale)
        return max(self.min_events, int(round(value)))

    def sample_many(self, rng: np.random.Generator, count: int) -> np.ndarray:
        values = rng.gamma(shape=self.shape, scale=self.scale, size=count)
        return np.maximum(self.min_events, np.rint(values).astype(np.int64))


class PoissonArrivals:
    """Exponential inter-arrival times for a given rate (jobs/second)."""

    def __init__(self, rate_per_second: float) -> None:
        if rate_per_second <= 0:
            raise ConfigurationError(f"rate must be > 0, got {rate_per_second}")
        self.rate = float(rate_per_second)

    @property
    def mean_interval(self) -> float:
        return 1.0 / self.rate

    def next_interval(self, rng: np.random.Generator) -> float:
        return rng.exponential(self.mean_interval)


@dataclass(frozen=True)
class HotRegion:
    """One hot region, as fractions of the data space."""

    start_fraction: float
    length_fraction: float

    def __post_init__(self) -> None:
        if not (0.0 <= self.start_fraction < 1.0):
            raise ConfigurationError(f"bad region start {self.start_fraction}")
        if not (0.0 < self.length_fraction <= 1.0):
            raise ConfigurationError(f"bad region length {self.length_fraction}")
        if self.start_fraction + self.length_fraction > 1.0:
            raise ConfigurationError("hot region leaves the data space")


class HotspotStartDistribution:
    """Job start points with hot regions (paper default: two regions,
    10 % of the space, 50 % of the starts).

    Start positions are drawn over the whole space and then clamped so the
    job's segment fits inside it; the clamp moves fewer than ``mean job
    size / total events`` ≈ 1 % of the probability mass for the paper's
    parameters.
    """

    def __init__(
        self,
        dataspace: DataSpace,
        regions: Sequence[HotRegion] = (HotRegion(0.20, 0.05), HotRegion(0.60, 0.05)),
        hot_weight: float = 0.5,
    ) -> None:
        if not (0.0 <= hot_weight <= 1.0):
            raise ConfigurationError(f"hot_weight must be in [0,1], got {hot_weight}")
        self.dataspace = dataspace
        self.hot_weight = float(hot_weight)
        total = dataspace.total_events
        hot = IntervalSet()
        for region in regions:
            start = int(region.start_fraction * total)
            end = min(total, start + max(1, int(region.length_fraction * total)))
            hot.add(Interval(start, end))
        self.hot_set = hot
        self.cold_set = complement(dataspace.universe, hot)
        if hot_weight > 0 and hot.measure() == 0:
            raise ConfigurationError("hot_weight > 0 but no hot region given")
        if hot_weight < 1 and self.cold_set.measure() == 0:
            raise ConfigurationError("hot_weight < 1 but regions cover the space")
        # Offset→position lookup, snapshotted once: both sets are fixed
        # after construction, and the generator draws one position per
        # job — O(log intervals) beats the linear interval scan on the
        # million-job runs the scale tier exercises.
        self._hot_index = PositionIndex(hot)
        self._cold_index = PositionIndex(self.cold_set)

    @property
    def hot_fraction_of_space(self) -> float:
        return self.hot_set.measure() / self.dataspace.total_events

    def sample_position(self, rng: np.random.Generator) -> int:
        """Draw a raw start position (ignoring the job-length clamp).

        The draws (one uniform for the hot/cold branch, one integer
        offset) are identical to the historical linear-scan version —
        only the offset→position mapping changed representation.
        """
        if rng.random() < self.hot_weight:
            index = self._hot_index
        else:
            index = self._cold_index
        offset = int(rng.integers(0, index.measure))
        return index.position_at(offset)

    def sample_start(self, rng: np.random.Generator, n_events: int) -> int:
        """Draw a start so the segment ``[start, start+n)`` fits."""
        total = self.dataspace.total_events
        if n_events > total:
            raise ConfigurationError(
                f"job of {n_events} events exceeds the {total}-event space"
            )
        position = self.sample_position(rng)
        return min(position, total - n_events)


def uniform_start_distribution(dataspace: DataSpace) -> HotspotStartDistribution:
    """A fully homogeneous start distribution (no hot regions)."""
    return HotspotStartDistribution(dataspace, regions=(), hot_weight=0.0)
