"""Non-stationary workload scenarios.

The paper evaluates constant Poisson loads; the adaptive policy (§6),
however, exists precisely because real analysis traffic fluctuates — a
conference deadline, a new detector run, night/day rhythms.  This module
generates such traffic:

* :class:`PhasedWorkload` — piecewise-constant arrival rates (a load
  spike, a step change);
* :class:`DiurnalWorkload` — sinusoidal day/night modulation;
* :class:`RateFunctionWorkload` — any rate function, via Lewis-Shedler
  thinning of a homogeneous Poisson process.

All of them reuse the §2.4 job-size and hot-region start distributions and
produce ordinary :class:`~repro.workload.jobs.JobRequest` traces, so every
policy and experiment consumes them unchanged.
"""

from __future__ import annotations

import math
from typing import Callable, List, Sequence, Tuple

from ..core import units
from ..core.errors import WorkloadError
from ..core.rng import RandomStreams
from ..data.dataspace import DataSpace
from .distributions import ErlangJobSize, HotspotStartDistribution
from .jobs import JobRequest


class RateFunctionWorkload:
    """Non-homogeneous Poisson arrivals via Lewis–Shedler thinning.

    ``rate_fn(t)`` gives the instantaneous arrival rate (jobs/second) and
    must be bounded by ``rate_max``; candidate arrivals drawn at
    ``rate_max`` are accepted with probability ``rate_fn(t) / rate_max``,
    which yields exactly the target process.
    """

    def __init__(
        self,
        dataspace: DataSpace,
        rate_fn: Callable[[float], float],
        rate_max: float,
        job_size: ErlangJobSize,
        start_distribution: HotspotStartDistribution,
        streams: RandomStreams,
    ) -> None:
        if rate_max <= 0:
            raise WorkloadError(f"rate_max must be > 0, got {rate_max}")
        self.dataspace = dataspace
        self.rate_fn = rate_fn
        self.rate_max = float(rate_max)
        self.job_size = job_size
        self.start_distribution = start_distribution
        self._rng_arrivals = streams.get("scenario.arrivals")
        self._rng_thinning = streams.get("scenario.thinning")
        self._rng_sizes = streams.get("scenario.sizes")
        self._rng_starts = streams.get("scenario.starts")

    def generate_list(self, horizon: float) -> List[JobRequest]:
        requests: List[JobRequest] = []
        clock = 0.0
        job_id = 0
        while True:
            clock += self._rng_arrivals.exponential(1.0 / self.rate_max)
            if clock >= horizon:
                return requests
            rate = self.rate_fn(clock)
            if rate < 0 or rate > self.rate_max * (1 + 1e-9):
                raise WorkloadError(
                    f"rate_fn({clock:.0f}) = {rate} outside [0, rate_max]"
                )
            if self._rng_thinning.random() >= rate / self.rate_max:
                continue  # thinned out
            n_events = min(
                self.job_size.sample(self._rng_sizes), self.dataspace.total_events
            )
            start = self.start_distribution.sample_start(self._rng_starts, n_events)
            requests.append(
                JobRequest(
                    job_id=job_id,
                    arrival_time=clock,
                    start_event=start,
                    n_events=n_events,
                )
            )
            job_id += 1


class PhasedWorkload(RateFunctionWorkload):
    """Piecewise-constant arrival rates: ``[(rate_per_hour, days), ...]``.

    >>> # a week at 1.2/h, a 5-day spike at 2.6/h, back to 1.2/h
    >>> phases = [(1.2, 7.0), (2.6, 5.0), (1.2, 9.0)]
    """

    def __init__(
        self,
        dataspace: DataSpace,
        phases: Sequence[Tuple[float, float]],
        job_size: ErlangJobSize,
        start_distribution: HotspotStartDistribution,
        streams: RandomStreams,
    ) -> None:
        if not phases:
            raise WorkloadError("need at least one phase")
        for rate, days in phases:
            if rate < 0 or days <= 0:
                raise WorkloadError(f"bad phase ({rate}/h, {days} days)")
        self.phases = [(rate, days) for rate, days in phases]
        boundaries: List[float] = [0.0]
        for _, days in self.phases:
            boundaries.append(boundaries[-1] + days * units.DAY)
        self._boundaries = boundaries

        def rate_fn(t: float) -> float:
            for (rate, _), start, end in zip(
                self.phases, boundaries, boundaries[1:]
            ):
                if start <= t < end:
                    return units.per_hour(rate)
            return 0.0

        rate_max = units.per_hour(max(rate for rate, _ in self.phases))
        super().__init__(
            dataspace, rate_fn, rate_max, job_size, start_distribution, streams
        )

    @property
    def total_duration(self) -> float:
        return self._boundaries[-1]

    def phase_bounds(self) -> List[Tuple[float, float]]:
        """(start, end) of each phase in seconds."""
        return list(zip(self._boundaries, self._boundaries[1:]))

    def generate_list(self, horizon: float = None) -> List[JobRequest]:  # type: ignore[assignment]
        if horizon is None:
            horizon = self.total_duration
        return super().generate_list(horizon)


class DiurnalWorkload(RateFunctionWorkload):
    """Sinusoidal day/night load: mean rate ± amplitude, period 24 h.

    ``peak_hour`` places the daily maximum (e.g. 15.0 for mid-afternoon,
    when the paper's physicists submit most).
    """

    def __init__(
        self,
        dataspace: DataSpace,
        mean_rate_per_hour: float,
        amplitude_per_hour: float,
        job_size: ErlangJobSize,
        start_distribution: HotspotStartDistribution,
        streams: RandomStreams,
        peak_hour: float = 15.0,
    ) -> None:
        if amplitude_per_hour < 0 or amplitude_per_hour > mean_rate_per_hour:
            raise WorkloadError(
                "amplitude must be within [0, mean] to keep the rate >= 0"
            )
        mean = units.per_hour(mean_rate_per_hour)
        amplitude = units.per_hour(amplitude_per_hour)
        phase_shift = peak_hour * units.HOUR

        def rate_fn(t: float) -> float:
            return mean + amplitude * math.cos(
                2 * math.pi * (t - phase_shift) / units.DAY
            )

        super().__init__(
            dataspace,
            rate_fn,
            mean + amplitude,
            job_size,
            start_distribution,
            streams,
        )


def workload_from_config(config, kind: str = "constant", **kwargs):
    """Build a scenario from a :class:`SimulationConfig`.

    ``kind``: ``"phased"`` (requires ``phases=[(rate, days), ...]``) or
    ``"diurnal"`` (requires ``mean_rate_per_hour``/``amplitude_per_hour``).
    """
    common = dict(
        dataspace=config.dataspace(),
        job_size=config.job_size_distribution(),
        start_distribution=config.start_distribution(),
        streams=RandomStreams(config.seed),
    )
    if kind == "phased":
        return PhasedWorkload(phases=kwargs["phases"], **common)
    if kind == "diurnal":
        return DiurnalWorkload(
            mean_rate_per_hour=kwargs["mean_rate_per_hour"],
            amplitude_per_hour=kwargs["amplitude_per_hour"],
            peak_hour=kwargs.get("peak_hour", 15.0),
            **common,
        )
    raise WorkloadError(f"unknown scenario kind {kind!r}")
