"""Jobs, subjobs and meta-subjobs: the units of scheduled work.

A **job** is one physicist's analysis request: a contiguous segment of
collision events.  Policies split jobs into **subjobs** (contiguous
sub-segments processed left to right, preemptible between events) and the
delayed policy aggregates uncached subjobs over a common stripe into
**meta-subjobs** so the stripe is streamed from tertiary storage once.

State machines::

    Job:    PENDING ──start──▶ ACTIVE ──last subjob done──▶ DONE
    Subjob: PENDING ──▶ RUNNING ◀──▶ SUSPENDED ──▶ DONE

Invariants (checked by :meth:`Job.check_invariants`):

* subjob segments tile the job segment exactly (no gaps, no overlaps);
* ``job.events_done`` equals the sum of subjob progress;
* a DONE job has every subjob DONE and ``events_done == n_events``.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Tuple

from ..core.errors import SchedulingError
from ..data.intervals import Interval

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.node import Node


class JobState(enum.Enum):
    PENDING = "pending"  # arrived, no event processed yet
    ACTIVE = "active"  # at least one event processed
    DONE = "done"


class SubjobState(enum.Enum):
    PENDING = "pending"  # never run
    RUNNING = "running"  # executing on a node
    SUSPENDED = "suspended"  # preempted, will resume later
    DONE = "done"


@dataclass(frozen=True, slots=True)
class JobRequest:
    """An immutable workload-trace entry."""

    job_id: int
    arrival_time: float
    start_event: int
    n_events: int

    @property
    def segment(self) -> Interval:
        return Interval(self.start_event, self.start_event + self.n_events)


class Job:
    """A running analysis job and its lifecycle timestamps."""

    __slots__ = (
        "request",
        "job_id",
        "arrival_time",
        "segment",
        "n_events",
        "schedule_time",
        "first_start",
        "completion",
        "events_done",
        "state",
        "subjobs",
        "_next_subjob_seq",
    )

    _ids = itertools.count()

    def __init__(self, request: JobRequest) -> None:
        self.request = request
        self.job_id = request.job_id
        self.arrival_time = request.arrival_time
        self.segment = request.segment
        self.n_events = request.n_events
        #: When the scheduler dispatched the job (for delayed policies this
        #: is the period boundary; otherwise it equals ``arrival_time``).
        self.schedule_time: float = request.arrival_time
        self.first_start: Optional[float] = None
        self.completion: Optional[float] = None
        self.events_done: int = 0
        self.state = JobState.PENDING
        self.subjobs: List[Subjob] = []
        self._next_subjob_seq = itertools.count()

    # -- structure -----------------------------------------------------------

    def make_root_subjob(self) -> "Subjob":
        """Create the single subjob covering the whole job.

        Must be called exactly once, before any splitting.
        """
        if self.subjobs:
            raise SchedulingError(f"job {self.job_id} already has subjobs")
        subjob = Subjob(self, self.segment)
        self.subjobs.append(subjob)
        return subjob

    def make_subjobs(self, segments: List[Interval]) -> List["Subjob"]:
        """Create subjobs tiling the job from a partition of its segment."""
        if self.subjobs:
            raise SchedulingError(f"job {self.job_id} already has subjobs")
        total = sum(s.length for s in segments)
        if total != self.n_events:
            raise SchedulingError(
                f"segments cover {total} events, job has {self.n_events}"
            )
        self.subjobs = [Subjob(self, seg) for seg in sorted(segments)]
        return list(self.subjobs)

    def new_subjob_seq(self) -> int:
        return next(self._next_subjob_seq)

    # -- progress ------------------------------------------------------------

    def mark_started(self, now: float) -> None:
        if self.first_start is None:
            self.first_start = now
            self.state = JobState.ACTIVE

    def note_progress(self, events: int) -> None:
        self.events_done += events
        if self.events_done > self.n_events:
            raise SchedulingError(
                f"job {self.job_id} progressed past its size "
                f"({self.events_done}/{self.n_events})"
            )

    @property
    def remaining_events(self) -> int:
        return self.n_events - self.events_done

    @property
    def done(self) -> bool:
        return self.state is JobState.DONE

    def maybe_complete(self, now: float) -> bool:
        """Transition to DONE when all work is finished; returns True on
        the transition."""
        if self.state is JobState.DONE:
            return False
        if self.events_done == self.n_events and all(
            s.state is SubjobState.DONE for s in self.subjobs
        ):
            self.state = JobState.DONE
            self.completion = now
            return True
        return False

    # -- queries used by policies -------------------------------------------

    def running_subjobs(self) -> List["Subjob"]:
        return [s for s in self.subjobs if s.state is SubjobState.RUNNING]

    def suspended_subjobs(self) -> List["Subjob"]:
        return [s for s in self.subjobs if s.state is SubjobState.SUSPENDED]

    def pending_subjobs(self) -> List["Subjob"]:
        return [s for s in self.subjobs if s.state is SubjobState.PENDING]

    def nodes_held(self) -> int:
        """Number of nodes currently executing this job's subjobs."""
        return len(self.running_subjobs())

    # -- timing --------------------------------------------------------------

    @property
    def waiting_time(self) -> Optional[float]:
        """Submission → first processed event (paper's waiting time)."""
        if self.first_start is None:
            return None
        return self.first_start - self.arrival_time

    @property
    def waiting_time_excl_delay(self) -> Optional[float]:
        """Waiting time with the period delay subtracted (Figs 5/6)."""
        if self.first_start is None:
            return None
        return self.first_start - self.schedule_time

    @property
    def processing_time(self) -> Optional[float]:
        """First processed event → last processed event, including any
        suspended stretches (paper's processing time)."""
        if self.first_start is None or self.completion is None:
            return None
        return self.completion - self.first_start

    # -- invariants ------------------------------------------------------------

    def check_invariants(self) -> None:
        segments = sorted((s.segment for s in self.subjobs))
        cursor = self.segment.start
        for seg in segments:
            if seg.start != cursor:
                raise SchedulingError(
                    f"job {self.job_id}: subjobs do not tile the segment "
                    f"(gap/overlap at {cursor} vs {seg})"
                )
            cursor = seg.end
        if segments and cursor != self.segment.end:
            raise SchedulingError(
                f"job {self.job_id}: subjobs stop at {cursor}, "
                f"segment ends at {self.segment.end}"
            )
        progressed = sum(s.processed for s in self.subjobs)
        if progressed != self.events_done:
            raise SchedulingError(
                f"job {self.job_id}: subjob progress {progressed} != "
                f"events_done {self.events_done}"
            )

    def __repr__(self) -> str:
        return (
            f"Job(#{self.job_id}, {self.segment}, {self.state.value}, "
            f"{self.events_done}/{self.n_events})"
        )


class Subjob:
    """A contiguous sub-segment of one job, processed left to right."""

    __slots__ = (
        "job",
        "seq",
        "sid",
        "segment",
        "processed",
        "state",
        "node",
        "steal_preemptible",
        "origin",
    )

    def __init__(self, job: Job, segment: Interval) -> None:
        if segment.empty:
            raise SchedulingError(f"empty subjob segment {segment}")
        self.job = job
        self.seq = job.new_subjob_seq()
        #: Stable display id; precomputed (job id and seq never change) so
        #: hot-path event labels avoid an f-string per chunk.
        self.sid = f"{job.job_id}.{self.seq}"
        self.segment = segment
        self.processed = 0
        self.state = SubjobState.PENDING
        self.node: Optional["Node"] = None
        #: Set on work-stealing copies: a cached subjob may preempt this one
        #: (Table 3, last bullet of "whenever nodes become available").
        self.steal_preemptible = False
        #: Where a preempted subjob should be put back: ``("nocache",)``,
        #: ``("node", node_id)`` or ``None`` (policy-specific bookkeeping).
        self.origin: Optional[Tuple] = None

    # -- geometry -------------------------------------------------------------

    @property
    def remaining(self) -> Interval:
        """The yet-unprocessed right part of the segment."""
        return Interval(self.segment.start + self.processed, self.segment.end)

    @property
    def remaining_events(self) -> int:
        segment = self.segment
        return segment.end - segment.start - self.processed

    @property
    def done(self) -> bool:
        return self.state is SubjobState.DONE

    # -- progress -------------------------------------------------------------

    def advance(self, events: int) -> None:
        """Record ``events`` more processed events (left to right)."""
        if events < 0:
            raise SchedulingError(f"negative progress {events}")
        if self.processed + events > self.segment.length:
            raise SchedulingError(
                f"subjob {self.sid} progressed past its segment"
            )
        self.processed += events
        self.job.note_progress(events)

    # -- splitting -----------------------------------------------------------

    def split_remaining_at(self, point: int) -> "Subjob":
        """Split the unprocessed part at ``point``; self keeps the left
        piece, the returned new subjob owns ``[point, end)``.

        The subjob must not be RUNNING (preempt it first: the in-flight
        chunk would otherwise straddle the cut).
        """
        if self.state is SubjobState.RUNNING:
            raise SchedulingError(f"cannot split running subjob {self.sid}")
        if self.state is SubjobState.DONE:
            raise SchedulingError(f"cannot split finished subjob {self.sid}")
        remaining = self.remaining
        if not (remaining.start < point < remaining.end):
            raise SchedulingError(
                f"split point {point} not inside remaining {remaining}"
            )
        right = Subjob(self.job, Interval(point, self.segment.end))
        self.segment = Interval(self.segment.start, point)
        self.job.subjobs.append(right)
        return right

    def split_remaining_even(self, parts: int, min_events: int) -> List["Subjob"]:
        """Split the unprocessed part into up to ``parts`` near-equal
        pieces of at least ``min_events``; returns all pieces (self first,
        resized to the leftmost)."""
        pieces = self.remaining.split_even(parts, min_events)
        result = [self]
        current = self
        for piece in pieces[1:]:
            current = current.split_remaining_at(piece.start)
            result.append(current)
        return result

    def __repr__(self) -> str:
        return (
            f"Subjob({self.sid}, {self.segment}, {self.state.value}, "
            f"done={self.processed})"
        )


@dataclass
class MetaSubjob:
    """Uncached subjobs of several jobs sharing one data stripe.

    The first member streamed on a node loads the stripe from tertiary
    storage into the node's cache; later members then hit the cache —
    the stripe crosses the tape robot once per period (Table 4).
    """

    stripe: Interval
    members: List[Subjob] = field(default_factory=list)

    @property
    def arrival_time(self) -> float:
        """Earliest member arrival (Table 4's fairness key)."""
        if not self.members:
            raise SchedulingError("empty meta-subjob")
        return min(s.job.arrival_time for s in self.members)

    @property
    def total_events(self) -> int:
        return sum(s.remaining_events for s in self.members)

    def add(self, subjob: Subjob) -> None:
        if not self.stripe.overlaps(subjob.segment):
            raise SchedulingError(
                f"subjob {subjob.sid} {subjob.segment} outside stripe {self.stripe}"
            )
        # Minimal-subjob-size merging can nudge a member slightly past a
        # stripe boundary; widen the stripe to keep the invariant
        # "members ⊆ stripe" (the overhang is < min_subjob_events).
        self.stripe = self.stripe.hull(subjob.segment)
        self.members.append(subjob)

    def __repr__(self) -> str:
        return f"MetaSubjob({self.stripe}, members={len(self.members)})"
