"""Workload characterization: recover the §2.4 model from a trace.

The inverse of :mod:`repro.workload.generator`: given a job-request trace
(ours, or a real batch-system log converted to :class:`JobRequest`),
estimate the parameters the paper's workload model is built from —

* the arrival rate and the exponential-ness of the inter-arrival gaps,
* the Erlang shape/mean of the job-size distribution (method of moments),
* hot regions of the data space (start-point density scan).

Useful both as a sanity check (our generator round-trips) and as the
path from production logs to a simulation configuration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..core import units
from ..core.errors import WorkloadError
from .jobs import JobRequest


@dataclass(frozen=True)
class ArrivalEstimate:
    rate_per_hour: float
    interarrival_cv: float  # 1.0 for a Poisson process

    @property
    def poisson_like(self) -> bool:
        """CV within 15 % of the exponential's 1.0."""
        return abs(self.interarrival_cv - 1.0) < 0.15


@dataclass(frozen=True)
class JobSizeEstimate:
    mean_events: float
    std_events: float
    erlang_shape: int  # method-of-moments round(mean² / variance)

    @property
    def squared_cv(self) -> float:
        if self.mean_events == 0:
            return math.nan
        return (self.std_events / self.mean_events) ** 2


@dataclass(frozen=True)
class HotRegionEstimate:
    start_fraction: float
    length_fraction: float
    start_share: float  # fraction of all job starts landing here


@dataclass(frozen=True)
class WorkloadProfile:
    n_jobs: int
    span_days: float
    arrivals: ArrivalEstimate
    job_size: JobSizeEstimate
    hot_regions: Tuple[HotRegionEstimate, ...]

    def summary_rows(self) -> List[List[object]]:
        rows: List[List[object]] = [
            ["jobs", self.n_jobs],
            ["span (days)", f"{self.span_days:.1f}"],
            ["arrival rate (jobs/h)", f"{self.arrivals.rate_per_hour:.3f}"],
            ["inter-arrival CV (Poisson: 1)", f"{self.arrivals.interarrival_cv:.2f}"],
            ["mean job size (events)", f"{self.job_size.mean_events:,.0f}"],
            ["Erlang shape (moments)", self.job_size.erlang_shape],
        ]
        for index, region in enumerate(self.hot_regions):
            rows.append(
                [
                    f"hot region {index + 1}",
                    f"[{region.start_fraction:.2f}, "
                    f"{region.start_fraction + region.length_fraction:.2f}) "
                    f"holds {region.start_share:.0%} of starts",
                ]
            )
        return rows


def estimate_arrivals(requests: Sequence[JobRequest]) -> ArrivalEstimate:
    """Rate and inter-arrival CV from a sorted trace."""
    if len(requests) < 3:
        raise WorkloadError("need at least 3 jobs to characterise arrivals")
    times = np.array([r.arrival_time for r in requests], dtype=float)
    gaps = np.diff(times)
    if np.any(gaps < 0):
        raise WorkloadError("trace is not sorted by arrival time")
    mean_gap = float(gaps.mean())
    if mean_gap == 0:
        raise WorkloadError("all jobs arrive simultaneously")
    return ArrivalEstimate(
        rate_per_hour=units.HOUR / mean_gap,
        interarrival_cv=float(gaps.std(ddof=1) / mean_gap),
    )


def estimate_job_size(requests: Sequence[JobRequest]) -> JobSizeEstimate:
    """Erlang parameters by the method of moments: k = mean² / variance."""
    sizes = np.array([r.n_events for r in requests], dtype=float)
    if sizes.size < 3:
        raise WorkloadError("need at least 3 jobs to characterise sizes")
    mean = float(sizes.mean())
    variance = float(sizes.var(ddof=1))
    shape = max(1, int(round(mean**2 / variance))) if variance > 0 else 1
    return JobSizeEstimate(
        mean_events=mean, std_events=math.sqrt(variance), erlang_shape=shape
    )


def find_hot_regions(
    requests: Sequence[JobRequest],
    total_events: int,
    n_bins: int = 40,
    density_threshold: float = 2.0,
) -> Tuple[HotRegionEstimate, ...]:
    """Contiguous bins whose start density exceeds ``density_threshold``
    times uniform, merged into regions."""
    if total_events <= 0:
        raise WorkloadError(f"total_events must be > 0, got {total_events}")
    starts = np.array([r.start_event for r in requests], dtype=float)
    if starts.size == 0:
        return ()
    counts, edges = np.histogram(starts, bins=n_bins, range=(0, total_events))
    uniform = starts.size / n_bins
    hot = counts > density_threshold * uniform
    regions: List[HotRegionEstimate] = []
    index = 0
    while index < n_bins:
        if not hot[index]:
            index += 1
            continue
        begin = index
        while index < n_bins and hot[index]:
            index += 1
        share = float(counts[begin:index].sum()) / starts.size
        regions.append(
            HotRegionEstimate(
                start_fraction=float(edges[begin]) / total_events,
                length_fraction=float(edges[index] - edges[begin]) / total_events,
                start_share=share,
            )
        )
    return tuple(regions)


def characterize(
    requests: Sequence[JobRequest], total_events: int
) -> WorkloadProfile:
    """Full §2.4-style profile of a trace."""
    if not requests:
        raise WorkloadError("empty trace")
    span = requests[-1].arrival_time - requests[0].arrival_time
    return WorkloadProfile(
        n_jobs=len(requests),
        span_days=span / units.DAY,
        arrivals=estimate_arrivals(requests),
        job_size=estimate_job_size(requests),
        hot_regions=find_hot_regions(requests, total_events),
    )
