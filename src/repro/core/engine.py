"""Discrete-event simulation kernel.

A deliberately small, fast, callback-based engine:

* a binary heap orders events by ``(time, priority, sequence)``; heap
  entries are plain ``(time, priority, seq, event)`` tuples so sift
  comparisons run natively in C instead of through rich-comparison
  dunders on the event records;
* cancellation is lazy (events carry a flag; the dispatcher skips dead
  entries), so cancelling is O(1) and preemption-heavy policies stay cheap;
* ties at the same timestamp dispatch in a documented order
  (:class:`~repro.core.events.EventPriority`), making every simulation
  fully deterministic for a given seed.

The paper's simulator only models data transfers, never inter-node
messages, so process-style coroutines (à la simpy) would buy nothing here;
plain callbacks keep the hot loop allocation-free and ~5x faster in
profiling runs on this workload.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, List, Optional, Tuple

from ..obs.hooks import NULL_BUS, HookBus, kinds
from .errors import EngineError, InvariantViolation
from .events import EngineStats, EventPriority, ScheduledEvent

#: One calendar slot: the tuple key heapq compares, plus the payload.
_HeapEntry = Tuple[float, int, int, ScheduledEvent]


class Engine:
    """The simulation clock and event calendar.

    >>> eng = Engine()
    >>> out = []
    >>> _ = eng.call_at(2.0, out.append, "b")
    >>> _ = eng.call_at(1.0, out.append, "a")
    >>> eng.run()
    >>> out
    ['a', 'b']
    >>> eng.now
    2.0
    """

    def __init__(
        self,
        start_time: float = 0.0,
        obs: HookBus = NULL_BUS,
        check_invariants: bool = False,
    ) -> None:
        self._now = float(start_time)
        #: Calendar entries: ``(time, priority, seq, event)`` — ``seq`` is
        #: unique, so tuple comparisons never reach the event payload.
        self._heap: List[_HeapEntry] = []
        self._seq = 0
        self._running = False
        self._stopped = False
        self.stats = EngineStats()
        #: Observability bus; per-dispatch emission is additionally gated
        #: by ``obs.engine_dispatch`` (high volume, off by default).
        self.obs = obs
        #: Sim-sanitizer mode: assert monotone dispatch on every event (one
        #: extra branch per dispatch when on, a single attribute test when
        #: off).  Deep heap validation is :meth:`validate_heap`.
        self.check_invariants = bool(check_invariants)

    # -- clock ---------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def __len__(self) -> int:
        """Number of events still in the calendar (including cancelled)."""
        return len(self._heap)

    # -- scheduling ------------------------------------------------------------

    def call_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = EventPriority.TIMER,
        label: str = "",
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` at absolute time ``time``.

        Returns a handle whose :meth:`~ScheduledEvent.cancel` removes it.
        Scheduling in the past raises :class:`EngineError`; scheduling *at*
        the current instant is allowed (the event runs in this dispatch
        round, after already-queued events of lower ``(priority, seq)``).
        """
        if time < self._now:
            raise EngineError(
                f"cannot schedule at t={time:.6f} < now={self._now:.6f}"
            )
        if callback is None:
            raise EngineError("callback must not be None")
        time = float(time)
        priority = int(priority)
        seq = self._seq
        event = ScheduledEvent(time, priority, seq, callback, args, False, label)
        self._seq = seq + 1
        heapq.heappush(self._heap, (time, priority, seq, event))
        self.stats.scheduled += 1
        if len(self._heap) > self.stats.max_queue:
            self.stats.max_queue = len(self._heap)
        return event

    def call_after(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = EventPriority.TIMER,
        label: str = "",
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` ``delay`` seconds from now."""
        if delay < 0:
            raise EngineError(f"negative delay {delay!r}")
        return self.call_at(
            self._now + delay, callback, *args, priority=priority, label=label
        )

    def call_at_batch(
        self,
        entries: Iterable[Tuple[float, Callable[..., None], Tuple[Any, ...], str]],
        priority: int = EventPriority.TIMER,
    ) -> int:
        """Bulk-schedule ``(time, callback, args, label)`` entries.

        Calendar fast path for homogeneous pre-generated event streams
        (e.g. priming a run from an explicit workload trace): entries are
        appended in one pass and the heap property is restored with a
        single O(n) ``heapify`` instead of n O(log n) pushes — and when
        the calendar is empty and the batch arrives time-sorted (the
        common trace case), the appended list *is* already a valid heap
        and even the heapify is skipped.

        Sequence numbers are assigned in input order, so same-time
        entries dispatch in input order — exactly as if each entry had
        been passed to :meth:`call_at` in turn.  Returns the number of
        events scheduled.
        """
        heap = self._heap
        was_empty = not heap
        priority = int(priority)
        seq = self._seq
        now = self._now
        in_order = True
        last_time = now  # every accepted time is >= now
        count = 0
        for time, callback, args, label in entries:
            if time < now:
                raise EngineError(
                    f"cannot schedule at t={time:.6f} < now={now:.6f}"
                )
            if callback is None:
                raise EngineError("callback must not be None")
            time = float(time)
            event = ScheduledEvent(time, priority, seq, callback, args, False, label)
            heap.append((time, priority, seq, event))
            if time < last_time:
                in_order = False
            last_time = time
            seq += 1
            count += 1
        self._seq = seq
        if count and not (was_empty and in_order):
            # A sorted run appended to an empty calendar is already a
            # valid heap; anything else needs one linear-time repair.
            heapq.heapify(heap)
        self.stats.scheduled += count
        if len(heap) > self.stats.max_queue:
            self.stats.max_queue = len(heap)
        return count

    def cancel(self, event: Optional[ScheduledEvent]) -> None:
        """Cancel a previously scheduled event (no-op on ``None``)."""
        if event is not None and not event.cancelled:
            event.cancel()
            self.stats.cancelled += 1

    def timer(
        self,
        callback: Callable[..., None],
        *args: Any,
        priority: int = EventPriority.TIMER,
        label: str = "",
    ) -> "Timer":
        """A reusable cancellable timer bound to this engine.

        Unlike raw :meth:`call_at` handles, a :class:`Timer` can be
        re-armed: scheduling it again first cancels the pending firing, so
        holders never leak stale events (retry/backoff logic, watchdogs).
        """
        return Timer(self, callback, args, priority=priority, label=label)

    # -- execution -------------------------------------------------------------

    def peek_time(self) -> Optional[float]:
        """Time of the next active event, or ``None`` if the calendar is
        empty."""
        self._drop_cancelled_head()
        return self._heap[0][0] if self._heap else None

    def step(self) -> bool:
        """Dispatch the single next active event.

        Returns ``False`` when the calendar is empty.
        """
        self._drop_cancelled_head()
        if not self._heap:
            return False
        event = heapq.heappop(self._heap)[3]
        if self.check_invariants and event.time < self._now:
            raise InvariantViolation(
                f"non-monotone dispatch: event {event.label!r} at "
                f"t={event.time:.6f} popped while now={self._now:.6f}"
            )
        self._now = event.time
        self.stats.dispatched += 1
        if self.obs.engine_dispatch:
            self._emit_dispatch(event)
        event.callback(*event.args)
        return True

    def run(self, until: Optional[float] = None) -> None:
        """Run until the calendar drains or the clock would pass ``until``.

        When ``until`` is given, the clock is advanced to exactly ``until``
        on return (even if the last event fired earlier), so back-to-back
        ``run(until=...)`` calls compose naturally.
        """
        if self._running:
            raise EngineError("engine is already running (reentrant run())")
        self._running = True
        self._stopped = False
        heap = self._heap
        obs = self.obs
        stats = self.stats
        heappop = heapq.heappop
        checked = self.check_invariants
        try:
            while heap and not self._stopped:
                event = heap[0][3]
                if event.cancelled:
                    heappop(heap)
                    continue
                time = event.time
                if until is not None and time > until:
                    break
                heappop(heap)
                if checked and time < self._now:
                    raise InvariantViolation(
                        f"non-monotone dispatch: event {event.label!r} at "
                        f"t={time:.6f} popped while now={self._now:.6f}"
                    )
                self._now = time
                stats.dispatched += 1
                if obs.engine_dispatch:
                    self._emit_dispatch(event)
                event.callback(*event.args)
        finally:
            self._running = False
        if until is not None and self._now < until and not self._stopped:
            self._now = until

    def stop(self) -> None:
        """Request :meth:`run` to return after the current callback."""
        self._stopped = True

    # -- validation -------------------------------------------------------------

    def validate_heap(self) -> None:
        """Deep calendar consistency check (sim-sanitizer mode).

        Verifies the binary-heap ordering property and that no *active*
        event lies in the past.  O(n) — called from the simulator's
        periodic probe, never from the dispatch loop.
        """
        heap = self._heap
        for index, entry in enumerate(heap):
            event = entry[3]
            for child_index in (2 * index + 1, 2 * index + 2):
                if child_index < len(heap) and heap[child_index][:3] < entry[:3]:
                    raise InvariantViolation(
                        f"event heap property violated at index {index}: "
                        f"parent (t={event.time:.6f}, prio={event.priority}, "
                        f"seq={event.seq}) sorts after child at "
                        f"{child_index} (t={heap[child_index][0]:.6f})"
                    )
            if not event.cancelled and event.time < self._now:
                raise InvariantViolation(
                    f"active event {event.label!r} scheduled at "
                    f"t={event.time:.6f} lies in the past (now="
                    f"{self._now:.6f})"
                )

    # -- internals --------------------------------------------------------------

    def _emit_dispatch(self, event: ScheduledEvent) -> None:
        # Guarded at both call sites with `if obs.engine_dispatch:` — the
        # guard stays inline in the hot loop to avoid a method call per
        # dispatched event.
        self.obs.emit(  # simlint: disable=SIM004
            event.time,
            kinds.ENGINE_DISPATCH,
            "engine",
            label=event.label or getattr(event.callback, "__name__", "?"),
            priority=event.priority,
            seq=event.seq,
        )

    def _drop_cancelled_head(self) -> None:
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Engine(now={self._now:.3f}, pending={len(self._heap)}, "
            f"dispatched={self.stats.dispatched})"
        )


class Timer:
    """A one-shot, re-armable timer over a single calendar slot.

    At most one firing is ever pending: :meth:`schedule_at` /
    :meth:`schedule_after` cancel any previous arming before scheduling
    the new one, and :meth:`cancel` is idempotent.  The callback and its
    arguments are fixed at construction (see :meth:`Engine.timer`).

    >>> eng = Engine()
    >>> fired = []
    >>> t = eng.timer(fired.append, "x")
    >>> _ = t.schedule_at(5.0)
    >>> _ = t.schedule_at(1.0)   # re-arm: the t=5 firing is cancelled
    >>> eng.run()
    >>> (fired, eng.now)
    (['x'], 1.0)
    """

    __slots__ = ("engine", "callback", "args", "priority", "label", "_event")

    def __init__(
        self,
        engine: Engine,
        callback: Callable[..., None],
        args: Tuple[Any, ...] = (),
        priority: int = EventPriority.TIMER,
        label: str = "",
    ) -> None:
        self.engine = engine
        self.callback = callback
        self.args = args
        self.priority = int(priority)
        self.label = label
        self._event: Optional[ScheduledEvent] = None

    @property
    def active(self) -> bool:
        """True while a firing is pending."""
        return self._event is not None and not self._event.cancelled

    @property
    def fire_time(self) -> Optional[float]:
        """Absolute time of the pending firing (None when disarmed)."""
        return self._event.time if self.active and self._event else None

    def schedule_at(self, time: float) -> ScheduledEvent:
        """Arm (or re-arm) the timer to fire at absolute ``time``."""
        self.cancel()
        self._event = self.engine.call_at(
            time,
            self._fire,
            priority=self.priority,
            label=self.label,
        )
        return self._event

    def schedule_after(self, delay: float) -> ScheduledEvent:
        """Arm (or re-arm) the timer ``delay`` seconds from now."""
        return self.schedule_at(self.engine.now + delay)

    def cancel(self) -> None:
        """Disarm the pending firing, if any (idempotent)."""
        if self._event is not None:
            self.engine.cancel(self._event)
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self.callback(*self.args)
