"""Units and constants used throughout the simulator.

All simulation times are in **seconds** (floats) and all data sizes in
**bytes** (ints).  This module centralises the conversion helpers so that
configuration files, policies and reports can speak in natural units
(hours, days, GB, events) without scattering magic numbers.
"""

from __future__ import annotations

# --- data sizes -----------------------------------------------------------

#: One kilobyte.  The paper uses SI-style decimal units throughout
#: (600 KB events, 2 TB data space, 10 MB/s disks), so we do too.
KB: int = 1_000
MB: int = 1_000_000
GB: int = 1_000_000_000
TB: int = 1_000_000_000_000

# --- times ----------------------------------------------------------------

SECOND: float = 1.0
MINUTE: float = 60.0
HOUR: float = 3_600.0
DAY: float = 86_400.0
WEEK: float = 7 * DAY


#: Absolute tolerance for comparing simulation times (seconds).  Event
#: times are sums of float durations, so exact equality is fragile; the
#: simulator's shortest meaningful interval is ~1e-3 s (a single cached
#: event), leaving nine orders of magnitude of headroom.
TIME_EPSILON: float = 1e-9


def times_equal(a: float, b: float, tol: float = TIME_EPSILON) -> bool:
    """Tolerance-based equality for simulation times (simlint SIM003).

    >>> times_equal(0.1 + 0.2, 0.3)
    True
    >>> times_equal(1.0, 1.1)
    False
    """
    return abs(a - b) <= tol


def times_close(a: float, b: float, rel: float = 1e-9, tol: float = TIME_EPSILON) -> bool:
    """Relative-plus-absolute closeness for large simulation times.

    Use when comparing times far from zero (e.g. multi-week horizons)
    where a pure absolute tolerance is too strict.

    >>> times_close(40 * DAY, 40 * DAY + 1e-6)
    True
    """
    return abs(a - b) <= max(tol, rel * max(abs(a), abs(b)))


def hours(x: float) -> float:
    """Convert hours to seconds."""
    return x * HOUR


def days(x: float) -> float:
    """Convert days to seconds."""
    return x * DAY


def per_hour(rate: float) -> float:
    """Convert a rate expressed per hour into a rate per second."""
    return rate / HOUR


def fmt_duration(seconds: float) -> str:
    """Format a duration for human-readable reports.

    Picks the largest natural unit, mirroring the axis labels of the
    paper's figures (``1 s``, ``1 mn``, ``1 h``, ``1 day``, ``1 week``).

    >>> fmt_duration(90)
    '1.5mn'
    >>> fmt_duration(7200)
    '2h'
    """
    if seconds != seconds:  # NaN
        return "n/a"
    if seconds < 0:
        return "-" + fmt_duration(-seconds)
    for limit, unit, name in (
        (MINUTE, SECOND, "s"),
        (HOUR, MINUTE, "mn"),
        (DAY, HOUR, "h"),
        (WEEK, DAY, "day"),
        (float("inf"), WEEK, "week"),
    ):
        if seconds < limit:
            value = seconds / unit
            text = f"{value:.3g}"
            return f"{text}{name}"
    raise AssertionError("unreachable")


def fmt_size(nbytes: float) -> str:
    """Format a byte count using decimal units.

    >>> fmt_size(600_000)
    '600KB'
    """
    for limit, unit, name in (
        (KB, 1, "B"),
        (MB, KB, "KB"),
        (GB, MB, "MB"),
        (TB, GB, "GB"),
        (float("inf"), TB, "TB"),
    ):
        if nbytes < limit:
            value = nbytes / unit
            text = f"{value:.4g}"
            return f"{text}{name}"
    raise AssertionError("unreachable")


def parse_duration(text: str) -> float:
    """Parse a compact duration string into seconds.

    Accepts the suffixes ``s``, ``mn``/``min``/``m``, ``h``, ``d``/``day``/
    ``days``, ``w``/``week``/``weeks``.  A bare number is read as seconds.

    >>> parse_duration('11h')
    39600.0
    >>> parse_duration('2 days')
    172800.0
    """
    text = text.strip().lower().replace(" ", "")
    suffixes = (
        ("weeks", WEEK),
        ("week", WEEK),
        ("days", DAY),
        ("day", DAY),
        ("min", MINUTE),
        ("mn", MINUTE),
        ("w", WEEK),
        ("d", DAY),
        ("h", HOUR),
        ("m", MINUTE),
        ("s", SECOND),
    )
    for suffix, unit in suffixes:
        if text.endswith(suffix):
            return float(text[: -len(suffix)]) * unit
    return float(text)
