"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
applications embedding the simulator can catch one base class.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """A simulation configuration is inconsistent or out of range."""


class SchedulingError(ReproError):
    """A scheduling policy violated an invariant (e.g. double-started a
    subjob, released a job's last node, or scheduled work on a busy node)."""


class EngineError(ReproError):
    """The discrete-event engine was used incorrectly (e.g. scheduling an
    event in the past, or running a finished engine)."""


class CacheError(ReproError):
    """A disk-cache operation violated an invariant (e.g. inserting an
    extent larger than the cache capacity)."""


class IntervalError(ReproError):
    """An interval operation received malformed bounds."""


class WorkloadError(ReproError):
    """A workload description or trace is malformed."""


class ObsError(ReproError):
    """The observability layer was misused (e.g. attaching a sink to the
    shared null bus, or exporting a trace with no recorded events)."""


class InvariantViolation(ReproError):
    """A runtime sim-sanitizer check failed (``--check-invariants``):
    non-monotone event dispatch, corrupted cache accounting, an illegal
    subjob state transition, or a double-assigned subjob.  Always a bug in
    the simulator or a policy, never a user error."""


class ExecError(ReproError):
    """The execution layer (``repro.exec``) failed a batch: one or more
    specs errored in ``raise`` mode, or a journal/cache store is
    unusable."""


class OverloadedError(ReproError):
    """Raised by strict analyses when asked for steady-state statistics of
    a simulation that left steady state (queues growing without bound)."""
