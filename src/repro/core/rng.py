"""Deterministic, component-named random-number streams.

Reproducibility discipline: a single root seed fans out into independent
named streams (one per stochastic component: arrivals, job sizes, start
points, policy tie-breaking, ...).  Adding a new consumer never perturbs
the draws seen by existing consumers, because each stream is derived from
``(root seed, stream name)`` rather than from a shared sequential state.
"""

from __future__ import annotations

import zlib
from typing import Dict, Tuple

import numpy as np


class RandomStreams:
    """A factory of independent named :class:`numpy.random.Generator` s.

    >>> streams = RandomStreams(42)
    >>> arrivals = streams.get("arrivals")
    >>> sizes = streams.get("sizes")
    >>> arrivals is streams.get("arrivals")
    True

    The stream for a given ``(seed, name)`` pair is identical across runs,
    platforms and numpy versions that share the Philox bit-stream.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed this factory was built from."""
        return self._seed

    def get(self, name: str) -> np.random.Generator:
        """Return the (memoised) generator for stream ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            gen = self._make(name)
            self._streams[name] = gen
        return gen

    def spawn(self, name: str) -> "RandomStreams":
        """Derive a child factory, e.g. one per simulation replication."""
        return RandomStreams(self._derive_key(name))

    # -- registry introspection --------------------------------------------

    def names(self) -> Tuple[str, ...]:
        """Names of every stream handed out so far, sorted.

        The static flow lint (SIM101) proves stream *ownership* ahead of
        time; this is the runtime counterpart — tests and debug dumps can
        assert exactly which streams a scenario touched.
        """
        return tuple(sorted(self._streams))

    def __len__(self) -> int:
        return len(self._streams)

    def __contains__(self, name: object) -> bool:
        return name in self._streams

    # -- internals ---------------------------------------------------------

    def _derive_key(self, name: str) -> int:
        # crc32 is stable across Python versions (unlike hash()).
        return (self._seed << 32) ^ zlib.crc32(name.encode("utf-8"))

    def _make(self, name: str) -> np.random.Generator:
        seq = np.random.SeedSequence(
            entropy=self._seed, spawn_key=(zlib.crc32(name.encode("utf-8")),)
        )
        return np.random.Generator(np.random.Philox(seq))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomStreams(seed={self._seed}, streams={sorted(self._streams)})"
