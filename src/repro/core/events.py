"""Event records for the discrete-event engine.

The engine dispatches :class:`ScheduledEvent` s in ``(time, priority,
sequence)`` order.  Priorities give deterministic, documented ordering to
simultaneous events: e.g. a subjob completion at time *t* must be processed
before a job arrival at the same instant, so that the freed node is visible
to the arrival logic — matching the paper's sequential master-node
scheduler, which handles one notification at a time.

The engine's calendar stores ``(time, priority, seq, event)`` tuples so
heap sift comparisons run on native tuples in C; :class:`ScheduledEvent`
itself is a ``__slots__`` record and defines no ordering.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable, Optional, Tuple


class EventPriority(enum.IntEnum):
    """Dispatch order for simultaneous events (lower runs first)."""

    #: Completion of a chunk / subjob — frees resources first.
    COMPLETION = 0
    #: Fault-injection events (node crash/recovery, tertiary stalls): a
    #: chunk completing at the same instant as a crash counts as finished,
    #: but scheduling activity at that instant already sees the node down.
    FAULT = 5
    #: Period boundaries of the delayed scheduler.
    PERIOD = 10
    #: New job arrivals.
    ARRIVAL = 20
    #: Control-message deliveries on an unreliable channel: a dispatch
    #: arriving at the same instant as an arrival lands first (the node
    #: was committed when the message was sent), but after completions
    #: and faults, which decide whether it still has a target.
    MESSAGE = 25
    #: Fairness timeouts, load-estimator updates and other housekeeping.
    TIMER = 30
    #: Metric sampling probes — observe the state everyone else produced.
    PROBE = 40


class ScheduledEvent:
    """An event in the engine's calendar.

    The engine keys its heap on ``(time, priority, seq)`` tuples (with
    ``seq`` as the unique tiebreaker), so the record itself carries only
    payload and needs no comparison dunders — ``__slots__`` keeps
    construction and attribute access on the dispatch hot path cheap.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled", "label")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[..., None],
        args: Tuple[Any, ...] = (),
        cancelled: bool = False,
        label: str = "",
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = cancelled
        self.label = label

    def cancel(self) -> None:
        """Mark the event so the engine skips it (O(1), lazy deletion)."""
        self.cancelled = True

    @property
    def active(self) -> bool:
        return not self.cancelled

    def sort_key(self) -> Tuple[float, int, int]:
        """The ``(time, priority, seq)`` key the engine orders by."""
        return (self.time, self.priority, self.seq)

    def __repr__(self) -> str:
        return (
            f"ScheduledEvent(time={self.time!r}, priority={self.priority!r}, "
            f"seq={self.seq!r}, cancelled={self.cancelled!r}, "
            f"label={self.label!r})"
        )


#: Convenient alias used in type hints of schedulers.
EventHandle = ScheduledEvent


@dataclass
class EngineStats:
    """Counters describing an engine run, useful for perf regressions."""

    dispatched: int = 0
    scheduled: int = 0
    cancelled: int = 0
    max_queue: int = 0

    def snapshot(self) -> "EngineStats":
        return EngineStats(
            dispatched=self.dispatched,
            scheduled=self.scheduled,
            cancelled=self.cancelled,
            max_queue=self.max_queue,
        )


def describe_event(event: Optional[ScheduledEvent]) -> str:
    """Human-readable one-liner for logging/debugging."""
    if event is None:
        return "<none>"
    state = "cancelled" if event.cancelled else "active"
    label = event.label or getattr(event.callback, "__name__", "?")
    return f"<event t={event.time:.3f} prio={event.priority} {label} ({state})>"
