"""Event records for the discrete-event engine.

The engine dispatches :class:`ScheduledEvent` s in ``(time, priority,
sequence)`` order.  Priorities give deterministic, documented ordering to
simultaneous events: e.g. a subjob completion at time *t* must be processed
before a job arrival at the same instant, so that the freed node is visible
to the arrival logic — matching the paper's sequential master-node
scheduler, which handles one notification at a time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Tuple


class EventPriority(enum.IntEnum):
    """Dispatch order for simultaneous events (lower runs first)."""

    #: Completion of a chunk / subjob — frees resources first.
    COMPLETION = 0
    #: Fault-injection events (node crash/recovery, tertiary stalls): a
    #: chunk completing at the same instant as a crash counts as finished,
    #: but scheduling activity at that instant already sees the node down.
    FAULT = 5
    #: Period boundaries of the delayed scheduler.
    PERIOD = 10
    #: New job arrivals.
    ARRIVAL = 20
    #: Fairness timeouts, load-estimator updates and other housekeeping.
    TIMER = 30
    #: Metric sampling probes — observe the state everyone else produced.
    PROBE = 40


@dataclass(order=True)
class ScheduledEvent:
    """An event in the engine's calendar.

    Instances are ordered by ``(time, priority, seq)``; the payload fields
    are excluded from comparisons.
    """

    time: float
    priority: int
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: Tuple[Any, ...] = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)
    label: str = field(compare=False, default="")

    def cancel(self) -> None:
        """Mark the event so the engine skips it (O(1), lazy deletion)."""
        self.cancelled = True

    @property
    def active(self) -> bool:
        return not self.cancelled


#: Convenient alias used in type hints of schedulers.
EventHandle = ScheduledEvent


@dataclass
class EngineStats:
    """Counters describing an engine run, useful for perf regressions."""

    dispatched: int = 0
    scheduled: int = 0
    cancelled: int = 0
    max_queue: int = 0

    def snapshot(self) -> "EngineStats":
        return EngineStats(
            dispatched=self.dispatched,
            scheduled=self.scheduled,
            cancelled=self.cancelled,
            max_queue=self.max_queue,
        )


def describe_event(event: Optional[ScheduledEvent]) -> str:
    """Human-readable one-liner for logging/debugging."""
    if event is None:
        return "<none>"
    state = "cancelled" if event.cancelled else "active"
    label = event.label or getattr(event.callback, "__name__", "?")
    return f"<event t={event.time:.3f} prio={event.priority} {label} ({state})>"
