"""Core infrastructure: units, errors, RNG streams and the DES kernel."""

from .engine import Engine
from .errors import (
    CacheError,
    ConfigurationError,
    EngineError,
    IntervalError,
    InvariantViolation,
    OverloadedError,
    ReproError,
    SchedulingError,
    WorkloadError,
)
from .events import EventPriority, ScheduledEvent
from .rng import RandomStreams
from . import units

__all__ = [
    "Engine",
    "EventPriority",
    "ScheduledEvent",
    "RandomStreams",
    "units",
    "ReproError",
    "ConfigurationError",
    "SchedulingError",
    "EngineError",
    "CacheError",
    "IntervalError",
    "InvariantViolation",
    "WorkloadError",
    "OverloadedError",
]
