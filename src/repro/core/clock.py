"""The one sanctioned wall-clock source (simlint rule SIM001).

Simulation logic must never read the host clock: every timing decision
inside a run derives from :attr:`repro.core.engine.Engine.now`, which is
what makes runs bit-deterministic for a given seed.  The only legitimate
wall-clock consumers are *meta* measurements — "how long did this sweep
take on my machine" — and they all funnel through :func:`wall_clock`
here, so the static analyser can allowlist exactly one module.

``wall_clock`` is monotonic and has no defined epoch: only differences
between two calls are meaningful.
"""

from __future__ import annotations

import time


def wall_clock() -> float:
    """Seconds on a monotonic high-resolution host clock.

    For measuring elapsed *real* time around a simulation or benchmark;
    never for anything that influences simulated behaviour.
    """
    return time.perf_counter()
