"""Setup shim for environments whose pip cannot do PEP 660 editable
installs (all metadata lives in pyproject.toml; the console script is
repeated here so legacy ``setup.py develop`` installs it too)."""

from setuptools import setup

setup(
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
