"""Tests for the fault-injection subsystem (repro.faults).

Covers the failure processes (schedule determinism, horizon handling,
scripted traces), the retry/backoff recovery policy, scripted injection
through a live simulation under the sim-sanitizer, and bit-deterministic
replay of stochastic faulted runs.
"""

import pytest

from repro.core import units
from repro.core.engine import Engine
from repro.core.rng import RandomStreams
from repro.faults import FaultEvent, RecoveryManager, backoff_delay, build_fault_schedule
from repro.faults.processes import (
    ACTION_FAIL,
    ACTION_RECOVER,
    ACTION_STALL_END,
    ACTION_STALL_START,
)
from repro.sched.base import create_policy
from repro.sim.config import FaultConfig, ScriptedFault, quick_config
from repro.sim.export import result_summary_dict
from repro.sim.simulator import Simulation, run_simulation
from repro.workload.jobs import SubjobState

from .helpers import make_subjob
from .policy_helpers import micro_config, trace


def _checked_sim(policy, requests, config):
    """A Simulation with the sim-sanitizer enabled."""
    return Simulation(
        config, create_policy(policy), trace=requests, check_invariants=True
    )


# ---------------------------------------------------------------------------
# backoff


class TestBackoffDelay:
    def test_exponential_schedule(self):
        config = FaultConfig(
            retry_backoff_base=60.0,
            retry_backoff_factor=2.0,
            retry_backoff_max=1 * units.HOUR,
        )
        assert backoff_delay(1, config) == pytest.approx(60.0)
        assert backoff_delay(2, config) == pytest.approx(120.0)
        assert backoff_delay(3, config) == pytest.approx(240.0)
        assert backoff_delay(6, config) == pytest.approx(1920.0)
        # attempt 7 would be 3840 s; the 1 h ceiling kicks in.
        assert backoff_delay(7, config) == pytest.approx(3600.0)
        assert backoff_delay(50, config) == pytest.approx(3600.0)

    def test_flat_schedule_with_factor_one(self):
        config = FaultConfig(retry_backoff_base=30.0, retry_backoff_factor=1.0)
        assert backoff_delay(1, config) == backoff_delay(10, config) == 30.0

    def test_invalid_attempt_raises(self):
        with pytest.raises(ValueError):
            backoff_delay(0, FaultConfig())


# ---------------------------------------------------------------------------
# failure processes


class TestFaultSchedule:
    def test_same_seed_same_schedule(self):
        config = FaultConfig(node_mtbf=6 * units.HOUR, node_mttr=units.HOUR)
        horizon = 10 * units.DAY
        first = build_fault_schedule(config, 4, RandomStreams(11), horizon)
        second = build_fault_schedule(config, 4, RandomStreams(11), horizon)
        other = build_fault_schedule(config, 4, RandomStreams(12), horizon)
        assert first == second
        assert first != other
        assert first  # 4 nodes x 10 days at 6 h MTBF: certainly non-empty

    def test_alternating_renewal_per_node(self):
        config = FaultConfig(node_mtbf=6 * units.HOUR, node_mttr=units.HOUR)
        schedule = build_fault_schedule(
            config, 3, RandomStreams(3), 20 * units.DAY
        )
        for node_id in range(3):
            actions = [e.action for e in schedule if e.node_id == node_id]
            # Strictly alternating fail/recover, starting with a failure.
            assert actions[::2] == [ACTION_FAIL] * len(actions[::2])
            assert actions[1::2] == [ACTION_RECOVER] * len(actions[1::2])
            times = [e.time for e in schedule if e.node_id == node_id]
            assert times == sorted(times)

    def test_horizon_rule(self):
        config = FaultConfig(node_mtbf=6 * units.HOUR, node_mttr=units.HOUR)
        horizon = 5 * units.DAY
        schedule = build_fault_schedule(config, 2, RandomStreams(0), horizon)
        # No fault *starts* at/after the horizon; the recovery paired with
        # a late crash may legitimately fall past it (open downtime).
        assert all(
            e.time < horizon
            for e in schedule
            if e.action in (ACTION_FAIL, ACTION_STALL_START)
        )

    def test_zero_mtbf_disables_crashes(self):
        config = FaultConfig(node_mtbf=0.0, node_mttr=units.HOUR)
        assert build_fault_schedule(config, 4, RandomStreams(0), units.DAY) == []

    def test_scripted_replaces_stochastic(self):
        config = FaultConfig(
            node_mtbf=units.HOUR,  # would generate many crashes...
            scripted=(ScriptedFault(time=50.0, duration=25.0, node_id=1),),
        )
        schedule = build_fault_schedule(config, 2, RandomStreams(0), units.DAY)
        assert schedule == [
            FaultEvent(50.0, ACTION_FAIL, 1),
            FaultEvent(75.0, ACTION_RECOVER, 1),
        ]

    def test_scripted_stall_events(self):
        config = FaultConfig(
            scripted=(ScriptedFault(time=10.0, duration=5.0, kind="stall"),)
        )
        schedule = build_fault_schedule(config, 2, RandomStreams(0), units.DAY)
        assert schedule == [
            FaultEvent(10.0, ACTION_STALL_START),
            FaultEvent(15.0, ACTION_STALL_END),
        ]

    def test_scripted_crash_out_of_range_raises(self):
        config = FaultConfig(
            scripted=(ScriptedFault(time=10.0, duration=5.0, node_id=7),)
        )
        with pytest.raises(ValueError):
            build_fault_schedule(config, 2, RandomStreams(0), units.DAY)

    def test_recover_sorts_before_fail_at_same_instant(self):
        # Back-to-back scripted crashes: recover at t and the next fail at
        # the same t must apply recover first.
        config = FaultConfig(
            scripted=(
                ScriptedFault(time=10.0, duration=10.0, node_id=0),
                ScriptedFault(time=20.0, duration=10.0, node_id=0),
            )
        )
        schedule = build_fault_schedule(config, 1, RandomStreams(0), units.DAY)
        at_twenty = [e.action for e in schedule if e.time == 20.0]
        assert at_twenty == [ACTION_RECOVER, ACTION_FAIL]


# ---------------------------------------------------------------------------
# recovery manager (unit level, stub policy)


class _FakeNode:
    def __init__(self, node_id: int = 0) -> None:
        self.node_id = node_id


class _StubPolicy:
    """Minimal policy surface the RecoveryManager interacts with."""

    def __init__(self) -> None:
        self.node = None
        self.started = []

    def pick_retry_node(self, subjob):
        return self.node

    def start_on(self, node, subjob):
        subjob.state = SubjobState.RUNNING
        self.started.append((node.node_id, subjob.sid))


class TestRecoveryManager:
    def _manager(self, **config_overrides):
        engine = Engine()
        policy = _StubPolicy()
        manager = RecoveryManager(engine, policy, FaultConfig(**config_overrides))
        return engine, policy, manager

    def test_retry_waits_for_backoff_then_dispatches(self):
        engine, policy, manager = self._manager(retry_backoff_base=60.0)
        subjob = make_subjob(0, 100)
        subjob.state = SubjobState.SUSPENDED
        policy.node = _FakeNode(1)
        manager.add(subjob)
        assert manager.pending == 1
        assert manager.drain() == 0  # not due yet
        engine.run(until=59.0)
        assert policy.started == []
        engine.run(until=61.0)  # backoff timer fires at t=60
        assert policy.started == [(1, subjob.sid)]
        assert manager.pending == 0
        assert manager.stats_retries == 1

    def test_no_idle_node_keeps_entry_for_next_drain(self):
        engine, policy, manager = self._manager(retry_backoff_base=60.0)
        subjob = make_subjob(0, 100)
        subjob.state = SubjobState.SUSPENDED
        policy.node = None  # whole cluster busy/down
        manager.add(subjob)
        engine.run(until=120.0)
        assert manager.pending == 1  # still waiting for a node
        policy.node = _FakeNode(0)
        assert manager.drain() == 1
        assert manager.pending == 0

    def test_stale_entry_dropped_when_policy_already_resumed(self):
        engine, policy, manager = self._manager(retry_backoff_base=60.0)
        subjob = make_subjob(0, 100)
        subjob.state = SubjobState.SUSPENDED
        policy.node = _FakeNode(0)
        manager.add(subjob)
        # The policy resumed the subjob through its own suspended-work
        # path before the backoff fired.
        subjob.state = SubjobState.RUNNING
        engine.run(until=120.0)
        assert policy.started == []
        assert manager.pending == 0
        assert manager.stats_retries == 0

    def test_give_up_after_max_retries(self):
        engine, policy, manager = self._manager(
            retry_backoff_base=60.0, max_retries=1
        )
        subjob = make_subjob(0, 100)
        subjob.state = SubjobState.SUSPENDED
        manager.add(subjob)  # attempt 1: admitted
        assert manager.pending == 1
        manager.add(subjob)  # attempt 2 > max_retries: dropped
        assert manager.pending == 1
        assert manager.stats_giveups == 1

    def test_backoff_grows_with_repeated_aborts(self):
        engine, policy, manager = self._manager(
            retry_backoff_base=60.0, retry_backoff_factor=2.0
        )
        subjob = make_subjob(0, 100)
        subjob.state = SubjobState.SUSPENDED
        manager.add(subjob)
        assert manager._backlog[0].due == pytest.approx(60.0)
        manager._backlog.clear()  # simulate dispatch + re-abort
        manager.add(subjob)
        assert manager._backlog[0].due == pytest.approx(120.0)


# ---------------------------------------------------------------------------
# scripted injection through a live simulation


def _scripted_config(*scripted, **fault_overrides):
    faults = FaultConfig(scripted=tuple(scripted), **fault_overrides)
    return micro_config(duration=2 * units.DAY, faults=faults)


class TestScriptedInjection:
    def test_crash_aborts_and_retry_completes_the_job(self):
        # One 1000-event job lands at t=0; node 0 crashes mid-run.
        sim = _checked_sim(
            "farm",
            trace((0.0, 0, 1000)),
            _scripted_config(
                ScriptedFault(time=100.0, duration=300.0, node_id=0),
                retry_backoff_base=60.0,
            ),
        )
        result = sim.run()
        assert result.jobs_completed == 1
        faults = result.faults
        assert faults is not None
        assert faults.failures == 1
        assert faults.subjobs_aborted == 1
        assert faults.retries == 1
        assert faults.giveups == 0
        # The partially processed chunk was thrown away...
        assert faults.lost_events > 0
        assert faults.lost_seconds == pytest.approx(100.0)
        assert faults.downtime_seconds == pytest.approx(300.0)
        assert faults.goodput < 1.0
        # ...and the job finished later than the fault-free 800 s.
        record = result.records[0]
        assert record.completion > 1000 * 0.8

    def test_crash_on_idle_node_only_costs_downtime(self):
        sim = _checked_sim(
            "farm",
            trace((0.0, 0, 1000)),
            _scripted_config(
                ScriptedFault(time=100.0, duration=200.0, node_id=1),
            ),
        )
        result = sim.run()
        faults = result.faults
        assert faults.failures == 1
        assert faults.subjobs_aborted == 0
        assert faults.retries == 0
        assert faults.lost_events == 0
        assert faults.downtime_seconds == pytest.approx(200.0)
        # The busy node was untouched: exact fault-free completion time.
        assert result.records[0].completion == pytest.approx(1000 * 0.8)

    def test_cache_wipe_on_failure(self):
        # The crash hits well after the job finished: with the default
        # config the cached segments survive, with wipe they are gone.
        scripted = ScriptedFault(time=2000.0, duration=100.0, node_id=0)
        kept = _checked_sim(
            "cache-splitting",
            trace((0.0, 0, 1000)),
            _scripted_config(scripted),
        )
        kept.run()
        wiped = _checked_sim(
            "cache-splitting",
            trace((0.0, 0, 1000)),
            _scripted_config(scripted, wipe_cache_on_failure=True),
        )
        wiped.run()
        assert kept.cluster[0].cache.used_events > 0
        assert wiped.cluster[0].cache.used_events == 0

    def test_scripted_stall_slows_tertiary_reads(self):
        # 1000 uncached events take 800 s; a stall covering the whole run
        # at slowdown 4 stretches tertiary processing accordingly.
        sim = _checked_sim(
            "farm",
            trace((0.0, 0, 1000)),
            _scripted_config(
                ScriptedFault(time=0.0, duration=units.DAY, kind="stall"),
                stall_slowdown=4.0,
            ),
        )
        result = sim.run()
        assert result.faults.stalls == 1
        assert result.faults.stall_seconds == pytest.approx(units.DAY)
        assert result.records[0].completion == pytest.approx(1000 * 0.8 * 4.0)

    def test_sanitizer_accepts_fail_recover_cycles_everywhere(self):
        # A dense scripted schedule across both nodes under the deep
        # checker: fail/recover transitions, aborts and retries all pass
        # the sanitizer's state machine.
        scripted = [
            ScriptedFault(time=200.0 + 900.0 * i, duration=450.0, node_id=i % 2)
            for i in range(8)
        ]
        sim = _checked_sim(
            "cache-splitting",
            trace(*[(i * 600.0, (i * 7000) % 60_000, 600) for i in range(20)]),
            _scripted_config(*scripted, retry_backoff_base=30.0),
        )
        result = sim.run()
        assert result.jobs_completed == 20
        assert result.faults.failures == 8


# ---------------------------------------------------------------------------
# deterministic replay of stochastic faulted runs


def _faulted_quick_config(seed=7):
    return quick_config(
        seed=seed,
        duration=4 * units.DAY,
        faults=FaultConfig(
            node_mtbf=6 * units.HOUR,
            node_mttr=30 * units.MINUTE,
            stall_interval=1 * units.DAY,
            stall_duration=20 * units.MINUTE,
        ),
    )


def _comparable(result):
    summary = result_summary_dict(result)
    summary.pop("wall_seconds")  # the only wall-clock-dependent key
    return summary


class TestDeterministicReplay:
    def test_same_seed_identical_metrics(self):
        first = run_simulation(_faulted_quick_config(), "out-of-order")
        second = run_simulation(_faulted_quick_config(), "out-of-order")
        assert first.faults is not None and first.faults.failures > 0
        assert _comparable(first) == _comparable(second)

    def test_sanitizer_does_not_perturb_faulted_runs(self):
        plain = run_simulation(_faulted_quick_config(), "out-of-order")
        checked = run_simulation(
            _faulted_quick_config(), "out-of-order", check_invariants=True
        )
        assert _comparable(plain) == _comparable(checked)

    def test_fault_streams_leave_workload_untouched(self):
        # Fault injection consumes only its own RNG streams: the faulted
        # run sees the bit-identical workload of the fault-free run.
        faulted = run_simulation(_faulted_quick_config(), "out-of-order")
        fault_free = run_simulation(
            quick_config(seed=7, duration=4 * units.DAY), "out-of-order"
        )
        assert faulted.jobs_arrived == fault_free.jobs_arrived
        assert faulted.faults is not None and fault_free.faults is None
        arrivals = lambda r: [rec.arrival_time for rec in r.records]  # noqa: E731
        # Completed-job arrival times are a subset relationship in
        # general; total arrivals and the first arrivals must agree.
        assert arrivals(faulted)[:5] == arrivals(fault_free)[:5]

    def test_identical_failure_schedule_across_policies(self):
        farm = run_simulation(_faulted_quick_config(), "farm")
        ooo = run_simulation(_faulted_quick_config(), "out-of-order")
        assert farm.faults.failures == ooo.faults.failures
        assert farm.faults.downtime_seconds == ooo.faults.downtime_seconds

    @pytest.mark.parametrize("policy", ["decentral", "decentral-nolocal"])
    def test_decentral_replay_and_sanitizer_identical(self, policy):
        # The decentral family consumes the extra ``sched.arbiter``
        # stream; faulted replays must stay bit-identical and unperturbed
        # by the sanitizer, like every central policy.
        first = run_simulation(_faulted_quick_config(), policy)
        second = run_simulation(
            _faulted_quick_config(), policy, check_invariants=True
        )
        assert first.faults is not None and first.faults.failures > 0
        assert _comparable(first) == _comparable(second)
        assert first.sched is not None and first.sched.mode == "decentral"

    def test_decentral_failure_schedule_matches_central(self):
        # sched.arbiter draws must not perturb the fault streams.
        farm = run_simulation(_faulted_quick_config(), "farm")
        decentral = run_simulation(_faulted_quick_config(), "decentral")
        assert farm.faults.failures == decentral.faults.failures
        assert farm.faults.downtime_seconds == decentral.faults.downtime_seconds
