"""Tests for the runtime sim-sanitizer (``--check-invariants``).

Two claims are verified: a checked run is *transparent* (bit-identical
metrics to an unchecked run, because the checks never schedule events),
and a checked run is *vigilant* (injected corruption of cache accounting,
event ordering, LRU structure or subjob assignment raises
:class:`InvariantViolation` with a descriptive message).
"""

from __future__ import annotations

import heapq

import pytest

from repro.cli import main
from repro.cluster.access import CachingPlanner
from repro.cluster.costmodel import CostModel
from repro.cluster.node import Node
from repro.core import units
from repro.core.engine import Engine
from repro.core.errors import InvariantViolation
from repro.core.events import EventPriority, ScheduledEvent
from repro.data.cache import LRUSegmentCache
from repro.data.dataspace import DataSpace
from repro.data.intervals import Interval
from repro.data.tertiary import TertiaryStorage
from repro.sched.base import create_policy
from repro.sim.config import quick_config
from repro.sim.sanitizer import InvariantChecker
from repro.sim.simulator import Simulation, run_simulation
from repro.workload.jobs import SubjobState

from .helpers import make_subjob


def _config(seed: int = 11):
    return quick_config(duration=4 * units.DAY, seed=seed)


def _checked_simulation(policy: str = "out-of-order") -> Simulation:
    return Simulation(
        _config(), create_policy(policy), check_invariants=True
    )


class TestTransparency:
    @pytest.mark.parametrize("policy", ["farm", "cache-splitting", "out-of-order"])
    def test_checked_run_has_identical_metrics(self, policy):
        plain = run_simulation(_config(), policy)
        checked = run_simulation(_config(), policy, check_invariants=True)
        assert checked.measured.mean_speedup == plain.measured.mean_speedup
        assert checked.measured.mean_waiting == plain.measured.mean_waiting
        assert checked.records == plain.records
        assert checked.events_by_source == plain.events_by_source
        assert checked.engine_events == plain.engine_events
        assert checked.jobs_completed == plain.jobs_completed

    def test_checks_actually_ran(self):
        sim = _checked_simulation()
        sim.run()
        assert sim.checker is not None
        assert sim.checker.checks_run > 0

    def test_unchecked_run_installs_no_hooks(self):
        sim = Simulation(_config(), create_policy("farm"))
        assert sim.checker is None
        assert all(node.checker is None for node in sim.cluster)
        assert not sim.engine.check_invariants


class TestCacheCorruption:
    def test_accounting_corruption_is_caught(self):
        sim = _checked_simulation()
        sim.prime()

        def corrupt() -> None:
            # Test-only hook: break byte/event accounting conservation on
            # one node's cache; the next deep check must notice.
            node = next(iter(sim.cluster))
            node.cache._used += 7

        sim.engine.call_at(units.DAY, corrupt)
        with pytest.raises(InvariantViolation, match="not conserved"):
            sim.engine.run(until=sim.config.duration)

    def test_lru_structure_corruption_is_caught(self):
        sim = _checked_simulation()
        sim.prime()

        def corrupt() -> None:
            # Drop the LRU heap: live extents become unreachable by
            # eviction, which the validator must flag.
            for node in sim.cluster:
                if len(node.cache._lru_heap) > 0:
                    node.cache._lru_heap.clear()
                    return

        sim.engine.call_at(units.DAY, corrupt)
        with pytest.raises(InvariantViolation, match="LRU"):
            sim.engine.run(until=sim.config.duration)

    def test_validate_directly_on_healthy_cache(self):
        cache = LRUSegmentCache(1000)
        cache.insert(Interval(0, 400), now=1.0)
        cache.insert(Interval(600, 900), now=2.0)
        cache.touch(Interval(0, 100), now=3.0)
        cache.validate()
        cache._used -= 1
        with pytest.raises(InvariantViolation, match="accounting"):
            cache.validate()


class TestEventOrderingCorruption:
    def test_non_monotone_dispatch_is_caught(self):
        engine = Engine(check_invariants=True)
        engine.call_at(10.0, lambda: None)
        assert engine.step()
        # Test-only hook: smuggle an event into the past, bypassing
        # call_at's validation — exactly what a buggy component that
        # caches a stale `now` would do.
        stale = ScheduledEvent(
            time=2.0,
            priority=int(EventPriority.ARRIVAL),
            seq=999,
            callback=lambda: None,
            label="stale",
        )
        heapq.heappush(
            engine._heap, (stale.time, stale.priority, stale.seq, stale)
        )
        with pytest.raises(InvariantViolation, match="non-monotone"):
            engine.step()

    def test_heap_property_corruption_is_caught(self):
        engine = Engine(check_invariants=True)
        for t in (5.0, 1.0, 9.0, 3.0):
            engine.call_at(t, lambda: None)
        engine.validate_heap()
        engine._heap[0], engine._heap[-1] = engine._heap[-1], engine._heap[0]
        with pytest.raises(InvariantViolation, match="heap property"):
            engine.validate_heap()

    def test_unchecked_engine_does_not_pay_for_checks(self):
        engine = Engine()
        assert not engine.check_invariants
        engine.call_at(1.0, lambda: None)
        engine.run()
        assert engine.now == 1.0


class TestAssignmentCorruption:
    def _node(self, engine: Engine, node_id: int, checker: InvariantChecker) -> Node:
        space = DataSpace(total_events=1_000_000, event_bytes=600 * units.KB)
        node = Node(
            node_id=node_id,
            engine=engine,
            cache=LRUSegmentCache(10_000),
            cost_model=CostModel.from_hardware(600 * units.KB),
            planner=CachingPlanner(TertiaryStorage(space)),
            chunk_events=100,
        )
        node.checker = checker
        node.on_subjob_complete = lambda n, s: None
        return node

    def test_double_assignment_is_caught(self):
        engine = Engine(check_invariants=True)
        checker = InvariantChecker()
        node_a = self._node(engine, 0, checker)
        node_b = self._node(engine, 1, checker)
        subjob = make_subjob(0, 500)
        node_a.start(subjob)
        # Test-only hook: reset the subjob's bookkeeping as a buggy policy
        # that lost track of its dispatch would, then hand the same subjob
        # to a second node.
        subjob.state = SubjobState.PENDING
        subjob.node = None
        with pytest.raises(InvariantViolation, match="double-assigned"):
            node_b.start(subjob)

    def test_unregistered_finish_is_caught(self):
        checker = InvariantChecker()
        engine = Engine()
        node = self._node(engine, 0, checker)
        subjob = make_subjob(0, 200)
        with pytest.raises(InvariantViolation, match="never registered"):
            checker.on_subjob_suspend(node, subjob)

    def test_legal_lifecycle_passes(self):
        engine = Engine(check_invariants=True)
        checker = InvariantChecker()
        node = self._node(engine, 0, checker)
        subjob = make_subjob(0, 300)
        node.start(subjob)
        engine.run()
        assert subjob.state is SubjobState.DONE
        assert checker.checks_run >= 2


class TestCli:
    def test_simulate_check_invariants_flag(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "--policy",
                    "out-of-order",
                    "--days",
                    "1",
                    "--check-invariants",
                ]
            )
            == 0
        )
        assert "mean speedup" in capsys.readouterr().out
