"""Tests for replicated runs and confidence intervals."""

import math

import pytest

from repro.core import units
from repro.sim.config import quick_config
from repro.sim.replications import (
    MetricEstimate,
    compare_policies,
    estimate,
    run_replications,
    t_critical_95,
)


class TestTCritical:
    def test_known_values(self):
        assert t_critical_95(1) == pytest.approx(12.706)
        assert t_critical_95(4) == pytest.approx(2.776)
        assert t_critical_95(100) == pytest.approx(1.96)

    def test_monotone_decreasing(self):
        values = [t_critical_95(d) for d in (1, 2, 5, 10, 30, 1000)]
        assert values == sorted(values, reverse=True)

    def test_invalid_dof(self):
        assert math.isnan(t_critical_95(0))


class TestEstimate:
    def test_basic(self):
        e = estimate([10.0, 12.0, 8.0, 10.0])
        assert e.mean == pytest.approx(10.0)
        assert e.n == 4
        assert e.half_width > 0
        assert e.low < 10.0 < e.high

    def test_single_sample_has_nan_ci(self):
        e = estimate([5.0])
        assert e.mean == 5.0
        assert math.isnan(e.half_width)

    def test_empty(self):
        e = estimate([])
        assert e.n == 0
        assert math.isnan(e.mean)

    def test_nan_samples_dropped(self):
        e = estimate([1.0, float("nan"), 3.0])
        assert e.n == 2
        assert e.mean == pytest.approx(2.0)

    def test_identical_samples_zero_width(self):
        e = estimate([7.0] * 5)
        assert e.half_width == pytest.approx(0.0)

    def test_relative_half_width(self):
        e = MetricEstimate(mean=10.0, half_width=1.0, n=3)
        assert e.relative_half_width == pytest.approx(0.1)
        assert "±" in str(e)


class TestRunReplications:
    @pytest.fixture(scope="class")
    def replicated(self):
        config = quick_config(duration=3 * units.DAY, arrival_rate_per_hour=4.0)
        return run_replications(
            config, "out-of-order", n_replications=3, base_seed=50, processes=1
        )

    def test_replication_count(self, replicated):
        assert replicated.n == 3

    def test_metrics_estimated(self, replicated):
        for name in ("mean_speedup", "mean_waiting", "node_utilization"):
            assert name in replicated.estimates
            assert replicated.estimates[name].n == 3

    def test_seeds_differ(self, replicated):
        arrived = [r.jobs_arrived for r in replicated.results]
        assert len(set(arrived)) > 1 or len(set(
            r.measured.mean_speedup for r in replicated.results
        )) > 1

    def test_overload_flags(self, replicated):
        assert not replicated.all_overloaded

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            run_replications(quick_config(), "farm", n_replications=0)


class TestComparePolicies:
    def test_matched_seed_comparison(self):
        config = quick_config(duration=2 * units.DAY, arrival_rate_per_hour=4.0)
        outcome = compare_policies(
            config,
            [("farm", {}), ("out-of-order", {})],
            n_replications=2,
            base_seed=9,
            processes=1,
        )
        assert set(outcome) == {"farm", "out-of-order"}
        # Matched seeds: each policy saw the same workloads; out-of-order
        # must dominate the farm on speedup in expectation.
        assert (
            outcome["out-of-order"].estimates["mean_speedup"].mean
            > outcome["farm"].estimates["mean_speedup"].mean
        )
