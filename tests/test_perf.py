"""The ``repro.perf`` benchmark-regression harness.

Three concerns:

* the ``BENCH_*.json`` schema round-trips exactly (and rejects foreign
  schema versions),
* the committed-baseline comparison flags real slowdowns and nothing
  else,
* the optimized kernel is still the *same simulator*: metrics are
  bit-identical to the pre-optimization goldens, with the sim-sanitizer
  (``check_invariants=True``) watching the heap the whole time.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core import units
from repro.perf import (
    DEFAULT_THRESHOLD,
    BenchRecord,
    BenchReport,
    Hotspot,
    compare_reports,
    load_baseline,
    profile_call,
    render_report,
    report_filename,
    run_kernel_bench,
    scale_config,
)

# Aliased import: pytest collects ``bench_*`` names (the benchmarks/
# directory convention), so the plain name would be mistaken for a test.
from repro.perf import bench_scale_point as scale_point
from repro.sim.config import paper_config, quick_config
from repro.sim.simulator import run_simulation

GOLDENS = os.path.join(os.path.dirname(__file__), "goldens", "seed_metrics.json")


def _report(**overrides) -> BenchReport:
    defaults = dict(
        kind="kernel",
        records=(
            BenchRecord(
                name="engine.dispatch",
                wall_seconds=0.5,
                work=100_000,
                unit="events",
                repeats=3,
                hotspots=(
                    Hotspot(
                        function="engine.py:180(run)",
                        calls=1,
                        total_seconds=0.4,
                        cumulative_seconds=0.5,
                    ),
                ),
            ),
            BenchRecord(
                name="cache.lru_ops",
                wall_seconds=0.25,
                work=50_000,
                unit="ops",
                repeats=3,
            ),
        ),
    )
    defaults.update(overrides)
    return BenchReport(**defaults)


# -- schema round-trip --------------------------------------------------------


class TestSchema:
    def test_json_round_trip_is_exact(self):
        report = _report()
        assert BenchReport.from_json(report.to_json()) == report

    def test_file_round_trip(self, tmp_path):
        report = _report()
        path = tmp_path / report_filename(report.kind)
        report.write(str(path))
        assert BenchReport.read(str(path)) == report

    def test_write_creates_parent_directories(self, tmp_path):
        report = _report()
        path = tmp_path / "nested" / "dir" / "BENCH_kernel.json"
        report.write(str(path))
        assert path.exists()

    def test_schema_version_is_stamped(self):
        payload = json.loads(_report().to_json())
        assert payload["schema_version"] == 1
        assert "git_sha" in payload
        assert "peak_rss_kb" in payload

    def test_foreign_schema_version_rejected(self):
        payload = json.loads(_report().to_json())
        payload["schema_version"] = 99
        with pytest.raises(ValueError, match="schema version"):
            BenchReport.from_dict(payload)

    def test_throughput_derivation(self):
        record = BenchRecord(
            name="x", wall_seconds=0.5, work=100, unit="ops", repeats=1
        )
        assert record.throughput == 200.0
        zero = BenchRecord(name="x", wall_seconds=0.0, work=100, unit="ops", repeats=1)
        assert zero.throughput == 0.0

    def test_render_report_mentions_every_record(self):
        text = render_report(_report())
        assert "engine.dispatch" in text
        assert "cache.lru_ops" in text

    def test_rss_kb_round_trips_and_is_omitted_when_absent(self):
        with_rss = BenchRecord(
            name="sim.scale.n10", wall_seconds=1.0, work=1000,
            unit="events", repeats=1, rss_kb=54_321,
        )
        assert "rss_kb" not in _report().records[0].as_dict()
        assert with_rss.as_dict()["rss_kb"] == 54_321
        assert BenchRecord.from_dict(with_rss.as_dict()) == with_rss
        report = BenchReport(kind="scale", records=(with_rss,))
        assert BenchReport.from_json(report.to_json()) == report
        assert "rss 53 MiB" in render_report(report)


# -- baseline comparison ------------------------------------------------------


def _single(kind: str, name: str, wall_seconds: float) -> BenchReport:
    return BenchReport(
        kind=kind,
        records=(
            BenchRecord(
                name=name, wall_seconds=wall_seconds, work=1000, unit="ops", repeats=1
            ),
        ),
    )


class TestBaseline:
    def test_equal_speed_passes(self):
        result = compare_reports(
            _single("kernel", "a", 1.0), _single("kernel", "a", 1.0)
        )
        assert not result.regressed
        assert result.compared[0].slowdown == pytest.approx(1.0)

    def test_slowdown_beyond_threshold_fails(self):
        result = compare_reports(
            _single("kernel", "a", 3.0), _single("kernel", "a", 1.0), threshold=2.0
        )
        assert result.regressed
        assert "REGRESSED" in result.describe()

    def test_slowdown_within_threshold_passes(self):
        result = compare_reports(
            _single("kernel", "a", 1.5), _single("kernel", "a", 1.0), threshold=2.0
        )
        assert not result.regressed

    def test_speedup_never_fails(self):
        result = compare_reports(
            _single("kernel", "a", 0.1), _single("kernel", "a", 1.0), threshold=2.0
        )
        assert not result.regressed
        assert result.compared[0].slowdown < 1.0

    def test_unmatched_records_reported_but_not_failing(self):
        current = _single("policies", "sim.quick.farm", 1.0)
        baseline = _single("policies", "sim.fig5.out-of-order", 1.0)
        result = compare_reports(current, baseline, threshold=DEFAULT_THRESHOLD)
        assert not result.regressed
        assert result.compared == ()
        assert result.only_current == ("sim.quick.farm",)
        assert result.only_baseline == ("sim.fig5.out-of-order",)

    def _scale_report(self, wall_seconds: float, rss_kb) -> BenchReport:
        return BenchReport(
            kind="scale",
            records=(
                BenchRecord(
                    name="sim.scale.n100", wall_seconds=wall_seconds,
                    work=1000, unit="events", repeats=1, rss_kb=rss_kb,
                ),
            ),
        )

    def test_rss_growth_beyond_threshold_fails(self):
        result = compare_reports(
            self._scale_report(1.0, rss_kb=300_000),
            self._scale_report(1.0, rss_kb=100_000),
            rss_threshold=2.0,
        )
        assert result.regressed
        assert result.compared[0].rss_regressed
        assert result.compared[0].slowdown == pytest.approx(1.0)
        assert "rss  3.00x" in result.describe()

    def test_rss_growth_within_threshold_passes(self):
        result = compare_reports(
            self._scale_report(1.0, rss_kb=150_000),
            self._scale_report(1.0, rss_kb=100_000),
            rss_threshold=2.0,
        )
        assert not result.regressed
        assert result.compared[0].rss_growth == pytest.approx(1.5)

    def test_missing_rss_on_either_side_disables_the_gate(self):
        result = compare_reports(
            self._scale_report(1.0, rss_kb=900_000),
            self._scale_report(1.0, rss_kb=None),
        )
        assert not result.regressed
        assert result.compared[0].rss_growth is None

    def test_zero_current_throughput_is_infinite_slowdown(self):
        broken = _single("kernel", "a", 0.0)  # wall 0 -> throughput 0
        result = compare_reports(broken, _single("kernel", "a", 1.0))
        assert result.compared[0].slowdown == float("inf")
        assert result.regressed

    def test_load_baseline_missing_returns_none(self, tmp_path):
        assert load_baseline(str(tmp_path), "kernel") is None

    def test_load_baseline_round_trip(self, tmp_path):
        report = _report()
        report.write(str(tmp_path / report_filename("kernel")))
        loaded = load_baseline(str(tmp_path), "kernel")
        assert loaded == report

    def test_committed_baselines_exist_at_repo_root(self):
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        for kind in ("kernel", "policies", "scale"):
            baseline = load_baseline(root, kind)
            assert baseline is not None, f"missing committed BENCH_{kind}.json"
            assert baseline.kind == kind
            assert all(r.throughput > 0 for r in baseline.records)

    def test_committed_scale_baseline_carries_rss(self):
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        baseline = load_baseline(root, "scale")
        assert baseline is not None
        names = [r.name for r in baseline.records]
        assert names == ["sim.scale.n10", "sim.scale.n100", "sim.scale.n1000"]
        assert all(r.rss_kb is not None and r.rss_kb > 0 for r in baseline.records)


# -- harness smoke ------------------------------------------------------------


class TestHarness:
    def test_quick_kernel_bench_produces_all_records(self):
        report = run_kernel_bench(quick=True)
        names = [record.name for record in report.records]
        assert names == [
            "engine.dispatch",
            "engine.cancel_churn",
            "intervals.arith",
            "intervals.set_ops",
            "cache.lru_ops",
            "exec.fingerprint",
            "sched.bidding",
            "sched.netchannel",
            "lint.flow",
            "topo.route",
        ]
        for record in report.records:
            assert record.wall_seconds > 0
            assert record.throughput > 0

    def test_scale_point_in_process(self):
        record = scale_point(3, duration_days=0.1, in_process=True)
        assert record.name == "sim.scale.n3"
        assert record.unit == "events"
        assert record.work > 0
        assert record.rss_kb is not None and record.rss_kb > 0

    def test_scale_config_scales_load_with_nodes(self):
        small, large = scale_config(10), scale_config(1000)
        assert large.n_nodes == 1000
        assert large.arrival_rate_per_hour == pytest.approx(
            100 * small.arrival_rate_per_hour
        )
        # The tier's seed is dedicated — not the test fixtures' seed 0.
        assert small.seed == large.seed == 7

    def test_profile_call_returns_value_and_hotspots(self):
        value, hotspots = profile_call(lambda: sum(range(10_000)), top_n=5)
        assert value == sum(range(10_000))
        assert len(hotspots) <= 5
        for spot in hotspots:
            assert spot.calls >= 1
            assert spot.total_seconds >= 0.0


# -- determinism: optimized kernel == seed goldens ---------------------------


def _snap(result) -> dict:
    return {
        "engine_events": result.engine_events,
        "events_by_source": result.events_by_source,
        "jobs_arrived": result.jobs_arrived,
        "jobs_completed": result.jobs_completed,
        "mean_processing": result.measured.mean_processing,
        "mean_sojourn": result.measured.mean_sojourn,
        "mean_speedup": result.measured.mean_speedup,
        "mean_waiting": result.measured.mean_waiting,
        "mean_waiting_excl_delay": result.measured.mean_waiting_excl_delay,
        "n_jobs": result.measured.n_jobs,
        "node_utilization": result.node_utilization,
        "overloaded": result.overload.overloaded,
        "p95_waiting": result.measured.p95_waiting,
        "tertiary_distinct_events": result.tertiary_distinct_events,
        "tertiary_redundancy": result.tertiary_redundancy,
        "tertiary_events_read": result.tertiary_events_read,
    }


def _golden() -> dict:
    with open(GOLDENS, "r", encoding="utf-8") as handle:
        return json.load(handle)


#: quick/delayed was recorded with an 11-hour period and 500-event
#: stripes; every other golden uses the policy defaults.
_GOLDEN_PARAMS = {"delayed": {"period": 11 * units.HOUR, "stripe_events": 500}}

_QUICK_POLICIES = (
    "adaptive",
    "cache-splitting",
    "delayed",
    "farm",
    "mixed",
    "out-of-order",
    "replication",
    "splitting",
)


class TestDeterminism:
    @pytest.mark.parametrize("policy", _QUICK_POLICIES)
    def test_quick_metrics_bit_identical_to_goldens(self, policy):
        golden = _golden()[f"quick/{policy}"]
        result = run_simulation(
            quick_config(),
            policy,
            check_invariants=True,
            **_GOLDEN_PARAMS.get(policy, {}),
        )
        snap = _snap(result)
        assert {key: snap[key] for key in golden} == golden

    def test_paper5d_out_of_order_bit_identical_to_golden(self):
        golden = _golden()["paper5d/out-of-order"]
        result = run_simulation(
            paper_config(duration=5 * units.DAY, arrival_rate_per_hour=1.6),
            "out-of-order",
            check_invariants=True,
        )
        snap = _snap(result)
        assert {key: snap[key] for key in golden} == golden
