"""Tests for the scheduler framework: registry, shared helpers."""

import pytest

from repro.cluster.access import CachingPlanner
from repro.core.errors import ConfigurationError, SchedulingError
from repro.data.intervals import Interval
from repro.sched.base import (
    SchedulerPolicy,
    available_policies,
    best_subjob_for_node,
    create_policy,
    get_policy_class,
    policy_parameters,
    register_policy,
    split_interval_by_caches,
    suggest_policies,
    unknown_policy_message,
)

from .conftest import make_cluster
from .helpers import make_subjob
from .policy_helpers import build_sim, micro_config, trace


class TestRegistry:
    def test_all_paper_policies_registered(self):
        names = available_policies()
        for expected in (
            "farm",
            "splitting",
            "cache-splitting",
            "out-of-order",
            "replication",
            "delayed",
            "adaptive",
            "mixed",
        ):
            assert expected in names

    def test_unknown_policy_raises(self):
        with pytest.raises(ConfigurationError):
            create_policy("no-such-policy")

    def test_duplicate_name_rejected(self):
        with pytest.raises(ConfigurationError):

            @register_policy
            class Duplicate(SchedulerPolicy):  # pragma: no cover
                name = "farm"

                def on_job_arrival(self, job):
                    pass

                def on_subjob_end(self, node, subjob):
                    pass

                def on_job_end(self, node, job, subjob):
                    pass

    def test_unnamed_policy_rejected(self):
        with pytest.raises(ConfigurationError):

            @register_policy
            class NoName(SchedulerPolicy):  # pragma: no cover
                def on_job_arrival(self, job):
                    pass

                def on_subjob_end(self, node, subjob):
                    pass

                def on_job_end(self, node, job, subjob):
                    pass

    def test_decentral_policies_registered(self):
        names = available_policies()
        assert "decentral" in names
        assert "decentral-nolocal" in names

    def test_available_policies_stably_sorted(self):
        names = available_policies()
        assert names == sorted(names)
        assert names == available_policies()

    def test_duplicate_error_names_both_classes(self):
        with pytest.raises(ConfigurationError, match="ProcessingFarmPolicy"):

            @register_policy
            class FarmAgain(SchedulerPolicy):  # pragma: no cover
                name = "farm"

                def on_job_arrival(self, job):
                    pass

                def on_subjob_end(self, node, subjob):
                    pass

                def on_job_end(self, node, job, subjob):
                    pass

        assert "farm" not in available_policies() or get_policy_class(
            "farm"
        ).__name__ == "ProcessingFarmPolicy"

    def test_reregistering_same_class_rejected(self):
        cls = get_policy_class("farm")
        with pytest.raises(ConfigurationError, match="duplicate policy name"):
            register_policy(cls)
        assert get_policy_class("farm") is cls

    def test_unknown_policy_suggests_close_names(self):
        with pytest.raises(ConfigurationError, match="did you mean"):
            create_policy("decentrall")
        assert "decentral" in suggest_policies("decentrall")
        assert "did you mean" in unknown_policy_message("farmm")

    def test_policy_parameters_reports_defaults(self):
        params = policy_parameters("decentral")
        assert params["grant_batch"] == 4
        assert params["task_events"] is None
        assert policy_parameters("farm") == {}
        with pytest.raises(ConfigurationError):
            policy_parameters("no-such-policy")

    def test_create_passes_params(self):
        policy = create_policy("delayed", period=123.0, stripe_events=77)
        assert policy.period == 123.0
        assert policy.stripe_events == 77

    def test_policy_before_bind_asserts(self):
        policy = create_policy("farm")
        with pytest.raises(AssertionError):
            policy.cluster


class TestSplitByCaches:
    def test_cold_cluster_single_uncached_piece(self, engine, tertiary):
        cluster = make_cluster(engine, tertiary)
        pieces = split_interval_by_caches(Interval(0, 1000), cluster, 10)
        assert pieces == [(Interval(0, 1000), None)]

    def test_cached_parts_tagged_with_node(self, engine, tertiary):
        cluster = make_cluster(engine, tertiary)
        cluster[1].cache.insert(Interval(200, 500), now=0.0)
        pieces = split_interval_by_caches(Interval(0, 1000), cluster, 10)
        assert pieces == [
            (Interval(0, 200), None),
            (Interval(200, 500), cluster[1]),
            (Interval(500, 1000), None),
        ]

    def test_pieces_tile_segment(self, engine, tertiary):
        cluster = make_cluster(engine, tertiary)
        cluster[0].cache.insert(Interval(100, 300), now=0.0)
        cluster[2].cache.insert(Interval(600, 650), now=0.0)
        pieces = split_interval_by_caches(Interval(0, 1000), cluster, 10)
        cursor = 0
        for interval, _ in pieces:
            assert interval.start == cursor
            cursor = interval.end
        assert cursor == 1000

    def test_duplicate_claims_go_to_lowest_node_id(self, engine, tertiary):
        cluster = make_cluster(engine, tertiary)
        cluster[2].cache.insert(Interval(0, 500), now=0.0)
        cluster[0].cache.insert(Interval(0, 500), now=0.0)
        pieces = split_interval_by_caches(Interval(0, 500), cluster, 10)
        assert pieces == [(Interval(0, 500), cluster[0])]

    def test_small_fragments_merged(self, engine, tertiary):
        cluster = make_cluster(engine, tertiary)
        cluster[0].cache.insert(Interval(100, 105), now=0.0)  # 5 < min 10
        pieces = split_interval_by_caches(Interval(0, 1000), cluster, 10)
        assert len(pieces) == 2  # tiny cached sliver merged away
        total = sum(i.length for i, _ in pieces)
        assert total == 1000

    def test_segment_fully_cached_one_node(self, engine, tertiary):
        cluster = make_cluster(engine, tertiary)
        cluster[1].cache.insert(Interval(0, 2000), now=0.0)
        pieces = split_interval_by_caches(Interval(500, 1500), cluster, 10)
        assert pieces == [(Interval(500, 1500), cluster[1])]


class TestBestSubjobForNode:
    def test_prefers_most_cached(self, engine, tertiary):
        cluster = make_cluster(engine, tertiary)
        node = cluster[0]
        a = make_subjob(0, 100)
        b = make_subjob(200, 100)
        node.cache.insert(Interval(200, 260), now=0.0)
        assert best_subjob_for_node(node, [a, b]) is b

    def test_ties_broken_by_size(self, engine, tertiary):
        cluster = make_cluster(engine, tertiary)
        node = cluster[0]
        small = make_subjob(0, 50)
        large = make_subjob(100, 500)
        assert best_subjob_for_node(node, [small, large]) is large

    def test_empty_candidates(self, engine, tertiary):
        cluster = make_cluster(engine, tertiary)
        assert best_subjob_for_node(cluster[0], []) is None


class TestSplitRunningSubjob:
    def test_splits_and_resumes(self):
        sim = build_sim("out-of-order", trace((0.0, 0, 2000)), micro_config(n_nodes=1))
        sim.prime()
        sim.engine.run(until=80.0)  # 100 events processed
        policy = sim.policy
        subjob = sim.cluster[0].current
        right = policy.split_running_subjob(subjob, 1000)
        assert right is not None
        assert right.segment == Interval(1000, 2000)
        assert sim.cluster[0].current is subjob
        assert subjob.segment.end == 1000

    def test_invalid_point_restarts_subjob(self):
        sim = build_sim("out-of-order", trace((0.0, 0, 2000)), micro_config(n_nodes=1))
        sim.prime()
        sim.engine.run(until=80.0)
        policy = sim.policy
        subjob = sim.cluster[0].current
        right = policy.split_running_subjob(subjob, 50)  # already processed
        assert right is None
        assert sim.cluster[0].current is subjob

    def test_not_running_raises(self):
        sim = build_sim("out-of-order", trace((0.0, 0, 2000)), micro_config(n_nodes=1))
        policy = sim.policy
        with pytest.raises(SchedulingError):
            policy.split_running_subjob(make_subjob(0, 100), 50)
